//! Racing independent SAT engines without giving up determinism.
//!
//! ```text
//! cargo run --release -p dftsp --example portfolio_demo
//! ```
//!
//! Synthesizes the three small catalog codes three ways — on the single
//! tuned CDCL backend, on the racing portfolio (`BackendChoice::portfolio()`,
//! which races the tuned CDCL solver against the independent screwsat-style
//! engine per query and cancels the loser), and on the checked portfolio
//! (`BackendChoice::portfolio_checked()`, which runs every engine to
//! completion and panics on any verdict disagreement) — then asserts all
//! three produce bit-identical protocols and prints the per-lane race
//! attribution: which engine won how many races, and how much speculative
//! work was cancelled.

use dftsp::{BackendChoice, PortfolioLane, SynthesisEngine};
use dftsp_code::catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let codes = vec![catalog::steane(), catalog::shor(), catalog::surface3()];

    for code in &codes {
        let single = SynthesisEngine::builder()
            .solver(BackendChoice::Cdcl)
            .build()
            .synthesize(code)?;
        let raced = SynthesisEngine::builder()
            .solver(BackendChoice::portfolio())
            .build()
            .synthesize(code)?;
        let checked = SynthesisEngine::builder()
            .solver(BackendChoice::portfolio_checked())
            .build()
            .synthesize(code)?;

        // Determinism across backends: whichever engine wins whichever race,
        // the synthesized protocol is the single-backend protocol, bit for
        // bit — racing only changes who answers the intermediate queries.
        let fingerprint =
            |p: &dftsp::DeterministicProtocol| format!("{:?}|{:?}", p.prep.circuit, p.layers);
        assert_eq!(
            fingerprint(&single.protocol),
            fingerprint(&raced.protocol),
            "{}: racing must not change the protocol",
            code.name()
        );
        assert_eq!(
            fingerprint(&single.protocol),
            fingerprint(&checked.protocol),
            "{}: the checked portfolio must not change the protocol",
            code.name()
        );

        let attribution = raced.sat_totals().portfolio;
        println!(
            "{:<10} {} SAT calls, {} raced, {} solo (below the racing floor)",
            code.name(),
            raced.sat_totals().calls,
            attribution.races,
            attribution.solo,
        );
        for lane in PortfolioLane::ALL {
            let stats = attribution.lane(lane);
            if stats.wins + stats.losses == 0 {
                continue;
            }
            println!(
                "  {:<10} {} wins, {} losses, {} conflicts of cancelled work, {} us",
                lane.name(),
                stats.wins,
                stats.losses,
                stats.cancelled_conflicts,
                stats.time_us,
            );
        }
    }

    println!("all protocols bit-identical across single, racing and checked backends");
    Ok(())
}
