//! Fault-tolerant cat-state preparation as a workload: the GHZ stabilizer
//! group reuses the full zero-state pipeline, and the order-2 target shows
//! the repair loop synthesizing extra verification layers where needed.
//!
//! ```text
//! cargo run --release --example cat_state_demo
//! ```

use std::sync::Arc;

use dftsp::{
    check_fault_tolerance_order_with, FtCheckOptions, MemoryReportStore, Provenance,
    SynthesisEngine, SynthesisRequest, SynthesisService, WorkloadKind,
};
use dftsp_code::catalog;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());

    // --- 1. A cat state is the zero state of the "cat code". --------------
    // The n-qubit cat (GHZ) state (|0…0⟩ + |1…1⟩)/√2 is stabilized by
    // X⊗…⊗X and the neighbor pairs Z_i Z_{i+1}: a [[n, 1, 1]] CSS code whose
    // all-zero logical state *is* the cat state. Preparing it fault
    // tolerantly is therefore the same synthesis problem the paper solves,
    // on a different stabilizer group.
    for size in [4usize, 8] {
        let code = catalog::cat_state(size);
        let engine = SynthesisEngine::builder()
            .threads(threads)
            .target_order(2) // every ≤2-fault set must stay benign
            .build();
        let report = engine.synthesize(&code)?;
        let check = check_fault_tolerance_order_with(
            &report.protocol,
            2,
            &FtCheckOptions {
                max_violations: 5,
                threads,
            },
        );
        println!(
            "Cat-{size}: {} verification layer(s), {} branches, {} fault sets checked, {} violations",
            report.protocol.layers.len(),
            report.branch_count(),
            check.sets_checked,
            check.violations_found,
        );
        assert!(check.is_fault_tolerant());
    }

    // --- 2. The same ask, phrased as a service workload. -------------------
    // A request carries the *logical* workload; the engine substitutes the
    // cat code behind the report key, so cat-state reports cache separately
    // from zero-state reports and round-trip bit-identically.
    let service = SynthesisService::builder()
        .report_store(Arc::new(MemoryReportStore::new()))
        .build();
    let request = || {
        SynthesisRequest::new(catalog::steane()).workload(WorkloadKind::CatStatePrep { size: 4 })
    };
    let solved = service.submit(request())?;
    let cached = service.submit(request())?;
    println!(
        "service: first {} in {:?}, then {} in {:?}",
        solved.provenance, solved.solve_time, cached.provenance, cached.solve_time
    );
    assert_eq!(solved.provenance, Provenance::Solved);
    assert_eq!(cached.provenance, Provenance::Cached);
    assert_eq!(
        format!("{:?}", solved.report.protocol.layers),
        format!("{:?}", cached.report.protocol.layers),
    );
    Ok(())
}
