//! Fault injection and replication, end to end: a replica group of two
//! store servers — one behind a scripted wire-fault plan, one killed and
//! restarted empty mid-demo — serving a synthesis workload that never fails.
//!
//! Run with `cargo run --release --example chaos_demo`.
//!
//! The demo walks the full failure lifecycle of a [`ReplicatedStore`]:
//!
//! 1. two [`StoreServer`]s as replicas, replica 0 bound with a seeded
//!    [`FaultPlan`] injecting wire faults on a fixed schedule,
//! 2. a fan-out save and failover reads while the faults fire — replica 0's
//!    breaker trips, replica 1 keeps serving, no request ever fails,
//! 3. replica 0 killed outright, then restarted at the same address with an
//!    EMPTY store — the half-open probe closes the breaker and read-repair
//!    reconverges the lost copy through the wire,
//! 4. a [`SynthesisService`] on top of the group, bit-identical to a
//!    no-store run throughout.

use std::sync::Arc;
use std::time::Duration;

use dftsp::{
    BreakerState, CheckedStore, FaultPlan, JsonReportStore, Provenance, RemoteReportStore,
    RemoteStoreConfig, ReplicaConfig, ReplicatedStore, ReportStore, StoreServer, SynthesisRequest,
    SynthesisService,
};
use dftsp_code::catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = std::env::temp_dir().join(format!("dftsp-chaos-demo-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    // Replica 0's wire misbehaves on a deterministic schedule: roughly one
    // in five responses is dropped, corrupted, truncated, refused or
    // swallowed — the same ops every run, because the plan is seeded.
    let plan = Arc::new(FaultPlan::seeded(0xBAD_5EED, 5));
    let mut server0 = StoreServer::bind_faulty(
        "127.0.0.1:0",
        Arc::new(JsonReportStore::new(base.join("replica0-gen0"))?),
        16,
        Arc::clone(&plan),
    )?;
    let addr0 = server0.local_addr();
    let server1 = StoreServer::bind(
        "127.0.0.1:0",
        Arc::new(JsonReportStore::new(base.join("replica1"))?),
    )?;
    println!("replica 0 (faulty wire) on {addr0}");
    println!("replica 1 (healthy)     on {}", server1.local_addr());

    // Tight timeouts keep the injected failures cheap; the breaker then
    // removes even that cost while a replica stays bad.
    let client_config = RemoteStoreConfig {
        connect_timeout: Duration::from_millis(200),
        op_timeout: Duration::from_millis(300),
        retries: 0,
        backoff: Duration::from_millis(2),
        ..RemoteStoreConfig::default()
    };
    let group = Arc::new(ReplicatedStore::with_config(
        vec![
            Arc::new(RemoteReportStore::connect_with(addr0, client_config)?)
                as Arc<dyn CheckedStore>,
            Arc::new(RemoteReportStore::connect_with(
                server1.local_addr(),
                client_config,
            )?) as Arc<dyn CheckedStore>,
        ],
        ReplicaConfig {
            trip_after: 2,
            hold_ops: 4,
            max_hold_ops: 64,
        },
    )?);

    // A service over the replica group: every solve fans out to both
    // replicas, every lookup fails over past whatever is broken.
    let service = SynthesisService::builder()
        .report_store(group.clone() as Arc<dyn ReportStore>)
        .concurrency(2)
        .build();
    let codes = [catalog::steane(), catalog::shor(), catalog::surface3()];
    for code in &codes {
        let response = service.submit(SynthesisRequest::new(code.clone()))?;
        println!(
            "solve  {:24} {:?} in {:?}",
            response.report.code_name, response.provenance, response.solve_time
        );
    }

    // Revisit the catalog while replica 0's wire keeps faulting: hits fail
    // over, nothing surfaces to the caller.
    for code in &codes {
        let response = service.submit(SynthesisRequest::new(code.clone()))?;
        assert_ne!(response.provenance, Provenance::Solved, "served from store");
    }
    println!(
        "after faulty revisits: {} wire faults injected, health {:?}",
        plan.injected(),
        group
            .health()
            .iter()
            .map(|h| h.state)
            .collect::<Vec<BreakerState>>()
    );

    // Kill replica 0 outright, then restart it at the SAME address with an
    // EMPTY directory and a clean wire — a wiped machine rejoining.
    server0.shutdown();
    println!("replica 0 killed");
    for code in &codes {
        service.submit(SynthesisRequest::new(code.clone()))?;
    }
    let server0b = StoreServer::bind(
        addr0,
        Arc::new(JsonReportStore::new(base.join("replica0-gen1"))?),
    )?;
    println!("replica 0 restarted empty at {addr0}");

    // Drive until the hold expires: the half-open probe closes the breaker
    // and read-repair rebuilds the lost copies over the wire.
    for _ in 0..4 {
        for code in &codes {
            service.submit(SynthesisRequest::new(code.clone()))?;
        }
    }
    let counters = group.counters();
    println!(
        "breaker trips {}  probes {}  failover reads {}  read repairs {}",
        counters.breaker_trips,
        counters.breaker_probes,
        counters.failover_reads,
        counters.read_repairs
    );
    assert!(counters.breaker_trips >= 1, "the kill tripped the breaker");
    assert!(counters.read_repairs >= 1, "the restart was reconverged");
    assert_eq!(
        group.health()[0].state,
        BreakerState::Closed,
        "replica 0 is back in rotation"
    );
    assert_eq!(service.stats().failed, 0, "no request ever failed");
    println!(
        "replica 0 holds {} repaired entries; {}",
        server0b.stats().puts,
        service.stats()
    );

    std::fs::remove_dir_all(&base).ok();
    Ok(())
}
