//! The serving front end in one walkthrough: priorities, coalescing,
//! cancellation and the tiered report store.
//!
//! ```text
//! cargo run --release --example service_demo
//! ```

use std::sync::Arc;

use dftsp::{
    CancellationToken, JsonReportStore, Priority, Provenance, ServiceError, SynthesisRequest,
    SynthesisService, TieredStore,
};
use dftsp_code::catalog;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    // A tiered store: a small memory front (deterministic LRU eviction) over
    // a JSON directory back, so reports survive process restarts while hot
    // entries are served without touching disk.
    let dir = std::env::temp_dir().join("dftsp-service-demo");
    std::fs::remove_dir_all(&dir).ok(); // a previous interrupted run may have left entries
    let store =
        Arc::new(TieredStore::new(4).with_back(Arc::new(JsonReportStore::new(&dir)?) as Arc<_>));

    let service = SynthesisService::builder()
        .report_store(store.clone())
        .concurrency(4)
        .build();

    // --- 1. A single high-priority request runs the SAT pipeline. ---------
    let response =
        service.submit(SynthesisRequest::new(catalog::steane()).priority(Priority::High))?;
    println!(
        "steane: {} (queued {:?}, served in {:?})",
        response.provenance, response.queue_time, response.solve_time
    );
    assert_eq!(response.provenance, Provenance::Solved);

    // --- 2. Concurrent identical requests coalesce onto one solve. --------
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let service = service.clone();
            std::thread::spawn(move || service.submit(SynthesisRequest::new(catalog::surface3())))
        })
        .collect();
    for client in clients {
        let response = client.join().expect("client thread")?;
        println!("surface-3: {}", response.provenance);
    }

    // --- 3. A repeat request is served from the store: zero SAT work. -----
    let cached = service.submit(SynthesisRequest::new(catalog::steane()))?;
    assert_eq!(cached.provenance, Provenance::Cached);
    println!(
        "steane again: {} in {:?}",
        cached.provenance, cached.solve_time
    );

    // --- 4. Cancellation drains a request without poisoning anything. -----
    let token = CancellationToken::new();
    token.cancel();
    let cancelled = service
        .submit(SynthesisRequest::new(catalog::shor()).cancellation(token))
        .unwrap_err();
    assert_eq!(cancelled, ServiceError::Cancelled);
    let recovered = service.submit(SynthesisRequest::new(catalog::shor()))?;
    println!("shor after a cancellation: {}", recovered.provenance);

    // --- 5. The traffic counters tell the dedup story. ---------------------
    println!("service: {}", service.stats());
    println!(
        "store: {} front hits, {} back hits, {} evictions",
        store.front_hits(),
        store.back_hits(),
        store.evictions()
    );
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
