//! Compare the synthesized deterministic protocols across the catalog codes:
//! verification/correction overhead (Table I) and logical error rates at two
//! physical error rates (the qualitative content of Fig. 4).
//!
//! ```text
//! cargo run --release -p dftsp --example code_comparison [-- --all]
//! ```
//!
//! By default only the three smallest codes are compared; pass `--all` to run
//! the full catalog (slower, identical to the bench binaries).

use dftsp::{ProtocolMetrics, SynthesisEngine};
use dftsp_code::catalog;
use dftsp_noise::{SubsetConfig, SubsetEstimate};

fn main() {
    let all = std::env::args().any(|a| a == "--all");
    let codes = if all {
        catalog::all()
    } else {
        vec![catalog::steane(), catalog::shor(), catalog::surface3()]
    };

    // One engine, the whole catalog: synthesis fans out over worker threads.
    let engine = SynthesisEngine::default();
    eprintln!(
        "synthesizing {} codes on {} threads ...",
        codes.len(),
        engine.threads()
    );
    let reports = engine.synthesize_all(&codes);

    println!(
        "{:<12} {:>11} {:>9} {:>9} {:>9} {:>9} {:>12} {:>12}",
        "code", "[[n,k,d]]", "prep CX", "ver ANC", "ver CX", "avg corr", "p_L(1e-3)", "p_L(1e-2)"
    );
    println!("{}", "-".repeat(95));
    let config = SubsetConfig {
        max_faults: 3,
        samples_per_stratum: 500,
    };
    for (code, report) in codes.iter().zip(reports) {
        let (n, k, d) = code.parameters();
        let report = match report {
            Ok(r) => r,
            Err(e) => {
                println!(
                    "{:<12} {:>11} synthesis failed: {e}",
                    code.name(),
                    format!("[[{n},{k},{d}]]")
                );
                continue;
            }
        };
        let metrics = ProtocolMetrics::from_protocol(&report.protocol);
        let estimate = SubsetEstimate::build(&report.protocol, &config, 11);
        println!(
            "{:<12} {:>11} {:>9} {:>9} {:>9} {:>9.2} {:>12.3e} {:>12.3e}",
            metrics.code_name,
            format!("[[{n},{k},{d}]]"),
            metrics.prep_cnots,
            metrics.total_verification_ancillas,
            metrics.total_verification_cnots,
            metrics.avg_correction_cnots,
            estimate.logical_error_rate(1e-3).mean,
            estimate.logical_error_rate(1e-2).mean,
        );
    }
    println!(
        "\nLarger codes pay more verification overhead; every protocol scales as O(p²), so the\nordering at low p reflects the two-fault failure probabilities."
    );
}
