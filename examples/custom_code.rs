//! Use the synthesis pipeline on codes that are *not* in the catalog: define
//! CSS codes from their check matrices, synthesize the deterministic
//! preparation protocols, and inspect every conditional branch.
//!
//! The example uses the `[[4,2,2]]` error-detecting code (the smallest
//! interesting CSS code and the inner code of the carbon-code substitute) and
//! an `[[8,3,2]]` cube code, demonstrating that the tooling is not tied to
//! the paper's specific catalog. It also shows the validation errors reported
//! for ill-formed inputs.
//!
//! ```text
//! cargo run --release -p dftsp --example custom_code
//! ```

use dftsp::{check_fault_tolerance, ProtocolMetrics, SynthesisEngine};
use dftsp_code::{CodeError, CssCode};
use dftsp_f2::BitMatrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The [[4,2,2]] code: stabilizers XXXX and ZZZZ.
    let four = CssCode::new(
        "[[4,2,2]]",
        BitMatrix::from_dense(&[&[1, 1, 1, 1][..]]),
        BitMatrix::from_dense(&[&[1, 1, 1, 1][..]]),
    )?;
    report(&four)?;

    // Ill-formed input: a redundant Z generator is rejected with a clear error.
    let rejected = CssCode::new(
        "[[8,3,2]] (redundant)",
        BitMatrix::from_dense(&[&[1, 1, 1, 1, 1, 1, 1, 1][..]]),
        BitMatrix::from_dense(&[
            &[1, 1, 1, 1, 0, 0, 0, 0][..],
            &[1, 1, 0, 0, 1, 1, 0, 0][..],
            &[0, 0, 1, 1, 1, 1, 0, 0][..], // dependent on the two rows above
        ]),
    );
    match rejected {
        Err(CodeError::RedundantGenerators) => {
            println!("redundant generator matrix rejected as expected\n")
        }
        other => panic!("expected a validation error, got {other:?}"),
    }

    // The [[8,3,2]] cube code: qubits on the cube vertices, X stabilizer on
    // the whole cube, Z stabilizers on three faces.
    let eight = CssCode::new(
        "[[8,3,2]]",
        BitMatrix::from_dense(&[&[1, 1, 1, 1, 1, 1, 1, 1][..]]),
        BitMatrix::from_dense(&[
            &[1, 1, 1, 1, 0, 0, 0, 0][..],
            &[1, 1, 0, 0, 1, 1, 0, 0][..],
            &[1, 0, 1, 0, 1, 0, 1, 0][..],
        ]),
    )?;
    report(&eight)?;
    Ok(())
}

fn report(code: &CssCode) -> Result<(), Box<dyn std::error::Error>> {
    println!("=== {code} ===");
    let synthesis = SynthesisEngine::default().synthesize(code)?;
    let protocol = synthesis.protocol;
    let metrics = ProtocolMetrics::from_protocol(&protocol);
    println!("{metrics} (synthesized in {:.1?})", synthesis.total_time);
    if protocol.layers.is_empty() {
        println!("no verification needed: the preparation circuit is already fault tolerant");
    }
    for layer in &protocol.layers {
        for (key, branch) in &layer.branches {
            println!(
                "  branch {key}: measurements {:?}, recoveries {:?}",
                branch
                    .measurements
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>(),
                branch
                    .recoveries
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
            );
        }
    }
    let report = check_fault_tolerance(&protocol);
    println!(
        "fault-tolerance check: {} faults examined, {} violations\n",
        report.faults_checked,
        report.violations.len()
    );
    assert!(report.is_fault_tolerant());
    Ok(())
}
