//! Two-run warm start against a persistent report store.
//!
//! ```text
//! cargo run --release -p dftsp --example warm_cache
//! ```
//!
//! The first run synthesizes the three small catalog codes and persists every
//! report as JSON; the second run opens a *new* store over the same directory
//! (simulating a fresh process) and serves every request from disk — zero SAT
//! queries, bit-identical reports, and a wall-clock speedup of several orders
//! of magnitude.

use std::sync::Arc;
use std::time::Instant;

use dftsp::{JsonReportStore, ReportStore, SynthesisEngine, SynthesisReport};
use dftsp_code::catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("dftsp-warm-cache-example");
    // Start from a clean slate so the first run is genuinely cold.
    std::fs::remove_dir_all(&dir).ok();

    let codes = vec![catalog::steane(), catalog::shor(), catalog::surface3()];
    let mut fingerprints: Vec<String> = Vec::new();

    for run in ["cold", "warm"] {
        // A fresh store per run: only the directory is shared, exactly as it
        // would be across two processes.
        let store = Arc::new(JsonReportStore::new(&dir)?);
        let engine = SynthesisEngine::builder()
            .report_store(store.clone())
            .build();

        let start = Instant::now();
        let reports = engine.synthesize_all(&codes);
        let elapsed = start.elapsed();

        println!(
            "{run} run: {elapsed:.2?} ({} store hits, {} misses)",
            store.hits(),
            store.misses()
        );
        for report in &reports {
            let report = report.as_ref().map_err(ToString::to_string)?;
            let totals = report.sat_totals();
            println!(
                "  {:<10} {} branches, sat calls={} (warm={}, retained clauses={})",
                report.code_name,
                report.branch_count(),
                totals.calls,
                totals.warm_queries,
                totals.retained_clauses,
            );
        }

        let rendered: Vec<String> = reports
            .iter()
            .map(|r| render(r.as_ref().expect("synthesis succeeds")))
            .collect();
        fingerprints.push(rendered.join("\n"));
    }

    assert_eq!(
        fingerprints[0], fingerprints[1],
        "the warm run must reproduce the cold run bit for bit"
    );
    println!("warm run is bit-identical to the cold run");
    Ok(())
}

/// Everything the warm run must reproduce: protocol, stage statistics and
/// recorded timings.
fn render(report: &SynthesisReport) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}",
        report.protocol.prep, report.protocol.layers, report.stages, report.total_time
    )
}
