//! Quickstart: synthesize the deterministic fault-tolerant preparation of the
//! Steane-code logical zero state, inspect its metrics and verify its fault
//! tolerance.
//!
//! ```text
//! cargo run --release -p dftsp --example quickstart
//! ```

use dftsp::{check_fault_tolerance, execute, NoFaults, ProtocolMetrics, SynthesisEngine};
use dftsp_code::catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a code from the catalog (any [[n, k, d < 5]] CSS code works).
    let code = catalog::steane();
    println!("code: {code}");

    // 2. Build a synthesis engine (prep method, flag policy, budgets and SAT
    //    backend are all configurable on the builder) and run the full
    //    pipeline: preparation circuit, verification measurements and
    //    SAT-optimal correction branches.
    let engine = SynthesisEngine::builder().build();
    let report = engine.synthesize(&code)?;
    let protocol = &report.protocol;
    println!(
        "preparation circuit: {} CNOTs, {} Hadamards",
        protocol.prep.circuit.stats().cnot_count,
        protocol.prep.seeds.len()
    );
    for (i, layer) in protocol.layers.iter().enumerate() {
        println!(
            "layer {}: verifies {} errors with {} measurement(s) ({} flagged), {} correction branch(es)",
            i + 1,
            layer.error_kind,
            layer.verification_ancillas(),
            layer.flag_ancillas(),
            layer.branches.len()
        );
        for (key, branch) in &layer.branches {
            println!(
                "  outcome {key}: {} extra measurement(s), {} CNOT(s), corrects {} errors",
                branch.ancilla_count(),
                branch.cnot_count(),
                branch.error_kind
            );
        }
    }

    // 3. The report carries per-stage timings and SAT statistics.
    println!("\nsynthesis stages ({:.1?} total):", report.total_time);
    for stage in &report.stages {
        println!(
            "  {:<16} {:>9.1?}  {}",
            stage.stage.to_string(),
            stage.time,
            stage.sat
        );
    }

    // 4. Summarize in the format of Table I of the paper.
    let metrics = ProtocolMetrics::from_protocol(protocol);
    println!("\nTable-I metrics: {metrics}");

    // 5. The fault-free protocol prepares the state exactly ...
    let record = execute(protocol, &mut NoFaults);
    assert!(record.residual.is_identity());

    // 6. ... and no single circuit fault can leave a dangerous error.
    let ft = check_fault_tolerance(protocol);
    println!(
        "\nfault-tolerance check: {} locations, {} single faults, {} violations",
        ft.locations,
        ft.faults_checked,
        ft.violations.len()
    );
    assert!(ft.is_fault_tolerant());
    println!("the protocol is strictly fault tolerant");
    Ok(())
}
