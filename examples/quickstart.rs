//! Quickstart: synthesize the deterministic fault-tolerant preparation of the
//! Steane-code logical zero state, inspect its metrics and verify its fault
//! tolerance.
//!
//! ```text
//! cargo run --release -p dftsp --example quickstart
//! ```

use dftsp::{
    check_fault_tolerance, execute, synthesize_protocol, NoFaults, ProtocolMetrics,
    SynthesisOptions,
};
use dftsp_code::catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a code from the catalog (any [[n, k, d < 5]] CSS code works).
    let code = catalog::steane();
    println!("code: {code}");

    // 2. Synthesize the full deterministic protocol: preparation circuit,
    //    verification measurements and SAT-optimal correction branches.
    let protocol = synthesize_protocol(&code, &SynthesisOptions::default())?;
    println!(
        "preparation circuit: {} CNOTs, {} Hadamards",
        protocol.prep.circuit.stats().cnot_count,
        protocol.prep.seeds.len()
    );
    for (i, layer) in protocol.layers.iter().enumerate() {
        println!(
            "layer {}: verifies {} errors with {} measurement(s) ({} flagged), {} correction branch(es)",
            i + 1,
            layer.error_kind,
            layer.verification_ancillas(),
            layer.flag_ancillas(),
            layer.branches.len()
        );
        for (key, branch) in &layer.branches {
            println!(
                "  outcome {key}: {} extra measurement(s), {} CNOT(s), corrects {} errors",
                branch.ancilla_count(),
                branch.cnot_count(),
                branch.error_kind
            );
        }
    }

    // 3. Summarize in the format of Table I of the paper.
    let metrics = ProtocolMetrics::from_protocol(&protocol);
    println!("\nTable-I metrics: {metrics}");

    // 4. The fault-free protocol prepares the state exactly ...
    let record = execute(&protocol, &mut NoFaults);
    assert!(record.residual.is_identity());

    // 5. ... and no single circuit fault can leave a dangerous error.
    let report = check_fault_tolerance(&protocol);
    println!(
        "\nfault-tolerance check: {} locations, {} single faults, {} violations",
        report.locations,
        report.faults_checked,
        report.violations.len()
    );
    assert!(report.is_fault_tolerant());
    println!("the protocol is strictly fault tolerant");
    Ok(())
}
