//! The distributed report store, end to end: one store server, two service
//! instances sharing it over TCP.
//!
//! Run with `cargo run --release --example remote_store_demo`.
//!
//! The demo assembles the multi-process serving topology inside one process
//! (the wire is a real 127.0.0.1 socket, so the processes boundary is the
//! only simulation):
//!
//! 1. a [`StoreServer`] serving a [`JsonReportStore`] directory,
//! 2. service instance A — [`TieredStore`] memory front over a
//!    [`RemoteReportStore`] back — which *solves* the codes and populates
//!    the shared server through the wire,
//! 3. service instance B — a fresh, cold instance with its own client —
//!    which answers the same catalog entirely from the remote store, with
//!    zero SAT solves,
//! 4. a non-blocking submission through
//!    [`SynthesisService::submit_nonblocking`], polled while the caller
//!    stays free.

use std::sync::Arc;

use dftsp::{
    JsonReportStore, Provenance, RemoteReportStore, ReportStore, StoreServer, SynthesisRequest,
    SynthesisService, TieredStore,
};
use dftsp_code::catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("dftsp-remote-demo-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // One shared store server; port 0 picks a free port.
    let server = StoreServer::bind("127.0.0.1:0", Arc::new(JsonReportStore::new(&dir)?))?;
    println!("store server listening on {}", server.local_addr());

    // A service instance: its own memory front tier, the shared remote back.
    let instance = |name: &'static str| -> Result<SynthesisService, std::io::Error> {
        let remote = RemoteReportStore::connect(server.local_addr())?;
        println!(
            "instance {name}: remote client for {}",
            remote.server_addr()
        );
        Ok(SynthesisService::builder()
            .report_store(Arc::new(
                TieredStore::new(64).with_back(Arc::new(remote) as Arc<dyn ReportStore>),
            ))
            .concurrency(2)
            .build())
    };

    let codes = [catalog::steane(), catalog::shor(), catalog::surface3()];

    // Instance A solves the catalog; every report is written through the
    // wire to the shared server.
    let service_a = instance("A")?;
    for code in &codes {
        let response = service_a.submit(SynthesisRequest::new(code.clone()))?;
        println!(
            "A: {:24} {:?} in {:?}",
            response.report.code_name, response.provenance, response.solve_time
        );
    }

    // Instance B is cold — fresh front tier, fresh connection — yet serves
    // the whole catalog from the shared store: cross-process dedup.
    let service_b = instance("B")?;
    for code in &codes {
        let response = service_b.submit(SynthesisRequest::new(code.clone()))?;
        assert_eq!(response.provenance, Provenance::Cached);
        println!(
            "B: {:24} {:?} (no SAT work)",
            response.report.code_name, response.provenance
        );
    }
    assert_eq!(service_b.stats().solved, 0, "B never solves");

    // Non-blocking submission: the caller keeps working while the request
    // (here a store hit) is served in the background.
    let mut handle = service_b.submit_nonblocking(SynthesisRequest::new(catalog::steane()));
    let mut polls = 0u32;
    let response = loop {
        match handle.try_take() {
            Some(result) => break result?,
            None => {
                polls += 1;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
    };
    println!(
        "non-blocking: {} {:?} after {polls} polls",
        response.report.code_name, response.provenance
    );

    println!("server counters: {}", server.stats());
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
