//! Walk through the deterministic Steane-code protocol of Fig. 2 of the
//! paper: inject the problematic propagated error by hand, watch the
//! verification fire, and confirm that the conditional correction removes the
//! need to restart (the whole point of the deterministic scheme).
//!
//! ```text
//! cargo run --release -p dftsp --example steane_deterministic
//! ```

use dftsp::{enumerate_single_fault_records, execute, NoFaults, SingleFault, SynthesisEngine};
use dftsp_circuit::{FaultEffect, Gate};
use dftsp_code::catalog;
use dftsp_noise::{monte_carlo, NoiseParams, PerfectDecoder};
use dftsp_pauli::{Pauli, PauliKind, PauliString};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let code = catalog::steane();
    let protocol = SynthesisEngine::default().synthesize(&code)?.protocol;
    let decoder = PerfectDecoder::for_protocol(&protocol);

    // The non-deterministic scheme would restart whenever the verification
    // fires. Count how often single faults trigger it — every one of those
    // restarts is avoided by the deterministic correction branch.
    let records = enumerate_single_fault_records(&protocol);
    let mut triggered = 0usize;
    let mut corrected = 0usize;
    for record in &records {
        let fired = record
            .execution
            .layer_outcomes
            .iter()
            .any(|key| !key.is_trivial());
        if fired {
            triggered += 1;
            if !decoder.classify(&record.execution.residual).is_failure() {
                corrected += 1;
            }
        }
    }
    println!(
        "single faults: {} total, {} trigger the verification, {} of those end with no logical error",
        records.len(),
        triggered,
        corrected
    );
    assert_eq!(
        triggered, corrected,
        "every detected fault must be corrected in place"
    );

    // Reproduce Example 3 of the paper explicitly: an X error on the control
    // of the last preparation CNOT spreads to a two-qubit error, the
    // verification detects it, and the conditional correction reduces it to
    // weight at most one.
    let last_cnot = (0..protocol.prep.circuit.len())
        .rev()
        .find(|&i| matches!(protocol.prep.circuit.gates()[i], Gate::Cnot { .. }))
        .expect("the preparation circuit contains CNOTs");
    let control = match protocol.prep.circuit.gates()[last_cnot] {
        Gate::Cnot { control, .. } => control,
        _ => unreachable!(),
    };
    let mut fault = SingleFault {
        location: last_cnot - 1,
        effect: FaultEffect::Pauli(PauliString::single(7, control, Pauli::X)),
    };
    let record = execute(&protocol, &mut fault);
    println!(
        "\ninjected X on qubit {control} before the last preparation CNOT:\n  residual on data     = {}\n  verification outcome = {}\n  branch taken         = {:?}",
        record.residual, record.layer_outcomes[0], record.branches_taken[0]
    );
    let residual_weight = protocol
        .context
        .reduced_weight(PauliKind::X, record.residual.x_part());
    println!("  stabilizer-reduced residual weight after correction = {residual_weight}");
    assert!(residual_weight <= 1);

    // Sanity check against the noiseless run and a quick Monte-Carlo sweep.
    assert!(execute(&protocol, &mut NoFaults).residual.is_identity());
    println!();
    for p in [0.02, 0.05, 0.1] {
        let estimate = monte_carlo(&protocol, NoiseParams::e1_1(p), 2000, 7);
        println!(
            "p = {p:>5}: logical error rate ≈ {:.4} ± {:.4}",
            estimate.mean, estimate.std_error
        );
    }
    Ok(())
}
