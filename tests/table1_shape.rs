//! Qualitative reproduction of Table I (Experiments E1 and E4 of DESIGN.md):
//! the synthesized circuit metrics must match the structural statements of
//! the paper — which codes need a single verification layer, where flags are
//! unnecessary, zero-CNOT correction branches, and Global ≤ Opt.

use dftsp::{ProtocolMetrics, SynthesisEngine};
use dftsp_code::catalog;
use dftsp_pauli::PauliKind;

#[test]
fn steane_row_matches_table_one() {
    // Table I, Steane row: one verification ancilla, three verification
    // CNOTs, no flags, a single correction branch with one ancilla and three
    // CNOTs.
    let protocol = SynthesisEngine::default()
        .synthesize(&catalog::steane())
        .map(|r| r.protocol)
        .unwrap();
    let metrics = ProtocolMetrics::from_protocol(&protocol);
    assert_eq!(metrics.layers.len(), 1, "single verification layer");
    let layer = &metrics.layers[0];
    assert_eq!(layer.error_kind, PauliKind::X);
    assert_eq!(layer.verification_ancillas, 1);
    assert_eq!(layer.verification_cnots, 3);
    assert_eq!(layer.flag_ancillas, 0);
    assert_eq!(layer.correction_ancillas, vec![1]);
    assert_eq!(layer.correction_cnots, vec![3]);
    assert!(layer.hook_correction_ancillas.is_empty());
    assert_eq!(metrics.total_verification_ancillas, 1);
    assert_eq!(metrics.total_verification_cnots, 3);
}

#[test]
#[ignore = "synthesizes the full catalog including the 15- and 16-qubit codes; several minutes"]
fn every_catalog_code_synthesizes_with_bounded_overhead() {
    // Structural sanity across the full catalog: synthesis succeeds, at most
    // two verification layers, every verification measurement weighs at most
    // the largest stabilizer weight, and branch lists are consistent.
    for code in catalog::all() {
        let protocol = match SynthesisEngine::default().synthesize(&code) {
            Ok(report) => report.protocol,
            Err(e) => panic!("{}: synthesis failed: {e}", code.name()),
        };
        let metrics = ProtocolMetrics::from_protocol(&protocol);
        assert!(metrics.layers.len() <= 2, "{}", code.name());
        assert!(metrics.total_verification_ancillas <= 8, "{}", code.name());
        for layer in &metrics.layers {
            assert!(layer.verification_ancillas >= 1);
            let branches = layer.correction_ancillas.len() + layer.hook_correction_ancillas.len();
            assert!(
                branches >= 1,
                "{}: a verified layer has at least one branch",
                code.name()
            );
            for &ancillas in layer
                .correction_ancillas
                .iter()
                .chain(&layer.hook_correction_ancillas)
            {
                assert!(ancillas <= 3, "{}", code.name());
            }
        }
    }
}

#[test]
fn distance_three_single_logical_qubit_codes_need_one_layer() {
    // Table I: Steane, Shor, Surface and Tetrahedral are handled with a
    // single verification layer (possibly flagged).
    for code in [catalog::steane(), catalog::shor(), catalog::surface3()] {
        let protocol = SynthesisEngine::default()
            .synthesize(&code)
            .unwrap()
            .protocol;
        assert!(
            protocol.layers.len() <= 1,
            "{} should need at most one verification layer, got {}",
            code.name(),
            protocol.layers.len()
        );
    }
}

#[test]
fn small_code_branches_need_at_most_two_extra_measurements() {
    // Table I reports tiny conditional corrections for the small d = 3 codes
    // (at most a couple of additional measurements per branch). Check the
    // same bound on the synthesized protocols.
    for code in [catalog::steane(), catalog::surface3(), catalog::shor()] {
        let protocol = SynthesisEngine::default()
            .synthesize(&code)
            .unwrap()
            .protocol;
        let metrics = ProtocolMetrics::from_protocol(&protocol);
        for layer in &metrics.layers {
            for &ancillas in layer
                .correction_ancillas
                .iter()
                .chain(&layer.hook_correction_ancillas)
            {
                assert!(
                    ancillas <= 2,
                    "{}: branch uses {ancillas} measurements",
                    code.name()
                );
            }
        }
    }
}

#[test]
#[ignore = "synthesizes the 16-qubit [[16,2,4]] substitute; several minutes"]
fn zero_cnot_correction_branches_occur_for_larger_codes() {
    // Table I shows zero-CNOT correction branches (w_m = 0): a branch whose
    // errors are all mutually compatible needs only the recovery. Our
    // [[16,2,4]] substitute exhibits the same feature.
    let protocol = SynthesisEngine::default()
        .synthesize(&catalog::code_16_2_4())
        .map(|r| r.protocol)
        .unwrap();
    let metrics = ProtocolMetrics::from_protocol(&protocol);
    let found = metrics.layers.iter().any(|layer| {
        layer
            .correction_cnots
            .iter()
            .chain(&layer.hook_correction_cnots)
            .any(|&w| w == 0)
    });
    assert!(found, "expected at least one zero-CNOT branch");
}

#[test]
fn steane_prep_rng_stream_is_pinned() {
    // The heuristic prep search is seeded (0x5EED_0003 in
    // `crates/core/src/prep.rs`) so its randomized restarts reproduce the
    // Table I Steane preparation: this test pins the exact circuit the tuned
    // RNG stream produces. If it fails, the RNG stream changed (a reordered
    // draw, a shim change, a perturbed seed) and the Table I numbers are no
    // longer guaranteed.
    let prep = dftsp::synthesize_prep(&catalog::steane(), &dftsp::PrepOptions::default());
    assert_eq!(prep.seeds, vec![0, 1, 3]);
    assert_eq!(prep.cnot_count(), 9);
    let gates: Vec<String> = prep
        .circuit
        .gates()
        .iter()
        .map(ToString::to_string)
        .collect();
    assert_eq!(
        gates,
        [
            "h q0",
            "h q1",
            "h q3",
            "cx q0, q6",
            "cx q3, q6",
            "cx q0, q4",
            "cx q0, q2",
            "cx q3, q4",
            "cx q3, q5",
            "cx q1, q5",
            "cx q1, q2",
            "cx q1, q6",
        ]
    );
}

#[test]
fn global_optimization_never_increases_the_expected_cost() {
    for code in [catalog::steane(), catalog::shor(), catalog::surface3()] {
        let engine = SynthesisEngine::default();
        let baseline = engine.synthesize(&code).unwrap().protocol;
        let global = engine.globally_optimize(&code).unwrap();
        let baseline_cost = ProtocolMetrics::from_protocol(&baseline).expected_cost();
        let global_cost = ProtocolMetrics::from_protocol(&global.protocol).expected_cost();
        assert!(
            global_cost <= baseline_cost + 1e-9,
            "{}: global {global_cost} > baseline {baseline_cost}",
            code.name()
        );
    }
}

#[test]
fn verification_totals_are_dominated_by_code_size() {
    // Fig. 4 / Table I ordering argument: larger codes need at least as much
    // verification as the Steane code (checked against the distance-4
    // carbon-code substitute, the largest code in the fast test set).
    let steane = ProtocolMetrics::from_protocol(
        &SynthesisEngine::default()
            .synthesize(&catalog::steane())
            .map(|r| r.protocol)
            .unwrap(),
    );
    let metrics = ProtocolMetrics::from_protocol(
        &SynthesisEngine::default()
            .synthesize(&catalog::carbon())
            .map(|r| r.protocol)
            .unwrap(),
    );
    assert!(metrics.total_verification_cnots >= steane.total_verification_cnots);
}
