//! Exhaustive single-fault fault-tolerance checks of synthesized protocols
//! (Experiment E3 of DESIGN.md): Definition 1 of the paper must hold for
//! every single circuit fault.

use dftsp::{check_fault_tolerance, enumerate_single_fault_records, FlagPolicy, SynthesisEngine};
use dftsp_code::{catalog, CssCode};
use dftsp_f2::BitMatrix;
use dftsp_pauli::PauliKind;

fn assert_fault_tolerant(code: &CssCode, engine: &SynthesisEngine) {
    let protocol = engine
        .synthesize(code)
        .unwrap_or_else(|e| panic!("synthesis failed for {}: {e}", code.name()))
        .protocol;
    let report = check_fault_tolerance(&protocol);
    assert!(
        report.is_fault_tolerant(),
        "{}: {} violations out of {} faults, first: {:?}",
        code.name(),
        report.violations.len(),
        report.faults_checked,
        report.violations.first()
    );
}

#[test]
fn steane_shor_and_surface_protocols_are_fault_tolerant() {
    for code in [catalog::steane(), catalog::shor(), catalog::surface3()] {
        assert_fault_tolerant(&code, &SynthesisEngine::default());
    }
}

#[test]
fn distance_four_carbon_substitute_protocol_is_fault_tolerant() {
    assert_fault_tolerant(&catalog::carbon(), &SynthesisEngine::default());
}

#[test]
#[ignore = "15-qubit codes; several minutes of synthesis and exhaustive checking"]
fn hamming_and_tetrahedral_protocols_are_fault_tolerant() {
    for code in [catalog::hamming_15_7(), catalog::tetrahedral()] {
        assert_fault_tolerant(&code, &SynthesisEngine::default());
    }
}

#[test]
fn searched_code_protocol_is_fault_tolerant() {
    assert_fault_tolerant(&catalog::code_11_1_3(), &SynthesisEngine::default());
}

#[test]
fn always_flagging_preserves_fault_tolerance() {
    let engine = SynthesisEngine::builder()
        .flag_policy(FlagPolicy::Always)
        .build();
    assert_fault_tolerant(&catalog::steane(), &engine);
    assert_fault_tolerant(&catalog::surface3(), &engine);
}

#[test]
fn globally_optimized_protocols_are_fault_tolerant() {
    let engine = SynthesisEngine::default();
    for code in [catalog::steane(), catalog::shor()] {
        let result = engine.globally_optimize(&code).unwrap();
        let report = check_fault_tolerance(&result.protocol);
        assert!(report.is_fault_tolerant(), "{}", code.name());
    }
}

#[test]
fn custom_distance_two_code_protocol_is_fault_tolerant() {
    let code = CssCode::new(
        "[[4,2,2]]",
        BitMatrix::from_dense(&[&[1, 1, 1, 1][..]]),
        BitMatrix::from_dense(&[&[1, 1, 1, 1][..]]),
    )
    .unwrap();
    assert_fault_tolerant(&code, &SynthesisEngine::default());
}

#[test]
fn every_dangerous_single_fault_is_detected_before_correction() {
    // Independent of the correction branches: any single fault whose residual
    // would be dangerous must produce a non-trivial verification outcome
    // (otherwise the protocol could not possibly correct it).
    let code = catalog::surface3();
    let protocol = SynthesisEngine::default()
        .synthesize(&code)
        .unwrap()
        .protocol;
    for record in enumerate_single_fault_records(&protocol) {
        let x_dangerous = protocol
            .context
            .is_dangerous(PauliKind::X, record.execution.residual.x_part());
        let z_dangerous = protocol
            .context
            .is_dangerous(PauliKind::Z, record.execution.residual.z_part());
        if x_dangerous || z_dangerous {
            assert!(
                record
                    .execution
                    .layer_outcomes
                    .iter()
                    .any(|key| !key.is_trivial()),
                "dangerous residual {} left undetected",
                record.execution.residual
            );
        }
    }
}
