//! Circuit-level noise integration tests (Experiment E2 of DESIGN.md): the
//! logical error rate of synthesized protocols scales quadratically with the
//! physical error rate, and the subset-sampling estimator agrees with direct
//! Monte Carlo where the latter is feasible.

use dftsp::SynthesisEngine;
use dftsp_code::catalog;
use dftsp_noise::{
    default_physical_rates, linear_reference, logical_error_curve, monte_carlo, NoiseParams,
    SubsetConfig, SubsetEstimate,
};

fn steane_protocol() -> dftsp::DeterministicProtocol {
    SynthesisEngine::default()
        .synthesize(&catalog::steane())
        .unwrap()
        .protocol
}

#[test]
fn single_fault_stratum_never_fails_for_synthesized_protocols() {
    for code in [catalog::steane(), catalog::surface3()] {
        let protocol = SynthesisEngine::default()
            .synthesize(&code)
            .unwrap()
            .protocol;
        let estimate = SubsetEstimate::build(
            &protocol,
            &SubsetConfig {
                max_faults: 1,
                samples_per_stratum: 400,
            },
            17,
        );
        assert_eq!(estimate.conditional_failure[0].mean, 0.0, "{}", code.name());
        assert_eq!(
            estimate.conditional_failure[1].mean,
            0.0,
            "{}: single faults never cause a logical error",
            code.name()
        );
    }
}

#[test]
fn logical_error_rate_scales_quadratically_below_threshold() {
    let protocol = steane_protocol();
    let rates = [1e-4, 1e-3, 1e-2];
    let config = SubsetConfig {
        max_faults: 3,
        samples_per_stratum: 800,
    };
    let curve = logical_error_curve(&protocol, &rates, &config, 5);
    let slope = curve.log_log_slope().expect("positive estimates");
    assert!(
        (1.7..2.3).contains(&slope),
        "expected O(p²) scaling, measured log-log slope {slope}"
    );
    // The protocol beats the unencoded (linear) reference at low p.
    let linear = linear_reference(&rates);
    assert!(curve.points[0].logical.mean < linear.points[0].logical.mean);
}

#[test]
fn subset_estimator_agrees_with_direct_monte_carlo_at_high_p() {
    let protocol = steane_protocol();
    let p = 0.03;
    let direct = monte_carlo(&protocol, NoiseParams::e1_1(p), 4000, 23);
    let subset = SubsetEstimate::build(
        &protocol,
        &SubsetConfig {
            max_faults: 6,
            samples_per_stratum: 1500,
        },
        29,
    )
    .logical_error_rate(p);
    let tolerance = 4.0 * (direct.std_error + subset.std_error) + 0.02;
    assert!(
        (direct.mean - subset.mean).abs() <= tolerance,
        "direct {} ± {} vs subset {} ± {}",
        direct.mean,
        direct.std_error,
        subset.mean,
        subset.std_error
    );
}

#[test]
fn default_rate_grid_matches_figure_range() {
    let rates = default_physical_rates(3);
    assert!(rates.first().unwrap() >= &9.9e-5);
    assert!(rates.last().unwrap() <= &1.01e-1);
}

#[test]
fn noisier_circuits_fail_more_often() {
    let protocol = steane_protocol();
    let low = monte_carlo(&protocol, NoiseParams::e1_1(0.02), 3000, 31).mean;
    let high = monte_carlo(&protocol, NoiseParams::e1_1(0.1), 3000, 37).mean;
    assert!(high > low);
}
