//! End-to-end pipeline integration tests: code definition → preparation
//! synthesis → verification → correction → protocol execution, spanning the
//! `dftsp-code`, `dftsp-circuit`, `dftsp-stabsim` and `dftsp` crates.

use dftsp::{execute, NoFaults, PrepMethod, ProtocolMetrics, SynthesisEngine, ZeroStateContext};
use dftsp_code::catalog;
use dftsp_pauli::PauliKind;
use dftsp_stabsim::{is_logical_zero_state, run_circuit, Tableau};

fn small_codes() -> Vec<dftsp_code::CssCode> {
    vec![catalog::steane(), catalog::shor(), catalog::surface3()]
}

fn engine() -> SynthesisEngine {
    SynthesisEngine::default()
}

#[test]
fn synthesized_prep_circuits_prepare_the_logical_zero_state() {
    // The three small codes plus the two distance-4 substitutes; the full
    // catalog (including the 15- and 16-qubit codes) is exercised by the
    // `table1` and `ftcheck` binaries and by the ignored test below.
    let codes = vec![
        catalog::steane(),
        catalog::shor(),
        catalog::surface3(),
        catalog::code_11_1_3(),
        catalog::carbon(),
    ];
    for code in codes {
        let protocol = match engine().synthesize(&code) {
            Ok(report) => report.protocol,
            Err(e) => panic!("synthesis failed for {}: {e}", code.name()),
        };
        let mut state = Tableau::new(code.num_qubits());
        run_circuit(&mut state, &protocol.prep.circuit, || false);
        assert!(
            is_logical_zero_state(&state, &code),
            "{} prep circuit must prepare |0…0⟩_L",
            code.name()
        );
    }
}

/// Full-catalog variant of the test above. Slow (several minutes); run with
/// `cargo test -- --ignored` or rely on the `table1`/`ftcheck` binaries.
#[test]
#[ignore = "covers the 15- and 16-qubit codes; several minutes of synthesis"]
fn synthesized_prep_circuits_prepare_the_logical_zero_state_full_catalog() {
    for code in catalog::all() {
        let protocol = engine()
            .synthesize(&code)
            .unwrap_or_else(|e| panic!("synthesis failed for {}: {e}", code.name()))
            .protocol;
        let mut state = Tableau::new(code.num_qubits());
        run_circuit(&mut state, &protocol.prep.circuit, || false);
        assert!(is_logical_zero_state(&state, &code), "{}", code.name());
    }
}

#[test]
fn noiseless_execution_leaves_no_residual_and_takes_no_branch() {
    for code in small_codes() {
        let protocol = engine().synthesize(&code).unwrap().protocol;
        let record = execute(&protocol, &mut NoFaults);
        assert!(record.residual.is_identity(), "{}", code.name());
        assert!(record.branches_taken.iter().all(Option::is_none));
        assert!(!record.terminated_early);
    }
}

#[test]
fn verification_measurements_stabilize_the_prepared_state() {
    for code in small_codes() {
        let protocol = engine().synthesize(&code).unwrap().protocol;
        let context = ZeroStateContext::new(code.clone());
        for layer in &protocol.layers {
            for gadget in &layer.verifications {
                let measured_kind = gadget.basis();
                assert!(
                    context
                        .measurable_group(gadget.detects())
                        .in_row_space(gadget.support()),
                    "{}: measured operator must stabilize |0…0⟩_L",
                    code.name()
                );
                assert_eq!(measured_kind, layer.error_kind.dual());
            }
            for branch in layer.branches.values() {
                for gadget in &branch.measurements {
                    assert!(context
                        .measurable_group(branch.error_kind)
                        .in_row_space(gadget.support()));
                }
            }
        }
    }
}

#[test]
fn optimal_prep_is_never_worse_than_heuristic() {
    for code in [catalog::steane(), catalog::surface3()] {
        let heu = engine().synthesize(&code).unwrap().protocol;
        let opt = SynthesisEngine::builder()
            .prep_method(PrepMethod::Optimal)
            .build()
            .synthesize(&code)
            .unwrap()
            .protocol;
        assert!(
            opt.prep.cnot_count() <= heu.prep.cnot_count(),
            "{}: optimal prep must not use more CNOTs",
            code.name()
        );
    }
}

#[test]
fn metrics_are_consistent_with_the_protocol_structure() {
    for code in small_codes() {
        let protocol = engine().synthesize(&code).unwrap().protocol;
        let metrics = ProtocolMetrics::from_protocol(&protocol);
        assert_eq!(metrics.layers.len(), protocol.layers.len());
        for (layer_metrics, layer) in metrics.layers.iter().zip(&protocol.layers) {
            assert_eq!(
                layer_metrics.verification_ancillas,
                layer.verifications.len()
            );
            assert_eq!(
                layer_metrics.correction_ancillas.len()
                    + layer_metrics.hook_correction_ancillas.len(),
                layer.branches.len()
            );
            let max_branches = (1usize << layer.verifications.len()) - 1;
            assert!(
                layer_metrics.correction_ancillas.len() <= max_branches,
                "at most 2^a_m - 1 syndrome branches"
            );
        }
        // The X layer, when present, always precedes the Z layer.
        let kinds: Vec<PauliKind> = protocol.layers.iter().map(|l| l.error_kind).collect();
        assert!(
            kinds == vec![]
                || kinds == vec![PauliKind::X]
                || kinds == vec![PauliKind::Z]
                || kinds == vec![PauliKind::X, PauliKind::Z]
        );
    }
}

#[test]
fn branch_recoveries_act_on_the_branch_sector_only() {
    for code in small_codes() {
        let protocol = engine().synthesize(&code).unwrap().protocol;
        for layer in &protocol.layers {
            for branch in layer.branches.values() {
                assert_eq!(branch.recoveries.len(), 1 << branch.measurements.len());
                for recovery in &branch.recoveries {
                    assert_eq!(recovery.len(), code.num_qubits());
                }
            }
        }
    }
}
