//! Integration tests of the `SynthesisEngine` session API: equivalence with
//! the classic free functions, incremental-vs-fresh ladder cross-checks,
//! report-store round-trips, batched multi-code synthesis, and catalog
//! round-trips.

use std::sync::Arc;

use dftsp::{
    synthesize_protocol, BackendChoice, JsonReportStore, LadderMode, MemoryReportStore, Provenance,
    ReportStore, SynthesisEngine, SynthesisOptions, SynthesisReport, SynthesisRequest,
    SynthesisService,
};
use dftsp_code::catalog;

/// Bit-for-bit structural equality: the `Debug` rendering covers every field
/// of the preparation circuit and every layer, gadget, branch and recovery.
fn protocol_fingerprint(protocol: &dftsp::DeterministicProtocol) -> String {
    format!("{:?}|{:?}", protocol.prep.circuit, protocol.layers)
}

#[test]
fn builder_defaults_reproduce_the_classic_pipeline_bit_for_bit() {
    for code in [catalog::steane(), catalog::surface3()] {
        let classic = synthesize_protocol(&code, &SynthesisOptions::default()).unwrap();
        let engine = SynthesisEngine::builder().build();
        let report = engine.synthesize(&code).unwrap();
        assert_eq!(
            protocol_fingerprint(&classic),
            protocol_fingerprint(&report.protocol),
            "{}: engine defaults must match synthesize_protocol exactly",
            code.name()
        );
    }
}

#[test]
fn synthesize_all_matches_sequential_synthesis() {
    let engine = SynthesisEngine::builder().threads(4).build();
    let codes = vec![catalog::steane(), catalog::shor(), catalog::surface3()];
    let batched = engine.synthesize_all(&codes);
    assert_eq!(batched.len(), codes.len());
    for (code, batched) in codes.iter().zip(&batched) {
        let sequential = engine.synthesize(code).unwrap();
        let batched = batched.as_ref().unwrap();
        assert_eq!(batched.code_name, code.name());
        assert_eq!(
            protocol_fingerprint(&sequential.protocol),
            protocol_fingerprint(&batched.protocol),
            "{}: batched synthesis must be deterministic",
            code.name()
        );
    }
}

#[test]
fn parallel_branch_corrections_match_the_serial_path_bit_for_bit() {
    // Per-branch correction solves fan out over the engine's worker threads;
    // joining in deterministic branch order and merging per-branch SatStats
    // must make the whole report — protocol *and* statistics — bit-identical
    // to the serial path.
    for code in [catalog::steane(), catalog::shor(), catalog::surface3()] {
        let serial = SynthesisEngine::builder()
            .threads(1)
            .build()
            .synthesize(&code)
            .unwrap();
        let parallel = SynthesisEngine::builder()
            .threads(4)
            .build()
            .synthesize(&code)
            .unwrap();
        assert_eq!(
            protocol_fingerprint(&serial.protocol),
            protocol_fingerprint(&parallel.protocol),
            "{}: thread count must not change the synthesized protocol",
            code.name()
        );
        assert_eq!(
            serial.sat_totals(),
            parallel.sat_totals(),
            "{}: merged per-branch statistics must equal the serial totals",
            code.name()
        );
        for (s, p) in serial.stages.iter().zip(&parallel.stages) {
            assert_eq!(s.sat, p.sat, "{}: per-stage stats must match", code.name());
            assert_eq!(s.branches, p.branches, "{}", code.name());
        }
    }
}

#[test]
#[ignore = "synthesizes the full catalog including the 15- and 16-qubit codes; several minutes"]
fn synthesize_all_covers_the_full_catalog() {
    let engine = SynthesisEngine::default();
    let codes = catalog::all();
    let reports = engine.synthesize_all(&codes);
    for (code, report) in codes.iter().zip(reports) {
        let report = report.unwrap_or_else(|e| panic!("{}: {e}", code.name()));
        assert_eq!(report.code_name, code.name());
        assert!(report.sat_totals().calls > 0 || report.protocol.layers.is_empty());
    }
}

#[test]
fn reports_carry_stage_and_cache_statistics() {
    let report: SynthesisReport = SynthesisEngine::default()
        .synthesize(&catalog::steane())
        .unwrap();
    assert!(!report.stages.is_empty());
    assert!(report.total_time >= report.stages.iter().map(|s| s.time).sum());
    assert!(report.sat_totals().calls > 0);
    assert_eq!(report.sat_totals().interrupted, 0);
    // The prep-fault enumeration is shared between the second-layer decision
    // and the first verification layer.
    assert!(report.fault_cache_hits >= 1);
    assert!(report.fault_cache_misses >= 1);
}

#[test]
fn dimacs_logging_backend_is_a_drop_in_replacement() {
    let code = catalog::surface3();
    let cdcl = SynthesisEngine::builder()
        .solver(BackendChoice::Cdcl)
        .build()
        .synthesize(&code)
        .unwrap();
    let logged = SynthesisEngine::builder()
        .solver(BackendChoice::DimacsLogging)
        .build()
        .synthesize(&code)
        .unwrap();
    assert_eq!(
        protocol_fingerprint(&cdcl.protocol),
        protocol_fingerprint(&logged.protocol)
    );
}

/// Everything a stored-and-reloaded report must reproduce exactly: the
/// protocol, the per-stage statistics and the recorded timings.
fn report_fingerprint(report: &SynthesisReport) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}",
        report.code_name,
        report.protocol.prep,
        report.protocol.layers,
        report.stages,
        (
            report.fault_cache_hits,
            report.fault_cache_misses,
            report.total_time
        ),
    )
}

fn mode_engine(backend: BackendChoice, mode: LadderMode) -> SynthesisEngine {
    SynthesisEngine::builder()
        .solver(backend)
        .ladder_mode(mode)
        .build()
}

#[test]
fn incremental_ladders_match_fresh_ladders_bit_for_bit() {
    // The incremental sessions reuse learned clauses across the (u, v)
    // ladder; the canonical extraction at the optimum must nevertheless make
    // the synthesized protocols bit-identical to the fresh-backend path —
    // under the plain CDCL backend and under the model-cross-checking
    // DIMACS-logging backend alike.
    for backend in [BackendChoice::Cdcl, BackendChoice::DimacsLogging] {
        for code in [catalog::steane(), catalog::shor(), catalog::surface3()] {
            let incremental = mode_engine(backend, LadderMode::Incremental)
                .synthesize(&code)
                .unwrap();
            let fresh = mode_engine(backend, LadderMode::Fresh)
                .synthesize(&code)
                .unwrap();
            assert_eq!(
                protocol_fingerprint(&incremental.protocol),
                protocol_fingerprint(&fresh.protocol),
                "{} on {backend}: ladder modes must agree bit for bit",
                code.name()
            );
        }
    }
}

/// Stage structure (kinds, branch counts) without the per-stage SAT
/// statistics — a racing portfolio legitimately does different amounts of
/// solver work than a single backend, but must produce the same stages.
fn stage_structure(report: &SynthesisReport) -> Vec<(String, usize)> {
    report
        .stages
        .iter()
        .map(|s| (s.stage.to_string(), s.branches))
        .collect()
}

/// The portfolio acceptance gauge: racing independent SAT engines per query
/// must leave the synthesized artifact bit-identical to the serial
/// single-backend engine — protocol *and* stage structure — no matter which
/// engine wins which race. Runs twice per code to also exercise run-to-run
/// stability of the racing path itself.
fn assert_portfolio_matches_single_backend(codes: &[dftsp_code::CssCode]) {
    for code in codes {
        let reference = SynthesisEngine::builder()
            .solver(BackendChoice::Cdcl)
            .threads(1)
            .build()
            .synthesize(code)
            .unwrap();
        for round in 0..2 {
            let raced = SynthesisEngine::builder()
                .solver(BackendChoice::portfolio())
                .build()
                .synthesize(code)
                .unwrap();
            assert_eq!(
                protocol_fingerprint(&reference.protocol),
                protocol_fingerprint(&raced.protocol),
                "{} round {round}: a portfolio race winner leaked into the protocol",
                code.name()
            );
            assert_eq!(
                stage_structure(&reference),
                stage_structure(&raced),
                "{} round {round}: stage structure must be winner-independent",
                code.name()
            );
        }
    }
}

#[test]
fn portfolio_race_is_bit_identical_to_single_backend_on_d3_codes() {
    assert_portfolio_matches_single_backend(&[
        catalog::steane(),
        catalog::shor(),
        catalog::surface3(),
    ]);
}

#[test]
#[ignore = "synthesizes every d=3 catalog code twice with the portfolio; several minutes"]
fn portfolio_race_is_bit_identical_to_single_backend_on_the_full_d3_catalog() {
    let d3: Vec<_> = catalog::all()
        .into_iter()
        .filter(|code| code.parameters().2 == 3)
        .collect();
    assert!(!d3.is_empty());
    assert_portfolio_matches_single_backend(&d3);
}

#[test]
fn checked_portfolio_cross_checks_every_query_and_matches_cdcl() {
    // The checked portfolio runs all three engines to completion on every
    // query and panics on any verdict disagreement, so this test doubles as
    // an end-to-end cross-check of the independent engines over the real
    // synthesis workload. Its reports come from the primary (CDCL) member.
    let code = catalog::steane();
    let cdcl = SynthesisEngine::builder()
        .solver(BackendChoice::Cdcl)
        .threads(1)
        .build()
        .synthesize(&code)
        .unwrap();
    let checked = SynthesisEngine::builder()
        .solver(BackendChoice::portfolio_checked())
        .threads(1)
        .build()
        .synthesize(&code)
        .unwrap();
    assert_eq!(
        protocol_fingerprint(&cdcl.protocol),
        protocol_fingerprint(&checked.protocol),
    );
    // Attribution: every raced/checked query is recorded with its lanes.
    let totals = checked.sat_totals();
    assert!(!totals.portfolio.is_empty());
    let single_totals = cdcl.sat_totals();
    assert!(single_totals.portfolio.is_empty());
}

#[test]
#[ignore = "synthesizes the full catalog twice per backend; many minutes"]
fn incremental_ladders_match_fresh_ladders_on_the_full_catalog() {
    for backend in [BackendChoice::Cdcl, BackendChoice::DimacsLogging] {
        for code in catalog::all() {
            let incremental = mode_engine(backend, LadderMode::Incremental)
                .synthesize(&code)
                .unwrap_or_else(|e| panic!("{}: {e}", code.name()));
            let fresh = mode_engine(backend, LadderMode::Fresh)
                .synthesize(&code)
                .unwrap_or_else(|e| panic!("{}: {e}", code.name()));
            assert_eq!(
                protocol_fingerprint(&incremental.protocol),
                protocol_fingerprint(&fresh.protocol),
                "{} on {backend}",
                code.name()
            );
        }
    }
}

/// Synthesizes `code` in both ladder modes and returns
/// `(incremental totals, fresh totals)`.
fn mode_totals(code: &dftsp_code::CssCode) -> (dftsp::SatStats, dftsp::SatStats) {
    let incremental = mode_engine(BackendChoice::Cdcl, LadderMode::Incremental)
        .synthesize(code)
        .unwrap();
    let fresh = mode_engine(BackendChoice::Cdcl, LadderMode::Fresh)
        .synthesize(code)
        .unwrap();
    (incremental.sat_totals(), fresh.sat_totals())
}

#[test]
fn incremental_ladders_reduce_sat_work() {
    // The acceptance gauge of the session redesign, on the fast test set:
    // warm ladders answer queries on a live solver and never re-encode the
    // base formula per query, and on the Steane code (the distance-3 2D
    // color code) they also finish with fewer cumulative conflicts. (The
    // larger distance-3 color-code benchmark is the ignored test below.)
    for code in [catalog::steane(), catalog::surface3()] {
        let (warm_totals, fresh_totals) = mode_totals(&code);
        assert!(
            warm_totals.warm_queries > 0,
            "{}: ladders must answer queries on a warm solver",
            code.name()
        );
        assert_eq!(fresh_totals.warm_queries, 0);
        assert!(warm_totals.retained_clauses > 0, "{}", code.name());
        assert!(
            warm_totals.clauses < fresh_totals.clauses,
            "{}: warm ladders must not re-encode the base formula per query",
            code.name()
        );
    }
    let (warm_totals, fresh_totals) = mode_totals(&catalog::steane());
    assert!(
        warm_totals.conflicts < fresh_totals.conflicts,
        "Steane: warm {} vs fresh {} cumulative conflicts",
        warm_totals.conflicts,
        fresh_totals.conflicts
    );
}

#[test]
#[ignore = "synthesizes the 15-qubit tetrahedral code twice; several minutes"]
fn incremental_ladders_reduce_conflicts_on_the_d3_color_code() {
    // On the [[15,1,3]] tetrahedral (3D distance-3 color) code — where the
    // ladders are long enough for clause reuse to matter — the warm path
    // must beat the fresh path on cumulative conflicts, not just on encoding
    // work.
    let (warm_totals, fresh_totals) = mode_totals(&catalog::tetrahedral());
    assert!(warm_totals.warm_queries > 0);
    assert!(
        warm_totals.conflicts < fresh_totals.conflicts,
        "warm {} vs fresh {} cumulative conflicts",
        warm_totals.conflicts,
        fresh_totals.conflicts
    );
    assert!(warm_totals.clauses < fresh_totals.clauses);
}

#[test]
fn populated_report_store_serves_synthesize_all_without_sat_work() {
    let store = Arc::new(MemoryReportStore::new());
    let engine = SynthesisEngine::builder()
        .report_store(store.clone())
        .threads(2)
        .build();
    let codes = vec![catalog::steane(), catalog::shor(), catalog::surface3()];

    let first = engine.synthesize_all(&codes);
    assert_eq!(store.misses(), codes.len() as u64);
    assert_eq!(store.hits(), 0);

    // The second run must be served entirely from the store: every lookup
    // hits (zero SAT queries are issued) and the reports are bit-identical,
    // down to stage statistics and recorded timings.
    let second = engine.synthesize_all(&codes);
    assert_eq!(store.hits(), codes.len() as u64);
    assert_eq!(store.misses(), codes.len() as u64);
    for (first, second) in first.iter().zip(&second) {
        assert_eq!(
            report_fingerprint(first.as_ref().unwrap()),
            report_fingerprint(second.as_ref().unwrap()),
        );
    }
}

#[test]
fn json_report_store_warm_starts_a_second_engine() {
    let dir = std::env::temp_dir().join(format!("dftsp-engine-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let code = catalog::steane();

    let cold_store = Arc::new(JsonReportStore::new(&dir).unwrap());
    let cold = SynthesisEngine::builder()
        .report_store(cold_store.clone())
        .build()
        .synthesize(&code)
        .unwrap();
    assert_eq!(cold_store.misses(), 1);

    // A brand-new store over the same directory (a fresh process in real
    // deployments) serves the request from disk, bit-identically.
    let warm_store = Arc::new(JsonReportStore::new(&dir).unwrap());
    let warm = SynthesisEngine::builder()
        .report_store(warm_store.clone())
        .build()
        .synthesize(&code)
        .unwrap();
    assert_eq!(warm_store.hits(), 1);
    assert_eq!(warm_store.misses(), 0);
    assert_eq!(report_fingerprint(&cold), report_fingerprint(&warm));

    // Different configurations must not collide in the store.
    let other = SynthesisEngine::builder()
        .report_store(warm_store.clone())
        .ladder_mode(LadderMode::Fresh)
        .build()
        .synthesize(&code)
        .unwrap();
    assert_eq!(warm_store.misses(), 1);
    assert_eq!(
        protocol_fingerprint(&warm.protocol),
        protocol_fingerprint(&other.protocol)
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A [`ReportStore`] that never stores anything but makes every lookup
/// rendezvous at a barrier. Each service request performs exactly one store
/// lookup immediately before claiming or joining the in-flight key, so the
/// barrier releases all clients into the coalescing window together: no
/// client can lag behind before the window opens, and the window itself
/// spans the leader's entire SAT solve.
#[derive(Debug)]
struct RendezvousStore(std::sync::Barrier);

impl ReportStore for RendezvousStore {
    fn load(
        &self,
        _key: &dftsp::ReportKey,
        _code: &dftsp_code::CssCode,
    ) -> Option<SynthesisReport> {
        self.0.wait();
        None
    }
    fn save(&self, _key: &dftsp::ReportKey, _report: &SynthesisReport) {}
    fn hits(&self) -> u64 {
        0
    }
    fn misses(&self) -> u64 {
        0
    }
}

#[test]
fn concurrent_identical_requests_coalesce_onto_one_solve() {
    // The serving acceptance proof: 8 identical requests submitted from 8
    // client threads against a service at concurrency 4 must trigger exactly
    // one SAT pipeline execution — one response is Solved and carries the
    // full SAT statistics, the other 7 are Coalesced fan-outs — and every
    // report must be bit-identical (protocol, stage statistics, timings) to
    // the serial threads(1) engine report.
    let code = catalog::steane();
    let serial = SynthesisEngine::builder()
        .threads(1)
        .build()
        .synthesize(&code)
        .unwrap();

    let service = SynthesisService::builder()
        .report_store(Arc::new(RendezvousStore(std::sync::Barrier::new(8))))
        .concurrency(4)
        .build();
    let clients: Vec<_> = (0..8)
        .map(|_| {
            let service = service.clone();
            let code = code.clone();
            std::thread::spawn(move || service.submit(SynthesisRequest::new(code)).unwrap())
        })
        .collect();
    let responses: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    let solved: Vec<_> = responses
        .iter()
        .filter(|r| r.provenance == Provenance::Solved)
        .collect();
    let coalesced = responses
        .iter()
        .filter(|r| r.provenance == Provenance::Coalesced)
        .count();
    assert_eq!(solved.len(), 1, "exactly one request runs the SAT pipeline");
    assert_eq!(coalesced, 7, "every other request rides that solve");

    // One pipeline execution, verified through the SAT totals: the solved
    // response carries exactly the serial run's statistics (had a second
    // pipeline contributed, the totals could not match), and every
    // fanned-out report repeats them rather than adding to them.
    assert_eq!(solved[0].report.sat_totals(), serial.sat_totals());
    for response in &responses {
        assert_eq!(
            protocol_fingerprint(&response.report.protocol),
            protocol_fingerprint(&serial.protocol),
            "every response is bit-identical to the serial protocol"
        );
        for (served, reference) in response.report.stages.iter().zip(&serial.stages) {
            assert_eq!(served.sat, reference.sat, "per-stage SAT stats match");
            assert_eq!(served.branches, reference.branches);
        }
        // All eight responses fan out one report object: equal down to the
        // recorded wall-clock timings.
        assert_eq!(
            report_fingerprint(&response.report),
            report_fingerprint(&solved[0].report),
        );
    }

    let stats = service.stats();
    assert_eq!(stats.submitted, 8);
    assert_eq!(stats.solved, 1);
    assert_eq!(stats.coalesced, 7);
    assert_eq!(stats.cached, 0);
}

#[test]
fn coalescing_respects_distinct_configurations() {
    // Requests that differ in any key ingredient (here: the ladder mode)
    // must not coalesce — they are different questions.
    let service = SynthesisService::builder().concurrency(4).build();
    let responses = service.submit_all(vec![
        SynthesisRequest::new(catalog::steane()),
        SynthesisRequest::new(catalog::steane()).ladder_mode(LadderMode::Fresh),
    ]);
    let provenances: Vec<_> = responses
        .into_iter()
        .map(|r| r.unwrap().provenance)
        .collect();
    assert_eq!(provenances, vec![Provenance::Solved, Provenance::Solved]);
}

#[test]
fn catalog_by_name_round_trips_for_every_code() {
    for code in catalog::all() {
        let found = catalog::by_name(code.name())
            .unwrap_or_else(|| panic!("{} must be retrievable by name", code.name()));
        assert_eq!(found.name(), code.name());
        assert_eq!(found.parameters(), code.parameters());
    }
}

#[test]
fn globally_optimize_matches_across_thread_counts() {
    // The candidate fan-out must leave the winning protocol, the candidate
    // counts, the winner-attributed stage statistics and the explored
    // aggregate bit-identical at every thread count.
    for code in [catalog::steane(), catalog::shor()] {
        let serial = SynthesisEngine::builder()
            .threads(1)
            .build()
            .globally_optimize(&code)
            .unwrap();
        let parallel = SynthesisEngine::builder()
            .threads(4)
            .build()
            .globally_optimize(&code)
            .unwrap();
        assert_eq!(
            protocol_fingerprint(&serial.protocol),
            protocol_fingerprint(&parallel.protocol),
            "{}: thread count must not change the globally optimal protocol",
            code.name()
        );
        assert_eq!(serial.candidates_per_layer, parallel.candidates_per_layer);
        assert_eq!(
            serial.explored,
            parallel.explored,
            "{}: the explored aggregate must merge candidate stats in order",
            code.name()
        );
        assert_eq!(serial.stages.len(), parallel.stages.len());
        for (s, p) in serial.stages.iter().zip(&parallel.stages) {
            assert_eq!(s.stage, p.stage, "{}", code.name());
            assert_eq!(s.sat, p.sat, "{}: per-stage stats must match", code.name());
            assert_eq!(s.branches, p.branches, "{}", code.name());
        }
    }
}

#[test]
fn globally_optimize_attributes_only_the_winner_to_the_correction_stage() {
    // More than one candidate is explored on the Steane code; the correction
    // stage must carry the winner's statistics alone, with the full
    // exploration cost (winner included) in the explored aggregate.
    let report = SynthesisEngine::builder()
        .build()
        .globally_optimize(&catalog::steane())
        .unwrap();
    assert!(
        report.candidates_per_layer.iter().any(|&n| n > 1),
        "Steane explores multiple verification candidates"
    );
    let correction_calls: u64 = report
        .stages
        .iter()
        .filter(|s| matches!(s.stage, dftsp::Stage::Correction(_)))
        .map(|s| s.sat.calls)
        .sum();
    assert!(correction_calls > 0);
    assert!(
        report.explored.calls > correction_calls,
        "losing candidates' SAT work ({} calls) must exceed the winners' ({})",
        report.explored.calls,
        correction_calls
    );
}

#[test]
fn globally_optimize_surfaces_the_real_correction_error() {
    // A zero correction-measurement budget makes every candidate fail while
    // synthesizing correction branches. The historical bug discarded those
    // errors and fabricated `Verification { BudgetExhausted }`; the report
    // must instead surface the last real correction failure with its stage
    // attribution intact.
    let error = SynthesisEngine::builder()
        .max_correction_measurements(0)
        .build()
        .globally_optimize(&catalog::steane())
        .unwrap_err();
    assert!(
        matches!(error, dftsp::SynthesisError::Correction { .. }),
        "expected the candidates' correction error, got: {error:?}"
    );
}
