//! Integration tests of the `SynthesisEngine` session API: equivalence with
//! the classic free functions, batched multi-code synthesis, and catalog
//! round-trips.

use dftsp::{
    synthesize_protocol, BackendChoice, SynthesisEngine, SynthesisOptions, SynthesisReport,
};
use dftsp_code::catalog;

/// Bit-for-bit structural equality: the `Debug` rendering covers every field
/// of the preparation circuit and every layer, gadget, branch and recovery.
fn protocol_fingerprint(protocol: &dftsp::DeterministicProtocol) -> String {
    format!("{:?}|{:?}", protocol.prep.circuit, protocol.layers)
}

#[test]
fn builder_defaults_reproduce_the_classic_pipeline_bit_for_bit() {
    for code in [catalog::steane(), catalog::surface3()] {
        let classic = synthesize_protocol(&code, &SynthesisOptions::default()).unwrap();
        let engine = SynthesisEngine::builder().build();
        let report = engine.synthesize(&code).unwrap();
        assert_eq!(
            protocol_fingerprint(&classic),
            protocol_fingerprint(&report.protocol),
            "{}: engine defaults must match synthesize_protocol exactly",
            code.name()
        );
    }
}

#[test]
fn synthesize_all_matches_sequential_synthesis() {
    let engine = SynthesisEngine::builder().threads(4).build();
    let codes = vec![catalog::steane(), catalog::shor(), catalog::surface3()];
    let batched = engine.synthesize_all(&codes);
    assert_eq!(batched.len(), codes.len());
    for (code, batched) in codes.iter().zip(&batched) {
        let sequential = engine.synthesize(code).unwrap();
        let batched = batched.as_ref().unwrap();
        assert_eq!(batched.code_name, code.name());
        assert_eq!(
            protocol_fingerprint(&sequential.protocol),
            protocol_fingerprint(&batched.protocol),
            "{}: batched synthesis must be deterministic",
            code.name()
        );
    }
}

#[test]
#[ignore = "synthesizes the full catalog including the 15- and 16-qubit codes; several minutes"]
fn synthesize_all_covers_the_full_catalog() {
    let engine = SynthesisEngine::default();
    let codes = catalog::all();
    let reports = engine.synthesize_all(&codes);
    for (code, report) in codes.iter().zip(reports) {
        let report = report.unwrap_or_else(|e| panic!("{}: {e}", code.name()));
        assert_eq!(report.code_name, code.name());
        assert!(report.sat_totals().calls > 0 || report.protocol.layers.is_empty());
    }
}

#[test]
fn reports_carry_stage_and_cache_statistics() {
    let report: SynthesisReport = SynthesisEngine::default()
        .synthesize(&catalog::steane())
        .unwrap();
    assert!(!report.stages.is_empty());
    assert!(report.total_time >= report.stages.iter().map(|s| s.time).sum());
    assert!(report.sat_totals().calls > 0);
    assert_eq!(report.sat_totals().interrupted, 0);
    // The prep-fault enumeration is shared between the second-layer decision
    // and the first verification layer.
    assert!(report.fault_cache_hits >= 1);
    assert!(report.fault_cache_misses >= 1);
}

#[test]
fn dimacs_logging_backend_is_a_drop_in_replacement() {
    let code = catalog::surface3();
    let cdcl = SynthesisEngine::builder()
        .solver(BackendChoice::Cdcl)
        .build()
        .synthesize(&code)
        .unwrap();
    let logged = SynthesisEngine::builder()
        .solver(BackendChoice::DimacsLogging)
        .build()
        .synthesize(&code)
        .unwrap();
    assert_eq!(
        protocol_fingerprint(&cdcl.protocol),
        protocol_fingerprint(&logged.protocol)
    );
}

#[test]
fn catalog_by_name_round_trips_for_every_code() {
    for code in catalog::all() {
        let found = catalog::by_name(code.name())
            .unwrap_or_else(|| panic!("{} must be retrievable by name", code.name()));
        assert_eq!(found.name(), code.name());
        assert_eq!(found.parameters(), code.parameters());
    }
}
