//! Compile-time audit of the public error surface: every public error type
//! of `dftsp-core` and `dftsp-sat` must implement `std::error::Error` (and
//! therefore `Display` and `Debug`) plus `Send + Sync + 'static`, so service
//! callers can `?`-propagate any of them uniformly — including boxing into
//! `Box<dyn Error + Send + Sync>`.

use std::error::Error;

/// The bound a public error type must satisfy to compose with `?`, error
/// trait objects and cross-thread result passing. Instantiating this
/// function *is* the audit: a missing impl fails to compile.
fn assert_uniform_error<E: Error + Send + Sync + 'static>() {}

#[test]
fn every_public_error_type_is_a_uniform_std_error() {
    // dftsp-core.
    assert_uniform_error::<dftsp::SynthesisError>();
    assert_uniform_error::<dftsp::ServiceError>();
    assert_uniform_error::<dftsp::WireError>();
    assert_uniform_error::<dftsp::FaultError>();
    assert_uniform_error::<dftsp::ReplicaError>();
    assert_uniform_error::<dftsp::StoreFault>();
    assert_uniform_error::<dftsp::RemoteConfigError>();
    assert_uniform_error::<dftsp::verify::VerificationError>();
    assert_uniform_error::<dftsp::correct::CorrectionError>();
    // dftsp-sat.
    assert_uniform_error::<dftsp_sat::ParseDimacsError>();
    // dftsp-code (part of the serving call chain via catalog lookups).
    assert_uniform_error::<dftsp_code::CodeError>();
}

#[test]
fn service_errors_propagate_with_question_mark() {
    // The uniform bound in practice: one function body `?`-propagating both
    // a service error and a synthesis error into `Box<dyn Error>`.
    fn serve() -> Result<(), Box<dyn Error + Send + Sync>> {
        let service = dftsp::SynthesisService::builder().concurrency(1).build();
        let response =
            service.submit(dftsp::SynthesisRequest::new(dftsp_code::catalog::steane()))?;
        let engine = dftsp::SynthesisEngine::builder().build();
        let report = engine.synthesize(&dftsp_code::catalog::steane())?;
        assert_eq!(response.report.code_name, report.code_name);
        Ok(())
    }
    serve().unwrap();
}

#[test]
fn error_sources_chain_to_the_underlying_failure() {
    // A conflict budget of zero fails verification; the failure must be
    // reachable through the standard source() chain from both the engine
    // error and the service error that wraps it.
    let engine = dftsp::SynthesisEngine::builder().conflict_budget(0).build();
    let synthesis = engine
        .synthesize(&dftsp_code::catalog::steane())
        .unwrap_err();
    let source = synthesis.source().expect("synthesis errors carry a source");
    assert!(source.to_string().contains("budget"), "{source}");

    let service = dftsp::ServiceError::from(synthesis);
    let chained = service.source().expect("service errors chain the source");
    assert!(chained.source().is_some(), "the chain reaches two levels");

    // A store fault chains to the injected fault that caused it.
    let fault = dftsp::StoreFault::Injected(dftsp::FaultError {
        op: 7,
        action: dftsp::FaultAction::DropConnection,
    });
    let inner = fault.source().expect("store faults carry a source");
    assert!(inner.to_string().contains("operation 7"), "{inner}");
}
