//! Integration tests of the distributed report store: real sockets between
//! [`StoreServer`] and [`RemoteReportStore`], outage degradation, sharded
//! routing, and property tests of the wire codec.

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use dftsp::remote::wire::{read_frame, report_from_text, report_to_text, write_frame, Frame};
use dftsp::{
    BreakerState, CheckedStore, FaultAction, FaultPlan, FaultyStore, JsonReportStore,
    MemoryReportStore, Provenance, RemoteConfigError, RemoteReportStore, RemoteStoreConfig,
    ReplicaConfig, ReplicatedStore, ReportKey, ReportStore, ShardedStore, StoreServer,
    SynthesisEngine, SynthesisReport, SynthesisRequest, SynthesisService, TieredStore, WireError,
    MAX_RETRIES,
};
use dftsp_code::catalog;
use proptest::prelude::*;

/// A per-test scratch directory under the system temp dir, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("dftsp-remote-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// The Steane report every codec test perturbs — synthesized once.
fn steane_report() -> &'static SynthesisReport {
    static REPORT: OnceLock<SynthesisReport> = OnceLock::new();
    REPORT.get_or_init(|| {
        SynthesisEngine::builder()
            .build()
            .synthesize(&catalog::steane())
            .expect("Steane synthesis succeeds")
    })
}

fn test_key(fingerprint: u64) -> ReportKey {
    ReportKey {
        code_name: "Steane".to_string(),
        fingerprint,
    }
}

/// The store's bit-identity standard: two reports are the same entry iff
/// their canonical JSON texts are byte-identical.
fn rendering(report: &SynthesisReport) -> String {
    report_to_text(report)
}

#[test]
fn reports_round_trip_through_server_and_client() {
    let scratch = Scratch::new("roundtrip");
    let kv = Arc::new(JsonReportStore::new(&scratch.0).unwrap());
    let server = StoreServer::bind("127.0.0.1:0", kv).unwrap();
    let remote = RemoteReportStore::connect(server.local_addr()).unwrap();

    let code = catalog::steane();
    let report = steane_report();
    let key = test_key(0xA1);

    // Cold store: a miss over the wire.
    assert!(remote.load(&key, &code).is_none());
    assert_eq!(remote.misses(), 1);

    // Save, then load back bit-identically.
    remote.save(&key, report);
    let restored = remote.load(&key, &code).expect("stored entry loads back");
    assert_eq!(rendering(&restored), rendering(report));
    assert_eq!(remote.hits(), 1);

    // A second client against the same server sees the same entry — that is
    // the cross-process story in miniature.
    let other = RemoteReportStore::connect(server.local_addr()).unwrap();
    let from_other = other.load(&key, &code).expect("shared entry visible");
    assert_eq!(rendering(&from_other), rendering(report));

    // Server- and client-side counters agree with the traffic.
    let stats = remote.server_stats().unwrap();
    assert_eq!(stats.puts, 1);
    assert_eq!(stats.gets, 3);
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.misses, 1);
    let counters = remote.counters();
    assert!(counters.frames_sent >= 3);
    assert_eq!(counters.frames_sent, counters.frames_received);
    assert!(counters.bytes_sent > 0 && counters.bytes_received > 0);
    assert_eq!(counters.degraded, 0);
}

#[test]
fn server_outage_degrades_to_misses_never_request_failures() {
    let scratch = Scratch::new("outage");
    let kv = Arc::new(JsonReportStore::new(&scratch.0).unwrap());
    let mut server = StoreServer::bind("127.0.0.1:0", kv).unwrap();

    // Tight timeouts so the dead-server path stays fast in tests.
    let config = RemoteStoreConfig {
        connect_timeout: Duration::from_millis(250),
        op_timeout: Duration::from_millis(500),
        retries: 1,
        backoff: Duration::from_millis(5),
        ..RemoteStoreConfig::default()
    };
    let remote = Arc::new(RemoteReportStore::connect_with(server.local_addr(), config).unwrap());
    // Capacity-0 front: every lookup goes to the remote back tier, so the
    // memory tier cannot mask the outage under test.
    let store = Arc::new(TieredStore::new(0).with_back(remote.clone() as Arc<dyn ReportStore>));
    let service = SynthesisService::builder()
        .report_store(store)
        .concurrency(1)
        .build();

    // With the server up, a solve persists through the wire.
    let up = service
        .submit(SynthesisRequest::new(catalog::steane()))
        .unwrap();
    assert_eq!(up.provenance, Provenance::Solved);
    assert_eq!(remote.server_stats().unwrap().puts, 1);
    assert_eq!(remote.degraded(), 0);

    // Kill the server mid-run. Requests for uncached codes must still
    // complete — the store degrades to misses, synthesis re-solves locally.
    server.shutdown();
    let down = service
        .submit(SynthesisRequest::new(catalog::surface3()))
        .unwrap();
    assert_eq!(down.provenance, Provenance::Solved);
    assert!(
        remote.degraded() >= 1,
        "the outage is counted, not silently swallowed"
    );

    // And the degraded run's protocol is bit-identical to a no-store run
    // (timings differ run to run; the synthesized protocol must not).
    let reference = SynthesisEngine::builder()
        .build()
        .synthesize(&catalog::surface3())
        .unwrap();
    assert_eq!(
        format!("{:?}", down.report.protocol),
        format!("{:?}", reference.protocol)
    );
}

#[test]
fn sharded_store_routes_deterministically_and_splits_the_keyspace() {
    let left = Arc::new(MemoryReportStore::new());
    let right = Arc::new(MemoryReportStore::new());
    let sharded = ShardedStore::new(vec![
        left.clone() as Arc<dyn ReportStore>,
        right.clone() as Arc<dyn ReportStore>,
    ]);
    assert_eq!(sharded.shard_count(), 2);

    let report = steane_report();
    for fingerprint in 0..16u64 {
        let key = test_key(fingerprint);
        assert_eq!(
            sharded.shard_for(&key),
            (fingerprint % 2) as usize,
            "routing is pure arithmetic on the fingerprint"
        );
        sharded.save(&key, report);
    }
    assert_eq!(left.len(), 8, "even fingerprints land on shard 0");
    assert_eq!(right.len(), 8, "odd fingerprints land on shard 1");

    let code = catalog::steane();
    for fingerprint in 0..16u64 {
        let restored = sharded.load(&test_key(fingerprint), &code).unwrap();
        assert_eq!(rendering(&restored), rendering(report));
    }
    assert_eq!(sharded.hits(), 16);
    assert_eq!(sharded.misses(), 0);
}

#[test]
fn sharded_remote_stores_split_the_catalog_across_two_servers() {
    let scratch_a = Scratch::new("shard-a");
    let scratch_b = Scratch::new("shard-b");
    let server_a = StoreServer::bind(
        "127.0.0.1:0",
        Arc::new(JsonReportStore::new(&scratch_a.0).unwrap()),
    )
    .unwrap();
    let server_b = StoreServer::bind(
        "127.0.0.1:0",
        Arc::new(JsonReportStore::new(&scratch_b.0).unwrap()),
    )
    .unwrap();
    let sharded = ShardedStore::new(vec![
        Arc::new(RemoteReportStore::connect(server_a.local_addr()).unwrap())
            as Arc<dyn ReportStore>,
        Arc::new(RemoteReportStore::connect(server_b.local_addr()).unwrap())
            as Arc<dyn ReportStore>,
    ]);

    let report = steane_report();
    sharded.save(&test_key(2), report); // even → server A
    sharded.save(&test_key(5), report); // odd → server B
    assert_eq!(server_a.stats().puts, 1);
    assert_eq!(server_b.stats().puts, 1);

    let code = catalog::steane();
    assert!(sharded.load(&test_key(2), &code).is_some());
    assert!(sharded.load(&test_key(5), &code).is_some());
    assert_eq!(server_a.stats().gets, 1);
    assert_eq!(server_b.stats().gets, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized reports survive the full wire path — encode, frame,
    /// stream, unframe, decode — byte-identically.
    #[test]
    fn random_reports_round_trip_the_wire_codec(
        fingerprint: u64,
        calls in 0..1_000_000u64,
        conflicts in 0..1_000_000u64,
        cache_hits in 0..1_000u64,
        micros in 0..10_000_000u64,
    ) {
        let mut report = steane_report().clone();
        // Perturb the numeric payload so every case carries distinct bytes.
        report.fault_cache_hits = cache_hits;
        report.total_time = Duration::from_micros(micros);
        for stage in &mut report.stages {
            stage.sat.calls = calls;
            stage.sat.conflicts = conflicts;
        }

        let key = test_key(fingerprint);
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::put(&key, &report)).unwrap();
        let frame = read_frame(&mut std::io::Cursor::new(&wire)).unwrap();
        let (restored_key, text) = frame.parse_put().unwrap();
        prop_assert_eq!(&restored_key, &key);
        prop_assert_eq!(text, report_to_text(&report).as_str());

        let code = catalog::steane();
        let restored = report_from_text(text, &code).unwrap();
        prop_assert_eq!(report_to_text(&restored), report_to_text(&report));

        // The response direction round-trips the same way.
        let mut response_wire = Vec::new();
        write_frame(&mut response_wire, &Frame::found(text)).unwrap();
        let response = read_frame(&mut std::io::Cursor::new(&response_wire)).unwrap();
        let served = response.parse_found(&code).unwrap();
        prop_assert_eq!(report_to_text(&served), report_to_text(&report));
    }

    /// A single flipped byte anywhere in a valid frame is rejected with a
    /// typed error or decodes to a *different* frame — never a panic, never
    /// a silent pass-through of corrupted bytes as the original.
    #[test]
    fn corrupt_frames_yield_typed_errors_never_panics(
        fingerprint: u64,
        position_seed: u64,
        flip in 1..=255u8,
    ) {
        let key = test_key(fingerprint);
        let original = Frame::put_text(&key, "{\"version\":4,\"payload\":\"x\"}");
        let mut wire = Vec::new();
        write_frame(&mut wire, &original).unwrap();

        let position = (position_seed % wire.len() as u64) as usize;
        let mut corrupt = wire.clone();
        corrupt[position] ^= flip;
        match read_frame(&mut std::io::Cursor::new(&corrupt)) {
            // Length, version, opcode and checksum corruption are all typed.
            Err(
                WireError::Truncated
                | WireError::Oversized(_)
                | WireError::UnsupportedVersion(_)
                | WireError::UnknownOpcode(_)
                | WireError::ChecksumMismatch { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
            // An opcode-byte flip onto another valid opcode still decodes —
            // but never back to the original frame.
            Ok(frame) => prop_assert_ne!(frame, original),
        }
    }

    /// Truncating a valid frame at any point is `Closed` exactly at the
    /// frame boundary and `Truncated` everywhere inside.
    #[test]
    fn truncated_frames_are_typed_errors(fingerprint: u64, cut_seed: u64) {
        let key = test_key(fingerprint);
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::get(&key)).unwrap();
        let cut = (cut_seed % wire.len() as u64) as usize;
        let err = read_frame(&mut std::io::Cursor::new(&wire[..cut])).unwrap_err();
        if cut == 0 {
            prop_assert_eq!(err, WireError::Closed);
        } else {
            prop_assert_eq!(err, WireError::Truncated);
        }
    }
}

#[test]
fn remote_config_is_validated_at_construction() {
    // Each zero field is rejected with the error naming it.
    let zero_connect = RemoteStoreConfig {
        connect_timeout: Duration::ZERO,
        ..RemoteStoreConfig::default()
    };
    assert_eq!(
        zero_connect.validated().unwrap_err(),
        RemoteConfigError::ZeroConnectTimeout
    );
    let zero_op = RemoteStoreConfig {
        op_timeout: Duration::ZERO,
        ..RemoteStoreConfig::default()
    };
    assert_eq!(
        zero_op.validated().unwrap_err(),
        RemoteConfigError::ZeroOpTimeout
    );
    let zero_pool = RemoteStoreConfig {
        pool_size: 0,
        ..RemoteStoreConfig::default()
    };
    assert_eq!(
        zero_pool.validated().unwrap_err(),
        RemoteConfigError::ZeroPoolSize
    );

    // Absurd retry counts are clamped, not rejected.
    let clamped = RemoteStoreConfig {
        retries: u32::MAX,
        ..RemoteStoreConfig::default()
    }
    .validated()
    .unwrap();
    assert_eq!(clamped.retries, MAX_RETRIES);

    // connect_with surfaces the rejection as InvalidInput with the typed
    // error as its source — no socket is ever opened.
    let err = RemoteReportStore::connect_with(
        "127.0.0.1:1",
        RemoteStoreConfig {
            pool_size: 0,
            ..RemoteStoreConfig::default()
        },
    )
    .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    let inner = err.get_ref().expect("typed inner error");
    assert_eq!(
        inner.downcast_ref::<RemoteConfigError>(),
        Some(&RemoteConfigError::ZeroPoolSize)
    );
}

#[test]
fn scripted_wire_faults_degrade_to_counted_misses_then_recover() {
    let scratch = Scratch::new("wire-faults");
    let kv = Arc::new(JsonReportStore::new(&scratch.0).unwrap());
    // Server plan, one op per response: op 0 (the save) is clean, ops 1-5
    // each exercise one wire-level failure mode, everything after is clean.
    let plan = Arc::new(FaultPlan::script([
        (1, FaultAction::RefuseErr),
        (2, FaultAction::CorruptFrame),
        (3, FaultAction::TruncateResponse),
        (4, FaultAction::DropConnection),
        (5, FaultAction::FailOp),
    ]));
    let server = StoreServer::bind_faulty("127.0.0.1:0", kv, 16, Arc::clone(&plan)).unwrap();
    // No retries: one logical op is exactly one server response, so the
    // script indices line up with the calls below.
    let config = RemoteStoreConfig {
        connect_timeout: Duration::from_millis(250),
        op_timeout: Duration::from_millis(500),
        retries: 0,
        backoff: Duration::from_millis(2),
        ..RemoteStoreConfig::default()
    };
    let remote = RemoteReportStore::connect_with(server.local_addr(), config).unwrap();

    let code = catalog::steane();
    let report = steane_report();
    let key = test_key(0xFA);

    // Op 0, clean: the entry lands on the server.
    remote.save(&key, report);
    assert_eq!(remote.degraded(), 0);

    // Ops 1-5: every injected wire fault degrades the load to a counted
    // miss — never a panic, never corrupted bytes served as a report.
    for expected_degraded in 1..=5u64 {
        assert!(
            remote.load(&key, &code).is_none(),
            "fault {expected_degraded} degrades to a miss"
        );
        assert_eq!(remote.degraded(), expected_degraded);
    }
    assert_eq!(plan.injected(), 5);

    // Op 6, clean again: the same connection pool recovers and the stored
    // entry comes back bit-identical.
    let restored = remote.load(&key, &code).expect("server recovered");
    assert_eq!(rendering(&restored), rendering(report));
    assert_eq!(remote.counters().corrupt_payloads, 0);
}

#[test]
fn replica_group_trips_breaker_fails_over_and_read_repairs() {
    // Replica 0 is a memory store behind a scripted fault plan: its first
    // two operations fail (the save fan-out and the first load), everything
    // after is clean. Replica 1 is healthy throughout.
    let mem0 = Arc::new(MemoryReportStore::new());
    let mem1 = Arc::new(MemoryReportStore::new());
    let plan = Arc::new(FaultPlan::script([
        (0, FaultAction::RefuseErr),
        (1, FaultAction::DropConnection),
    ]));
    let faulty0 = Arc::new(FaultyStore::new(
        mem0.clone() as Arc<dyn ReportStore>,
        Arc::clone(&plan),
    ));
    let group = ReplicatedStore::with_config(
        vec![
            faulty0 as Arc<dyn CheckedStore>,
            mem1.clone() as Arc<dyn CheckedStore>,
        ],
        ReplicaConfig {
            trip_after: 2,
            hold_ops: 4,
            max_hold_ops: 16,
        },
    )
    .unwrap();

    let code = catalog::steane();
    let report = steane_report();
    let key = test_key(0xBEEF);

    // Clock 0: fan-out save. Replica 0 faults (streak 1), replica 1 lands.
    group.save(&key, report);
    assert_eq!(mem1.len(), 1);
    assert_eq!(mem0.len(), 0);

    // Clock 1: load. Replica 0 faults again — streak 2 trips the breaker
    // (open until clock 5) — and the hit fails over to replica 1.
    let restored = group.load(&key, &code).expect("failover hit");
    assert_eq!(rendering(&restored), rendering(report));
    assert_eq!(group.health()[0].state, BreakerState::Open);
    assert_eq!(group.counters().breaker_trips, 1);

    // Clocks 2-4: the open breaker skips replica 0 entirely.
    for _ in 0..3 {
        assert!(group.load(&key, &code).is_some());
    }
    assert_eq!(group.counters().skipped_open, 3);

    // Clock 5: the hold expires — a half-open probe runs against replica 0,
    // now clean but EMPTY. The probe miss closes the breaker, the hit still
    // comes from replica 1, and read-repair writes the entry back to
    // replica 0.
    let repaired = group.load(&key, &code).expect("probe round still hits");
    assert_eq!(rendering(&repaired), rendering(report));
    assert_eq!(mem0.len(), 1, "read-repair reconverged replica 0");

    // Clock 6: replica 0 now serves the hit first — no failover.
    assert!(group.load(&key, &code).is_some());

    let counters = group.counters();
    assert_eq!(counters.replica_failures, 2);
    assert_eq!(counters.breaker_trips, 1);
    assert_eq!(counters.breaker_probes, 1);
    assert_eq!(counters.skipped_open, 3);
    assert_eq!(counters.failover_reads, 5);
    assert_eq!(counters.read_repairs, 1);
    assert_eq!(counters.repair_failures, 0);
    assert_eq!(counters.fanout_writes, 1);
    assert_eq!(group.hits(), 6);
    assert_eq!(group.misses(), 0);
    let health = group.health();
    assert_eq!(health[0].state, BreakerState::Closed);
    assert_eq!(health[1].state, BreakerState::Closed);
    assert_eq!(health[0].trips, 1);
    assert_eq!(health[0].failures, 2);
    assert_eq!(plan.injected(), 2);
}

#[test]
fn sharded_store_with_one_shard_down_degrades_and_stays_bit_identical() {
    let scratch = Scratch::new("shard-down");
    let server_a = StoreServer::bind(
        "127.0.0.1:0",
        Arc::new(JsonReportStore::new(&scratch.0).unwrap()),
    )
    .unwrap();
    let doomed_dir = Scratch::new("shard-down-doomed");
    let mut server_b = StoreServer::bind(
        "127.0.0.1:0",
        Arc::new(JsonReportStore::new(&doomed_dir.0).unwrap()),
    )
    .unwrap();
    let config = RemoteStoreConfig {
        connect_timeout: Duration::from_millis(250),
        op_timeout: Duration::from_millis(500),
        retries: 0,
        backoff: Duration::from_millis(2),
        ..RemoteStoreConfig::default()
    };
    let remote_a =
        Arc::new(RemoteReportStore::connect_with(server_a.local_addr(), config).unwrap());
    let remote_b =
        Arc::new(RemoteReportStore::connect_with(server_b.local_addr(), config).unwrap());
    let sharded = Arc::new(ShardedStore::new(vec![
        remote_a.clone() as Arc<dyn ReportStore>,
        remote_b.clone() as Arc<dyn ReportStore>,
    ]));

    // Shard 1 (odd fingerprints) goes down before any traffic.
    server_b.shutdown();

    let code = catalog::steane();
    let report = steane_report();

    // Saves to the dead shard are swallowed and counted; saves to the
    // healthy shard land on its server.
    sharded.save(&test_key(5), report); // odd → dead shard 1
    sharded.save(&test_key(2), report); // even → healthy shard 0
    assert_eq!(server_a.stats().puts, 1);
    assert!(remote_b.degraded() >= 1, "dead-shard save is counted");

    // Loads routed to the dead shard degrade to counted misses; the healthy
    // shard still round-trips bit-identically.
    assert!(sharded.load(&test_key(5), &code).is_none());
    let restored = sharded.load(&test_key(2), &code).expect("healthy shard");
    assert_eq!(rendering(&restored), rendering(report));
    assert_eq!(sharded.misses(), 1);
    assert_eq!(sharded.hits(), 1);

    // And the serving layer on top never fails a request: a synthesis whose
    // store traffic routes to the dead shard re-solves, bit-identical to a
    // no-store reference.
    let service = SynthesisService::builder()
        .report_store(sharded as Arc<dyn ReportStore>)
        .concurrency(1)
        .build();
    let response = service
        .submit(SynthesisRequest::new(catalog::surface3()))
        .unwrap();
    assert_eq!(response.provenance, Provenance::Solved);
    let reference = SynthesisEngine::builder()
        .build()
        .synthesize(&catalog::surface3())
        .unwrap();
    assert_eq!(
        format!("{:?}", response.report.protocol),
        format!("{:?}", reference.protocol)
    );
}

#[test]
fn killed_replica_restarts_empty_and_reconverges_via_read_repair() {
    let gen0 = Scratch::new("restart-gen0");
    let gen1 = Scratch::new("restart-gen1");
    let peer_dir = Scratch::new("restart-peer");
    let mut server0 = StoreServer::bind(
        "127.0.0.1:0",
        Arc::new(JsonReportStore::new(&gen0.0).unwrap()),
    )
    .unwrap();
    let addr0 = server0.local_addr();
    let server1 = StoreServer::bind(
        "127.0.0.1:0",
        Arc::new(JsonReportStore::new(&peer_dir.0).unwrap()),
    )
    .unwrap();
    let config = RemoteStoreConfig {
        connect_timeout: Duration::from_millis(250),
        op_timeout: Duration::from_millis(500),
        retries: 0,
        backoff: Duration::from_millis(2),
        ..RemoteStoreConfig::default()
    };
    let remote0 = Arc::new(RemoteReportStore::connect_with(addr0, config).unwrap());
    let remote1 = Arc::new(RemoteReportStore::connect_with(server1.local_addr(), config).unwrap());
    let group = ReplicatedStore::with_config(
        vec![
            remote0 as Arc<dyn CheckedStore>,
            remote1 as Arc<dyn CheckedStore>,
        ],
        ReplicaConfig {
            trip_after: 1,
            hold_ops: 2,
            max_hold_ops: 8,
        },
    )
    .unwrap();

    let code = catalog::steane();
    let report = steane_report();
    let key = test_key(0xD0D0);

    // Clock 0: the entry fans out to both replicas over real sockets.
    group.save(&key, report);
    assert_eq!(group.counters().fanout_writes, 2);
    assert_eq!(server1.stats().puts, 1);

    // Kill replica 0's server. Clock 1: the connection refusal trips its
    // breaker on the first failure; the hit fails over to replica 1.
    server0.shutdown();
    assert!(group.load(&key, &code).is_some());
    assert_eq!(group.health()[0].state, BreakerState::Open);
    assert_eq!(group.counters().breaker_trips, 1);

    // Clock 2: still inside the hold — replica 0 is skipped, not dialed.
    assert!(group.load(&key, &code).is_some());
    assert_eq!(group.counters().skipped_open, 1);

    // Restart replica 0 at the SAME address with a fresh, EMPTY directory —
    // a wiped server rejoining the group.
    let server0b = StoreServer::bind(addr0, Arc::new(JsonReportStore::new(&gen1.0).unwrap()))
        .unwrap_or_else(|e| panic!("rebind at {addr0}: {e}"));

    // Clock 3: the hold expires — the half-open probe reaches the restarted
    // server, answers "miss", closes the breaker, and read-repair writes the
    // entry back through the wire.
    assert!(group.load(&key, &code).is_some());
    let counters = group.counters();
    assert_eq!(counters.breaker_probes, 1);
    assert_eq!(counters.read_repairs, 1);
    assert_eq!(group.health()[0].state, BreakerState::Closed);
    assert_eq!(server0b.stats().puts, 1, "the repair landed on the wire");

    // Clock 4: replica 0 serves the repaired entry first, bit-identically.
    let restored = group.load(&key, &code).expect("repaired replica serves");
    assert_eq!(rendering(&restored), rendering(report));
    assert_eq!(server0b.stats().hits, 1);
    assert_eq!(group.misses(), 0);
}
