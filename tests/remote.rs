//! Integration tests of the distributed report store: real sockets between
//! [`StoreServer`] and [`RemoteReportStore`], outage degradation, sharded
//! routing, and property tests of the wire codec.

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use dftsp::remote::wire::{read_frame, report_from_text, report_to_text, write_frame, Frame};
use dftsp::{
    JsonReportStore, MemoryReportStore, Provenance, RemoteReportStore, RemoteStoreConfig,
    ReportKey, ReportStore, ShardedStore, StoreServer, SynthesisEngine, SynthesisReport,
    SynthesisRequest, SynthesisService, TieredStore, WireError,
};
use dftsp_code::catalog;
use proptest::prelude::*;

/// A per-test scratch directory under the system temp dir, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("dftsp-remote-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// The Steane report every codec test perturbs — synthesized once.
fn steane_report() -> &'static SynthesisReport {
    static REPORT: OnceLock<SynthesisReport> = OnceLock::new();
    REPORT.get_or_init(|| {
        SynthesisEngine::builder()
            .build()
            .synthesize(&catalog::steane())
            .expect("Steane synthesis succeeds")
    })
}

fn test_key(fingerprint: u64) -> ReportKey {
    ReportKey {
        code_name: "Steane".to_string(),
        fingerprint,
    }
}

/// The store's bit-identity standard: two reports are the same entry iff
/// their canonical JSON texts are byte-identical.
fn rendering(report: &SynthesisReport) -> String {
    report_to_text(report)
}

#[test]
fn reports_round_trip_through_server_and_client() {
    let scratch = Scratch::new("roundtrip");
    let kv = Arc::new(JsonReportStore::new(&scratch.0).unwrap());
    let server = StoreServer::bind("127.0.0.1:0", kv).unwrap();
    let remote = RemoteReportStore::connect(server.local_addr()).unwrap();

    let code = catalog::steane();
    let report = steane_report();
    let key = test_key(0xA1);

    // Cold store: a miss over the wire.
    assert!(remote.load(&key, &code).is_none());
    assert_eq!(remote.misses(), 1);

    // Save, then load back bit-identically.
    remote.save(&key, report);
    let restored = remote.load(&key, &code).expect("stored entry loads back");
    assert_eq!(rendering(&restored), rendering(report));
    assert_eq!(remote.hits(), 1);

    // A second client against the same server sees the same entry — that is
    // the cross-process story in miniature.
    let other = RemoteReportStore::connect(server.local_addr()).unwrap();
    let from_other = other.load(&key, &code).expect("shared entry visible");
    assert_eq!(rendering(&from_other), rendering(report));

    // Server- and client-side counters agree with the traffic.
    let stats = remote.server_stats().unwrap();
    assert_eq!(stats.puts, 1);
    assert_eq!(stats.gets, 3);
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.misses, 1);
    let counters = remote.counters();
    assert!(counters.frames_sent >= 3);
    assert_eq!(counters.frames_sent, counters.frames_received);
    assert!(counters.bytes_sent > 0 && counters.bytes_received > 0);
    assert_eq!(counters.degraded, 0);
}

#[test]
fn server_outage_degrades_to_misses_never_request_failures() {
    let scratch = Scratch::new("outage");
    let kv = Arc::new(JsonReportStore::new(&scratch.0).unwrap());
    let mut server = StoreServer::bind("127.0.0.1:0", kv).unwrap();

    // Tight timeouts so the dead-server path stays fast in tests.
    let config = RemoteStoreConfig {
        connect_timeout: Duration::from_millis(250),
        op_timeout: Duration::from_millis(500),
        retries: 1,
        backoff: Duration::from_millis(5),
        ..RemoteStoreConfig::default()
    };
    let remote = Arc::new(RemoteReportStore::connect_with(server.local_addr(), config).unwrap());
    // Capacity-0 front: every lookup goes to the remote back tier, so the
    // memory tier cannot mask the outage under test.
    let store = Arc::new(TieredStore::new(0).with_back(remote.clone() as Arc<dyn ReportStore>));
    let service = SynthesisService::builder()
        .report_store(store)
        .concurrency(1)
        .build();

    // With the server up, a solve persists through the wire.
    let up = service
        .submit(SynthesisRequest::new(catalog::steane()))
        .unwrap();
    assert_eq!(up.provenance, Provenance::Solved);
    assert_eq!(remote.server_stats().unwrap().puts, 1);
    assert_eq!(remote.degraded(), 0);

    // Kill the server mid-run. Requests for uncached codes must still
    // complete — the store degrades to misses, synthesis re-solves locally.
    server.shutdown();
    let down = service
        .submit(SynthesisRequest::new(catalog::surface3()))
        .unwrap();
    assert_eq!(down.provenance, Provenance::Solved);
    assert!(
        remote.degraded() >= 1,
        "the outage is counted, not silently swallowed"
    );

    // And the degraded run's protocol is bit-identical to a no-store run
    // (timings differ run to run; the synthesized protocol must not).
    let reference = SynthesisEngine::builder()
        .build()
        .synthesize(&catalog::surface3())
        .unwrap();
    assert_eq!(
        format!("{:?}", down.report.protocol),
        format!("{:?}", reference.protocol)
    );
}

#[test]
fn sharded_store_routes_deterministically_and_splits_the_keyspace() {
    let left = Arc::new(MemoryReportStore::new());
    let right = Arc::new(MemoryReportStore::new());
    let sharded = ShardedStore::new(vec![
        left.clone() as Arc<dyn ReportStore>,
        right.clone() as Arc<dyn ReportStore>,
    ]);
    assert_eq!(sharded.shard_count(), 2);

    let report = steane_report();
    for fingerprint in 0..16u64 {
        let key = test_key(fingerprint);
        assert_eq!(
            sharded.shard_for(&key),
            (fingerprint % 2) as usize,
            "routing is pure arithmetic on the fingerprint"
        );
        sharded.save(&key, report);
    }
    assert_eq!(left.len(), 8, "even fingerprints land on shard 0");
    assert_eq!(right.len(), 8, "odd fingerprints land on shard 1");

    let code = catalog::steane();
    for fingerprint in 0..16u64 {
        let restored = sharded.load(&test_key(fingerprint), &code).unwrap();
        assert_eq!(rendering(&restored), rendering(report));
    }
    assert_eq!(sharded.hits(), 16);
    assert_eq!(sharded.misses(), 0);
}

#[test]
fn sharded_remote_stores_split_the_catalog_across_two_servers() {
    let scratch_a = Scratch::new("shard-a");
    let scratch_b = Scratch::new("shard-b");
    let server_a = StoreServer::bind(
        "127.0.0.1:0",
        Arc::new(JsonReportStore::new(&scratch_a.0).unwrap()),
    )
    .unwrap();
    let server_b = StoreServer::bind(
        "127.0.0.1:0",
        Arc::new(JsonReportStore::new(&scratch_b.0).unwrap()),
    )
    .unwrap();
    let sharded = ShardedStore::new(vec![
        Arc::new(RemoteReportStore::connect(server_a.local_addr()).unwrap())
            as Arc<dyn ReportStore>,
        Arc::new(RemoteReportStore::connect(server_b.local_addr()).unwrap())
            as Arc<dyn ReportStore>,
    ]);

    let report = steane_report();
    sharded.save(&test_key(2), report); // even → server A
    sharded.save(&test_key(5), report); // odd → server B
    assert_eq!(server_a.stats().puts, 1);
    assert_eq!(server_b.stats().puts, 1);

    let code = catalog::steane();
    assert!(sharded.load(&test_key(2), &code).is_some());
    assert!(sharded.load(&test_key(5), &code).is_some());
    assert_eq!(server_a.stats().gets, 1);
    assert_eq!(server_b.stats().gets, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized reports survive the full wire path — encode, frame,
    /// stream, unframe, decode — byte-identically.
    #[test]
    fn random_reports_round_trip_the_wire_codec(
        fingerprint: u64,
        calls in 0..1_000_000u64,
        conflicts in 0..1_000_000u64,
        cache_hits in 0..1_000u64,
        micros in 0..10_000_000u64,
    ) {
        let mut report = steane_report().clone();
        // Perturb the numeric payload so every case carries distinct bytes.
        report.fault_cache_hits = cache_hits;
        report.total_time = Duration::from_micros(micros);
        for stage in &mut report.stages {
            stage.sat.calls = calls;
            stage.sat.conflicts = conflicts;
        }

        let key = test_key(fingerprint);
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::put(&key, &report)).unwrap();
        let frame = read_frame(&mut std::io::Cursor::new(&wire)).unwrap();
        let (restored_key, text) = frame.parse_put().unwrap();
        prop_assert_eq!(&restored_key, &key);
        prop_assert_eq!(text, report_to_text(&report).as_str());

        let code = catalog::steane();
        let restored = report_from_text(text, &code).unwrap();
        prop_assert_eq!(report_to_text(&restored), report_to_text(&report));

        // The response direction round-trips the same way.
        let mut response_wire = Vec::new();
        write_frame(&mut response_wire, &Frame::found(text)).unwrap();
        let response = read_frame(&mut std::io::Cursor::new(&response_wire)).unwrap();
        let served = response.parse_found(&code).unwrap();
        prop_assert_eq!(report_to_text(&served), report_to_text(&report));
    }

    /// A single flipped byte anywhere in a valid frame is rejected with a
    /// typed error or decodes to a *different* frame — never a panic, never
    /// a silent pass-through of corrupted bytes as the original.
    #[test]
    fn corrupt_frames_yield_typed_errors_never_panics(
        fingerprint: u64,
        position_seed: u64,
        flip in 1..=255u8,
    ) {
        let key = test_key(fingerprint);
        let original = Frame::put_text(&key, "{\"version\":4,\"payload\":\"x\"}");
        let mut wire = Vec::new();
        write_frame(&mut wire, &original).unwrap();

        let position = (position_seed % wire.len() as u64) as usize;
        let mut corrupt = wire.clone();
        corrupt[position] ^= flip;
        match read_frame(&mut std::io::Cursor::new(&corrupt)) {
            // Length, version, opcode and checksum corruption are all typed.
            Err(
                WireError::Truncated
                | WireError::Oversized(_)
                | WireError::UnsupportedVersion(_)
                | WireError::UnknownOpcode(_)
                | WireError::ChecksumMismatch { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
            // An opcode-byte flip onto another valid opcode still decodes —
            // but never back to the original frame.
            Ok(frame) => prop_assert_ne!(frame, original),
        }
    }

    /// Truncating a valid frame at any point is `Closed` exactly at the
    /// frame boundary and `Truncated` everywhere inside.
    #[test]
    fn truncated_frames_are_typed_errors(fingerprint: u64, cut_seed: u64) {
        let key = test_key(fingerprint);
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::get(&key)).unwrap();
        let cut = (cut_seed % wire.len() as u64) as usize;
        let err = read_frame(&mut std::io::Cursor::new(&wire[..cut])).unwrap_err();
        if cut == 0 {
            prop_assert_eq!(err, WireError::Closed);
        } else {
            prop_assert_eq!(err, WireError::Truncated);
        }
    }
}
