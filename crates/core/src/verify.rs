//! SAT-based synthesis of verification circuits.
//!
//! Step (b) of the protocol in Fig. 3: given the set of *dangerous* errors
//! that single faults in the preparation circuit can leave on the data (those
//! with state-stabilizer-reduced weight at least 2), find a minimal set of
//! stabilizer measurements such that every dangerous error anticommutes with
//! at least one measured operator.
//!
//! The measured operators are drawn from the group of operators that
//! stabilize the prepared state (see [`crate::ZeroStateContext`]); a
//! measurement is encoded as a GF(2) combination of that group's generators.
//! Optimality follows the paper: the number of measurements `u` is minimized
//! first, then the summed operator weight `v` (one CNOT per support qubit).

use dftsp_f2::{BitMatrix, BitVec};
use dftsp_sat::{BoundedLadder, Encoder, LadderMode, Lit, Model, SatBackend, SolveResult};

use crate::engine::SatSession;
use crate::par::{divide_threads, parallel_map_indexed};
use crate::perm::HeapPermutations;

/// Options bounding the verification-synthesis search.
#[derive(Debug, Clone)]
pub struct VerificationOptions {
    /// Maximum number of verification measurements to consider.
    pub max_measurements: usize,
    /// Cap on the number of distinct minimal solutions enumerated by
    /// [`enumerate_minimal_verifications`].
    pub enumeration_cap: usize,
    /// Conflict budget per SAT query (`None` = unlimited). Pathological
    /// instances then fail with [`VerificationError::ConflictBudgetExceeded`]
    /// instead of hanging.
    pub max_conflicts: Option<u64>,
}

impl Default for VerificationOptions {
    fn default() -> Self {
        VerificationOptions {
            max_measurements: 4,
            enumeration_cap: 64,
            max_conflicts: None,
        }
    }
}

/// A synthesized verification circuit: the supports of the measured
/// stabilizers, in measurement order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerificationSolution {
    /// Support vectors of the measured operators.
    pub measurements: Vec<BitVec>,
    /// Summed weight of the measured operators (= data CNOT count).
    pub total_weight: usize,
}

impl VerificationSolution {
    /// Number of verification measurements (= syndrome ancillas).
    pub fn num_measurements(&self) -> usize {
        self.measurements.len()
    }
}

/// Errors reported by verification synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerificationError {
    /// Some dangerous error commutes with the entire measurable group and can
    /// therefore never be detected (it acts as a logical operator on the
    /// prepared state). The offending error is returned.
    UndetectableError(BitVec),
    /// No covering set was found within `max_measurements` measurements.
    BudgetExhausted,
    /// A SAT query exceeded the configured conflict budget.
    ConflictBudgetExceeded {
        /// The per-query conflict budget that was exhausted.
        max_conflicts: u64,
    },
}

impl std::fmt::Display for VerificationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerificationError::UndetectableError(e) => {
                write!(
                    f,
                    "dangerous error {e} is undetectable by any state stabilizer"
                )
            }
            VerificationError::BudgetExhausted => {
                write!(f, "no verification found within the measurement budget")
            }
            VerificationError::ConflictBudgetExceeded { max_conflicts } => {
                write!(
                    f,
                    "a SAT query exceeded the budget of {max_conflicts} conflicts"
                )
            }
        }
    }
}

impl std::error::Error for VerificationError {}

/// Synthesizes a verification circuit that detects every error in
/// `dangerous`, measuring operators from the row space of `measurable`.
///
/// Returns the solution with the minimal number of measurements and, among
/// those, minimal summed weight. If `dangerous` is empty, the empty solution
/// is returned.
///
/// # Errors
///
/// Returns [`VerificationError::UndetectableError`] if some dangerous error
/// commutes with the whole measurable group, and
/// [`VerificationError::BudgetExhausted`] if no cover exists within
/// `options.max_measurements`.
///
/// # Examples
///
/// ```
/// use dftsp::verify::{synthesize_verification, VerificationOptions};
/// use dftsp::ZeroStateContext;
/// use dftsp_code::catalog;
/// use dftsp_f2::BitVec;
/// use dftsp_pauli::PauliKind;
///
/// let ctx = ZeroStateContext::new(catalog::steane());
/// // One dangerous two-qubit X error: a single weight-3 measurement (the
/// // logical Z) suffices.
/// let dangerous = vec![BitVec::from_indices(7, &[2, 3])];
/// let solution = synthesize_verification(
///     ctx.measurable_group(PauliKind::X),
///     &dangerous,
///     &VerificationOptions::default(),
/// )
/// .unwrap();
/// assert_eq!(solution.num_measurements(), 1);
/// assert!(solution.total_weight <= 4);
/// ```
pub fn synthesize_verification(
    measurable: &BitMatrix,
    dangerous: &[BitVec],
    options: &VerificationOptions,
) -> Result<VerificationSolution, VerificationError> {
    synthesize_verification_with(&mut SatSession::default(), measurable, dangerous, options)
}

/// [`synthesize_verification`] against an explicit [`SatSession`], which
/// selects the SAT backend and accumulates per-query statistics. This is the
/// entry point used by [`crate::SynthesisEngine`].
///
/// # Errors
///
/// Same failure modes as [`synthesize_verification`].
pub fn synthesize_verification_with(
    session: &mut SatSession,
    measurable: &BitMatrix,
    dangerous: &[BitVec],
    options: &VerificationOptions,
) -> Result<VerificationSolution, VerificationError> {
    synthesize_verification_threaded(session, measurable, dangerous, options, 1)
}

/// [`synthesize_verification_with`] with a thread budget: the per-`u` cover
/// ladders run speculatively on up to `threads` scoped workers (each on a
/// private [`SatSession`]), and any leftover budget lets each ladder probe
/// two bounds concurrently (see [`run_cover_ladder`]).
///
/// The SAT work and the returned solution are bit-identical at every thread
/// count: ladders for every `u` up to the first feasible one always run to
/// completion, speculative ladders beyond it are discarded *including their
/// statistics*, and worker stats are absorbed into `session` in `u` order.
///
/// # Errors
///
/// Same failure modes as [`synthesize_verification`].
pub(crate) fn synthesize_verification_threaded(
    session: &mut SatSession,
    measurable: &BitMatrix,
    dangerous: &[BitVec],
    options: &VerificationOptions,
    threads: usize,
) -> Result<VerificationSolution, VerificationError> {
    let detection_sets = detection_sets(measurable, dangerous)?;
    if detection_sets.is_empty() {
        return Ok(VerificationSolution {
            measurements: Vec::new(),
            total_weight: 0,
        });
    }
    let counts: Vec<usize> = (1..=options.max_measurements).collect();
    let workers = threads.min(counts.len()).max(1);
    let ladder_threads = divide_threads(threads, workers);
    let choice = session.choice();
    let mode = session.mode();
    let slots = parallel_map_indexed(
        &counts,
        workers,
        |_, &u| {
            let mut worker_session = SatSession::with_mode(choice, mode);
            let result = run_cover_ladder(
                &mut worker_session,
                measurable,
                &detection_sets,
                u,
                options,
                ladder_threads,
            );
            (result, worker_session.take_stats())
        },
        |(result, _)| !matches!(result, Ok(None)),
    );
    // Scan in `u` order: absorb exactly the ladders a serial run would have
    // executed and stop at the first feasible count (or hard error). Stats
    // from speculative ladders past that point are dropped wholesale, so the
    // merged statistics match the serial run bit for bit.
    for slot in slots {
        let Some((result, stats)) = slot else { break };
        session.absorb(&stats);
        match result {
            Ok(Some(solution)) => return Ok(solution),
            Ok(None) => {}
            Err(error) => return Err(error),
        }
    }
    Err(VerificationError::BudgetExhausted)
}

/// Runs the weight-minimization ladder for a fixed measurement count `u`:
/// one feasibility probe with unbounded weight, a binary search over the
/// summed-weight bound, and a final canonical extraction solve at the
/// optimum. Returns `None` when `u` measurements cannot cover the errors.
///
/// In [`LadderMode::Incremental`] the whole ladder runs on one live solver:
/// the base encoding and a single cardinality counter are built once, each
/// probed bound is one assumption literal on the counter outputs, and
/// learned clauses survive between bounds. In [`LadderMode::Fresh`] every
/// probe re-encodes on a fresh backend. Both
/// modes converge to the same optimal bound, and the canonical extraction at
/// that bound makes the returned solution bit-identical across modes —
/// except when a configured conflict budget interrupts the ladder, which
/// returns the best mode-local solution in hand (the same trade-off that
/// already costs weight optimality within one mode).
///
/// The binary search descends speculatively: whenever the open interval
/// spans more than one bound, the round probes `mid` on the primary ladder
/// and the deeper `mid2 = (lo + mid) / 2` on a lazily opened sibling ladder.
/// Both probes run at *every* thread count (concurrently on scoped threads
/// when `ladder_threads >= 2`, back to back otherwise) and their results are
/// merged in the fixed order (`mid`, then `mid2`), so the bound trajectory,
/// the SAT statistics and the returned solution never depend on the budget.
fn run_cover_ladder(
    session: &mut SatSession,
    measurable: &BitMatrix,
    detection_sets: &[Vec<usize>],
    u: usize,
    options: &VerificationOptions,
    ladder_threads: usize,
) -> Result<Option<VerificationSolution>, VerificationError> {
    let mut ladder = CoverLadder::open(session, measurable, detection_sets, u);
    let Some(first) = ladder.probe(session, measurable, detection_sets, u, None, options)? else {
        return Ok(None);
    };
    // Binary-search the minimal summed weight. A conflict-budget interruption
    // only costs weight optimality — the feasible solution already in hand is
    // returned rather than failing.
    let w0 = first.total_weight;
    // Every probed bound lies strictly below w0.
    ladder.prepare_bounds(w0);
    let choice = session.choice();
    let mode = session.mode();
    let mut sibling: Option<CoverLadder> = None;
    let mut lo = u; // each measurement has weight ≥ 1
    let mut hi = w0;
    let mut best = first.clone();
    loop {
        if lo >= hi {
            break;
        }
        let mid = (lo + hi) / 2;
        // Speculative deeper bound, probed whether or not `mid` turns out
        // feasible (if `mid` is infeasible so is `mid2` and the probe merely
        // confirms it). Skipped when the interval pins `mid` to `lo`.
        let speculative = if lo < mid { Some((lo + mid) / 2) } else { None };
        let sibling_ladder = speculative.map(|_| {
            sibling.get_or_insert_with(|| {
                let mut opened = CoverLadder::open(session, measurable, detection_sets, u);
                opened.prepare_bounds(w0);
                opened
            })
        });
        let mut primary_session = SatSession::with_mode(choice, mode);
        let mut sibling_session = SatSession::with_mode(choice, mode);
        let (primary_result, sibling_result) = match (sibling_ladder, speculative) {
            (Some(spec_ladder), Some(mid2)) if ladder_threads >= 2 => {
                let sibling_session = &mut sibling_session;
                std::thread::scope(|scope| {
                    let handle = scope.spawn(move || {
                        spec_ladder.probe(
                            sibling_session,
                            measurable,
                            detection_sets,
                            u,
                            Some(mid2),
                            options,
                        )
                    });
                    let primary = ladder.probe(
                        &mut primary_session,
                        measurable,
                        detection_sets,
                        u,
                        Some(mid),
                        options,
                    );
                    let speculative = handle.join().expect("sibling probe thread panicked");
                    (primary, Some(speculative))
                })
            }
            (Some(spec_ladder), Some(mid2)) => {
                let primary = ladder.probe(
                    &mut primary_session,
                    measurable,
                    detection_sets,
                    u,
                    Some(mid),
                    options,
                );
                let speculative = spec_ladder.probe(
                    &mut sibling_session,
                    measurable,
                    detection_sets,
                    u,
                    Some(mid2),
                    options,
                );
                (primary, Some(speculative))
            }
            _ => {
                let primary = ladder.probe(
                    &mut primary_session,
                    measurable,
                    detection_sets,
                    u,
                    Some(mid),
                    options,
                );
                (primary, None)
            }
        };
        // Fixed absorption order keeps the merged statistics independent of
        // which probe finished first.
        session.absorb(&primary_session.take_stats());
        session.absorb(&sibling_session.take_stats());
        match primary_result {
            Ok(Some(better)) => {
                hi = better.total_weight.min(mid);
                best = better;
            }
            Ok(None) => lo = mid + 1,
            Err(VerificationError::ConflictBudgetExceeded { .. }) => return Ok(Some(best)),
            Err(other) => return Err(other),
        }
        match (sibling_result, speculative) {
            (Some(Ok(Some(better))), Some(mid2)) if lo <= mid2 => {
                // The deeper speculative bound was feasible too; its solution
                // supersedes the primary's.
                hi = better.total_weight.min(mid2).min(hi);
                best = better;
            }
            (Some(Ok(Some(_))), _) => {
                // `mid` was infeasible (so `lo` moved past `mid2`): the
                // speculative model is stale and carries no new bound.
            }
            (Some(Ok(None)), Some(mid2)) => lo = lo.max(mid2 + 1),
            (Some(Err(VerificationError::ConflictBudgetExceeded { .. })), _) => {
                return Ok(Some(best))
            }
            (Some(Err(other)), _) => return Err(other),
            (None, _) | (_, None) => {}
        }
    }
    if hi == w0 && !session.choice().is_racing_portfolio() {
        // The unbounded probe was already optimal; it ran on a cold solver
        // with the mode-independent base encoding, so it needs no extraction.
        return Ok(Some(first));
    }
    // Canonical extraction: one deterministic solve at the proven optimum on
    // a fresh canonical backend, independent of the search trajectory that
    // found it — and, for a racing portfolio, of which engine won any probe.
    // When the unbounded probe was already optimal (racing portfolios reach
    // here even then, because the probe's model belongs to the race winner),
    // extracting at a weight bound of `n·u` re-solves the probe's exact
    // formula: `at_most_k` over `n·u` literals with `k = n·u` encodes
    // nothing.
    let target = if hi == w0 {
        measurable.num_cols() * u
    } else {
        hi
    };
    match solve_cover_fresh(session, measurable, detection_sets, u, target, &[], options) {
        Ok(Some(solution)) => Ok(Some(solution)),
        // `hi` is feasible, so `None` is unreachable; under a budget
        // interruption fall back to the best solution the ladder holds.
        Ok(None) => Ok(Some(best)),
        Err(VerificationError::ConflictBudgetExceeded { .. }) => Ok(Some(best)),
        Err(other) => Err(other),
    }
}

/// One (u, ·) covering ladder: either a live incremental session or the
/// fresh-backend-per-probe configuration.
enum CoverLadder {
    Warm(WarmCoverLadder),
    Fresh,
}

impl CoverLadder {
    fn open(
        session: &SatSession,
        measurable: &BitMatrix,
        detection_sets: &[Vec<usize>],
        u: usize,
    ) -> Self {
        match session.mode() {
            LadderMode::Incremental => CoverLadder::Warm(WarmCoverLadder::open(
                session,
                measurable,
                detection_sets,
                u,
                false,
            )),
            LadderMode::Fresh => CoverLadder::Fresh,
        }
    }

    /// Sizes the warm ladder's cardinality counter so every bound below
    /// `width` can be assumed (no-op for fresh probes, which re-encode).
    fn prepare_bounds(&mut self, width: usize) {
        if let CoverLadder::Warm(warm) = self {
            warm.prepare_bounds(width);
        }
    }

    /// Solves one (u, v) probe; `None` weight bound = unbounded.
    fn probe(
        &mut self,
        session: &mut SatSession,
        measurable: &BitMatrix,
        detection_sets: &[Vec<usize>],
        u: usize,
        bound: Option<usize>,
        options: &VerificationOptions,
    ) -> Result<Option<VerificationSolution>, VerificationError> {
        match self {
            CoverLadder::Warm(warm) => warm.probe(session, bound, options),
            CoverLadder::Fresh => {
                // An effectively unbounded weight makes `at_most_k` a no-op.
                let v = bound.unwrap_or(measurable.num_cols() * u);
                solve_cover_fresh(session, measurable, detection_sets, u, v, &[], options)
            }
        }
    }
}

/// Enumerates all verification circuits that achieve the optimal measurement
/// count and total weight (up to `options.enumeration_cap` distinct
/// measurement sets). Used by the global optimization procedure.
///
/// # Errors
///
/// Same failure modes as [`synthesize_verification`].
pub fn enumerate_minimal_verifications(
    measurable: &BitMatrix,
    dangerous: &[BitVec],
    options: &VerificationOptions,
) -> Result<Vec<VerificationSolution>, VerificationError> {
    enumerate_minimal_verifications_with(&mut SatSession::default(), measurable, dangerous, options)
}

/// [`enumerate_minimal_verifications`] against an explicit [`SatSession`].
///
/// # Errors
///
/// Same failure modes as [`synthesize_verification`].
pub fn enumerate_minimal_verifications_with(
    session: &mut SatSession,
    measurable: &BitMatrix,
    dangerous: &[BitVec],
    options: &VerificationOptions,
) -> Result<Vec<VerificationSolution>, VerificationError> {
    enumerate_minimal_verifications_threaded(session, measurable, dangerous, options, 1)
}

/// [`enumerate_minimal_verifications_with`] with a thread budget for the
/// initial optimum synthesis (the blocking-clause enumeration itself is
/// inherently sequential and stays serial). Results and statistics are
/// bit-identical at every thread count.
///
/// # Errors
///
/// Same failure modes as [`synthesize_verification`].
pub(crate) fn enumerate_minimal_verifications_threaded(
    session: &mut SatSession,
    measurable: &BitMatrix,
    dangerous: &[BitVec],
    options: &VerificationOptions,
    threads: usize,
) -> Result<Vec<VerificationSolution>, VerificationError> {
    let best = synthesize_verification_threaded(session, measurable, dangerous, options, threads)?;
    if best.measurements.is_empty() {
        return Ok(vec![best]);
    }
    let detection_sets = detection_sets(measurable, dangerous)?;
    let u = best.num_measurements();
    let v = best.total_weight;

    let canonical_form = |solution: &VerificationSolution| -> Vec<Vec<u8>> {
        let mut canonical: Vec<Vec<u8>> =
            solution.measurements.iter().map(BitVec::to_bits).collect();
        canonical.sort();
        canonical
    };

    // The enumeration is seeded with the already-synthesized optimum, which
    // guarantees it appears among the candidates of the global optimization.
    let mut seen: std::collections::HashSet<Vec<Vec<u8>>> = std::collections::HashSet::new();
    seen.insert(canonical_form(&best));
    let mut blocked: Vec<Vec<BitVec>> = vec![best.measurements.clone()];
    let mut solutions: Vec<VerificationSolution> = vec![best];

    // A conflict-budget interruption stops the enumeration early; the
    // minimal solutions found so far (at least one) are still returned.
    match session.mode() {
        LadderMode::Incremental => {
            // One live solver for the whole enumeration: the (u, v) encoding
            // is built once and each found solution only adds its blocking
            // clauses. Every probe's model is emitted as a solution, so the
            // ladder opens canonically — a racing portfolio must not decide
            // which co-optimal circuits surface in which order.
            let mut ladder = WarmCoverLadder::open(session, measurable, &detection_sets, u, true);
            ladder.prepare_bounds(v + 1);
            ladder.set_bound(v);
            for previous in &blocked {
                ladder.block(previous);
            }
            while solutions.len() < options.enumeration_cap {
                match ladder.probe(session, Some(v), options) {
                    Ok(Some(solution)) => {
                        ladder.block(&solution.measurements);
                        if seen.insert(canonical_form(&solution)) {
                            solutions.push(solution);
                        }
                    }
                    Ok(None) | Err(VerificationError::ConflictBudgetExceeded { .. }) => break,
                    Err(other) => return Err(other),
                }
            }
        }
        LadderMode::Fresh => {
            while solutions.len() < options.enumeration_cap {
                match solve_cover_fresh(
                    session,
                    measurable,
                    &detection_sets,
                    u,
                    v,
                    &blocked,
                    options,
                ) {
                    Ok(Some(solution)) => {
                        blocked.push(solution.measurements.clone());
                        if seen.insert(canonical_form(&solution)) {
                            solutions.push(solution);
                        }
                    }
                    Ok(None) | Err(VerificationError::ConflictBudgetExceeded { .. }) => break,
                    Err(other) => return Err(other),
                }
            }
        }
    }
    Ok(solutions)
}

/// Computes, for every dangerous error, the set of generator indices whose
/// operators anticommute with it, after deduplication. Errors with an empty
/// set are undetectable.
fn detection_sets(
    measurable: &BitMatrix,
    dangerous: &[BitVec],
) -> Result<Vec<Vec<usize>>, VerificationError> {
    let mut sets: Vec<Vec<usize>> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for error in dangerous {
        let set: Vec<usize> = (0..measurable.num_rows())
            .filter(|&j| measurable.row(j).dot(error))
            .collect();
        if set.is_empty() {
            return Err(VerificationError::UndetectableError(error.clone()));
        }
        if seen.insert(set.clone()) {
            sets.push(set);
        }
    }
    Ok(sets)
}

/// Encodes everything of one `u`-measurement covering instance that does not
/// depend on the weight bound: selector variables, support literals, coverage
/// of every detection set and non-degeneracy. Returns the support literals
/// `w[i][q]` the weight bound, blocking clauses and solution extraction work
/// on.
fn encode_cover_base(
    solver: &mut dyn SatBackend,
    measurable: &BitMatrix,
    detection_sets: &[Vec<usize>],
    u: usize,
) -> Vec<Vec<Lit>> {
    let m = measurable.num_rows();
    let n = measurable.num_cols();

    // Selector variables a[i][j]: measurement i includes generator j.
    let selectors: Vec<Vec<Lit>> = (0..u)
        .map(|_| (0..m).map(|_| Lit::pos(solver.new_var())).collect())
        .collect();

    let mut support_lits: Vec<Vec<Lit>> = Vec::with_capacity(u);
    let mut enc = Encoder::new(solver);
    // Support literals w[i][q] = XOR_j a[i][j]·measurable[j][q].
    for row in &selectors {
        let mut supports = Vec::with_capacity(n);
        for q in 0..n {
            let involved: Vec<Lit> = (0..m)
                .filter(|&j| measurable.get(j, q))
                .map(|j| row[j])
                .collect();
            supports.push(enc.xor_many(&involved));
        }
        support_lits.push(supports);
    }
    // Coverage: every dangerous error anticommutes with some measurement.
    for set in detection_sets {
        let mut detectors = Vec::with_capacity(u);
        for row in &selectors {
            let involved: Vec<Lit> = set.iter().map(|&j| row[j]).collect();
            detectors.push(enc.xor_many(&involved));
        }
        enc.solver().add_clause(&detectors);
    }
    // Symmetry breaking / non-degeneracy: every measurement is nonzero.
    for supports in &support_lits {
        enc.solver().add_clause(supports);
    }
    support_lits
}

/// Adds the blocking clauses excluding one previously found measurement set:
/// at least one support bit differs, for every assignment of measurement
/// order (per-permutation clauses block the multiset).
fn add_cover_blocking(solver: &mut dyn SatBackend, support_lits: &[Vec<Lit>], previous: &[BitVec]) {
    for permutation in HeapPermutations::of_indices(previous.len()) {
        let mut clause = Vec::new();
        for (i, &p) in permutation.iter().enumerate() {
            for (q, &lit) in support_lits[i].iter().enumerate() {
                clause.push(if previous[p].get(q) { !lit } else { lit });
            }
        }
        solver.add_clause(&clause);
    }
}

/// Reads the measurement supports off a satisfying model.
fn extract_cover_solution(
    model: &Model,
    support_lits: &[Vec<Lit>],
    n: usize,
) -> VerificationSolution {
    let mut measurements = Vec::with_capacity(support_lits.len());
    let mut total_weight = 0;
    for supports in support_lits {
        let mut support = BitVec::zeros(n);
        for (q, &lit) in supports.iter().enumerate() {
            if model.lit_value(lit) {
                support.set(q, true);
            }
        }
        total_weight += support.weight();
        measurements.push(support);
    }
    VerificationSolution {
        measurements,
        total_weight,
    }
}

/// Solves one (u, v) instance of the covering problem on a fresh *canonical*
/// backend ([`SatSession::canonical_instance`]): fresh-mode probes,
/// enumeration and the ladders' final extraction solves all go through here,
/// so their models never depend on a portfolio race winner. Racing is
/// confined to the warm incremental ladders, whose intermediate models only
/// steer the winner-independent bound search. `blocked` lists measurement
/// sets that must not be returned again (for enumeration).
fn solve_cover_fresh(
    session: &mut SatSession,
    measurable: &BitMatrix,
    detection_sets: &[Vec<usize>],
    u: usize,
    v: usize,
    blocked: &[Vec<BitVec>],
    options: &VerificationOptions,
) -> Result<Option<VerificationSolution>, VerificationError> {
    let n = measurable.num_cols();
    let mut solver = session.canonical_instance();
    let solver = solver.as_mut();
    let support_lits = encode_cover_base(solver, measurable, detection_sets, u);
    {
        let all_supports: Vec<Lit> = support_lits.iter().flatten().copied().collect();
        Encoder::new(&mut *solver).at_most_k(&all_supports, v);
    }
    for previous in blocked {
        add_cover_blocking(solver, &support_lits, previous);
    }
    match session.solve(solver, options.max_conflicts) {
        Some(SolveResult::Sat) => {}
        Some(SolveResult::Unsat) => return Ok(None),
        None => {
            return Err(VerificationError::ConflictBudgetExceeded {
                max_conflicts: options.max_conflicts.unwrap_or(0),
            })
        }
    }
    let model = solver.model().expect("SAT result has a model");
    Ok(Some(extract_cover_solution(model, &support_lits, n)))
}

/// The warm half of a [`CoverLadder`]: the base encoding on a live
/// [`BoundedLadder`], which owns the retractable-bound bookkeeping.
struct WarmCoverLadder {
    ladder: BoundedLadder<Box<dyn SatBackend>>,
    support_lits: Vec<Vec<Lit>>,
    num_qubits: usize,
}

impl WarmCoverLadder {
    /// Opens the live solver and builds the base encoding. With `canonical`
    /// the ladder runs on the canonical backend even under a racing
    /// portfolio — required when probe models become output directly (the
    /// enumeration) instead of merely steering a bound search.
    fn open(
        session: &SatSession,
        measurable: &BitMatrix,
        detection_sets: &[Vec<usize>],
        u: usize,
        canonical: bool,
    ) -> Self {
        let mut incremental = if canonical {
            session.canonical_incremental()
        } else {
            session.incremental()
        };
        let support_lits = encode_cover_base(
            incremental.backend_mut().as_mut(),
            measurable,
            detection_sets,
            u,
        );
        let all_supports = support_lits.iter().flatten().copied().collect();
        WarmCoverLadder {
            ladder: BoundedLadder::new(incremental, all_supports),
            support_lits,
            num_qubits: measurable.num_cols(),
        }
    }

    fn prepare_bounds(&mut self, width: usize) {
        self.ladder.prepare_bounds(width);
    }

    fn set_bound(&mut self, v: usize) {
        self.ladder.set_bound(v);
    }

    fn block(&mut self, previous: &[BitVec]) {
        add_cover_blocking(
            self.ladder.session_mut().backend_mut().as_mut(),
            &self.support_lits,
            previous,
        );
    }

    fn probe(
        &mut self,
        session: &mut SatSession,
        bound: Option<usize>,
        options: &VerificationOptions,
    ) -> Result<Option<VerificationSolution>, VerificationError> {
        if let Some(v) = bound {
            self.ladder.set_bound(v);
        }
        match session.solve_incremental(self.ladder.session_mut(), options.max_conflicts) {
            Some(SolveResult::Sat) => {
                let model = self.ladder.model().expect("SAT result has a model");
                Ok(Some(extract_cover_solution(
                    model,
                    &self.support_lits,
                    self.num_qubits,
                )))
            }
            Some(SolveResult::Unsat) => Ok(None),
            None => Err(VerificationError::ConflictBudgetExceeded {
                max_conflicts: options.max_conflicts.unwrap_or(0),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ZeroStateContext;
    use dftsp_code::catalog;
    use dftsp_pauli::PauliKind;

    fn steane_ctx() -> ZeroStateContext {
        ZeroStateContext::new(catalog::steane())
    }

    #[test]
    fn empty_error_set_needs_no_measurements() {
        let ctx = steane_ctx();
        let solution = synthesize_verification(
            ctx.measurable_group(PauliKind::X),
            &[],
            &VerificationOptions::default(),
        )
        .unwrap();
        assert_eq!(solution.num_measurements(), 0);
        assert_eq!(solution.total_weight, 0);
    }

    #[test]
    fn single_dangerous_error_is_covered_by_one_measurement() {
        let ctx = steane_ctx();
        let dangerous = vec![BitVec::from_indices(7, &[2, 3])];
        let solution = synthesize_verification(
            ctx.measurable_group(PauliKind::X),
            &dangerous,
            &VerificationOptions::default(),
        )
        .unwrap();
        assert_eq!(solution.num_measurements(), 1);
        // The measurement anticommutes with the error and is a state stabilizer.
        assert!(solution.measurements[0].dot(&dangerous[0]));
        assert!(ctx
            .measurable_group(PauliKind::X)
            .in_row_space(&solution.measurements[0]));
        // The minimal-weight choice is at most the logical Z weight (3).
        assert!(solution.total_weight <= 3);
    }

    #[test]
    fn coverage_holds_for_every_synthesized_measurement_set() {
        let ctx = steane_ctx();
        let dangerous = vec![
            BitVec::from_indices(7, &[0, 1]),
            BitVec::from_indices(7, &[2, 3]),
            BitVec::from_indices(7, &[4, 5, 6]),
        ];
        let solution = synthesize_verification(
            ctx.measurable_group(PauliKind::X),
            &dangerous,
            &VerificationOptions::default(),
        )
        .unwrap();
        for e in &dangerous {
            assert!(
                solution.measurements.iter().any(|s| s.dot(e)),
                "error {e} must anticommute with some measurement"
            );
        }
    }

    #[test]
    fn undetectable_error_is_reported() {
        // An error commuting with every generator of the measurable group can
        // never be verified; synthesis must report it instead of looping.
        let measurable = BitMatrix::from_dense(&[&[1, 1, 0, 0][..]]);
        let invisible = BitVec::from_indices(4, &[2, 3]);
        let err = synthesize_verification(
            &measurable,
            std::slice::from_ref(&invisible),
            &VerificationOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, VerificationError::UndetectableError(invisible));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn logical_x_is_detectable_on_the_prepared_state() {
        // On |0⟩_L the logical Z is measurable, so even a full logical X error
        // is covered by a verification measurement.
        let ctx = steane_ctx();
        let logical_x = ctx.code().logicals(PauliKind::X).row(0).clone();
        let solution = synthesize_verification(
            ctx.measurable_group(PauliKind::X),
            std::slice::from_ref(&logical_x),
            &VerificationOptions::default(),
        )
        .unwrap();
        assert_eq!(solution.num_measurements(), 1);
        assert!(solution.measurements[0].dot(&logical_x));
    }

    #[test]
    fn weight_minimization_prefers_logical_z_over_stabilizers() {
        // For the Steane code a dangerous error anticommuting with the
        // weight-3 logical Z should be verified with weight 3, not 4.
        let ctx = steane_ctx();
        // The Fano-plane structure of the Steane code guarantees a weight-3
        // Z-type state stabilizer with odd overlap with any two-qubit error.
        let e = BitVec::from_indices(7, &[0, 6]);
        let solution = synthesize_verification(
            ctx.measurable_group(PauliKind::X),
            &[e],
            &VerificationOptions::default(),
        )
        .unwrap();
        assert_eq!(solution.num_measurements(), 1);
        assert!(solution.total_weight <= 3);
    }

    #[test]
    fn enumeration_returns_distinct_minimal_solutions() {
        let ctx = steane_ctx();
        let dangerous = vec![BitVec::from_indices(7, &[0, 1])];
        let options = VerificationOptions {
            enumeration_cap: 16,
            ..VerificationOptions::default()
        };
        let solutions = enumerate_minimal_verifications(
            ctx.measurable_group(PauliKind::X),
            &dangerous,
            &options,
        )
        .unwrap();
        assert!(!solutions.is_empty());
        let best_weight = solutions[0].total_weight;
        let mut seen = std::collections::HashSet::new();
        for s in &solutions {
            assert_eq!(s.num_measurements(), 1);
            assert_eq!(
                s.total_weight, best_weight,
                "all enumerated solutions are minimal"
            );
            assert!(s.measurements[0].dot(&dangerous[0]));
            assert!(seen.insert(s.measurements[0].to_bits()));
        }
    }

    #[test]
    fn two_measurements_needed_when_one_cannot_cover() {
        // Construct a measurable group where no single operator anticommutes
        // with both errors: group generated by Z0Z1 and Z2Z3 on 4 qubits,
        // errors X0 X... error1 = {0}, error2 = {2}. A single measurement
        // would have to anticommute with both, i.e. contain qubit 0 (odd) and
        // qubit 2 (odd): Z0Z1+Z2Z3 overlaps each in exactly one qubit — so one
        // measurement *does* suffice here; use disjoint errors {0,1} and {2}
        // instead: {0,1} has even overlap with Z0Z1, so only the combined
        // operator could detect it — nothing does. Expect an error.
        let measurable = BitMatrix::from_dense(&[&[1, 1, 0, 0][..], &[0, 0, 1, 1][..]]);
        let errors = vec![BitVec::from_indices(4, &[0, 1])];
        let err = synthesize_verification(&measurable, &errors, &VerificationOptions::default());
        assert!(matches!(err, Err(VerificationError::UndetectableError(_))));

        // Two detectable errors with disjoint detection sets force u = 2 when
        // the group has no element overlapping both oddly.
        let measurable = BitMatrix::from_dense(&[&[1, 0, 0, 0][..], &[0, 0, 1, 0][..]]);
        let errors = vec![BitVec::unit(4, 0), BitVec::unit(4, 2)];
        let solution =
            synthesize_verification(&measurable, &errors, &VerificationOptions::default()).unwrap();
        // A single measurement Z0Z2 would detect... it is in the group (sum of
        // both generators) and overlaps each error once, so u = 1 suffices.
        assert_eq!(solution.num_measurements(), 1);
        assert_eq!(solution.total_weight, 2);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // Force an impossible budget: two errors with disjoint singleton
        // detection sets and max_measurements = 1... a combined generator
        // covers both, so instead use generators that cannot be combined:
        // detection sets {0} and {1} with generators that cancel on combination.
        let measurable = BitMatrix::from_dense(&[&[1, 1, 0][..], &[0, 1, 1][..]]);
        // Error {0,1} anticommutes only with generator 1 (overlap with g0 is
        // 2, with g1 is 1); error {1,2} only with generator 0.
        let errors = vec![
            BitVec::from_indices(3, &[0, 1]),
            BitVec::from_indices(3, &[1, 2]),
        ];
        let options = VerificationOptions {
            max_measurements: 0,
            ..VerificationOptions::default()
        };
        assert_eq!(
            synthesize_verification(&measurable, &errors, &options),
            Err(VerificationError::BudgetExhausted)
        );
    }
}
