//! The request-oriented serving front end: [`SynthesisService`].
//!
//! [`crate::SynthesisEngine`] is a single-caller session object; this module
//! turns the same pipeline into a request/response service fit for many
//! concurrent clients asking overlapping questions — the catalog-shaped
//! workload of the paper, where a small set of (code, options) synthesis
//! problems is requested over and over.
//!
//! A [`SynthesisRequest`] names the code plus everything the answer depends
//! on (options, SAT backend, ladder mode), a scheduling [`Priority`] and an
//! optional [`CancellationToken`]. [`SynthesisService::submit`] answers with
//! a [`SynthesisResponse`]: the report plus its [`Provenance`] — whether the
//! request was served from the report store ([`Provenance::Cached`]), rode an
//! identical in-flight solve ([`Provenance::Coalesced`]) or ran the SAT
//! pipeline itself ([`Provenance::Solved`]) — and queue/solve timings.
//!
//! Three mechanisms make the service safe under concurrent traffic:
//!
//! * **Deterministic priority admission.** At most
//!   [`ServiceBuilder::concurrency`] solves run at once. Waiting requests are
//!   admitted strictly by `(priority descending, submission order ascending)`
//!   — given the same set of waiters, the next admitted request is always the
//!   same one. Priority is *inherited* through coalescing: a high-priority
//!   request joining a queued lower-priority identical request upgrades that
//!   leader in place. Report-store hits bypass admission entirely — cached
//!   traffic is never queued behind saturated solves.
//! * **Coalescing.** Requests are keyed by [`ReportKey`] (code + options +
//!   backend + ladder fingerprint). While a solve for a key is in flight,
//!   every identical submission *joins* it instead of solving again: N
//!   concurrent identical requests trigger exactly one SAT pipeline run whose
//!   report fans out bit-identically to all waiters.
//! * **Cancellation.** A cancelled request is drained: it stops waiting (for
//!   admission or for a coalesced result) and returns
//!   [`ServiceError::Cancelled`]. The shared solve is never poisoned — other
//!   waiters on the same key, and the store entry the solve produces, are
//!   unaffected. A leader cancelled before its solve starts hands the key to
//!   a surviving waiter; one whose solve already runs completes it (SAT
//!   queries are not interruptible mid-flight) and returns the result.
//!
//! The service runs solves on the *submitting* threads — there is no
//! detached worker pool to shut down — while batch traffic
//! ([`SynthesisService::submit_all`]) fans submissions out over the same
//! scoped-worker helper the engine uses. [`crate::SynthesisEngine`]'s
//! `synthesize`/`synthesize_all` are thin wrappers over a single-request
//! service, so there is exactly one serving code path.
//!
//! # Examples
//!
//! ```
//! use dftsp::{Priority, SynthesisRequest, SynthesisService};
//! use dftsp_code::catalog;
//!
//! let service = SynthesisService::builder().concurrency(2).build();
//! let response = service
//!     .submit(SynthesisRequest::new(catalog::steane()).priority(Priority::High))?;
//! assert!(response.provenance.is_solved());
//! println!("{} in {:?}", response.report.code_name, response.solve_time);
//! # Ok::<(), dftsp::ServiceError>(())
//! ```

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use dftsp_code::CssCode;
use dftsp_sat::{BackendChoice, LadderMode};

use crate::engine::{EngineBuilder, SynthesisEngine, SynthesisReport};
use crate::store::{ReportKey, ReportStore};
use crate::synthesis::{SynthesisError, SynthesisOptions};
use crate::workload::WorkloadKind;

/// How long a blocked submission *with a cancellation token* sleeps between
/// cancellation checks. Wakeups for results and admissions are prompt
/// (condvar notifications); the timeout only bounds how stale a cancellation
/// can go unnoticed. Requests without a token block without polling.
const CANCEL_POLL: Duration = Duration::from_millis(5);

/// Scheduling priority of a [`SynthesisRequest`].
///
/// When more requests are waiting than the service's concurrency limit
/// admits, higher priorities are admitted first; within one priority,
/// submission order decides. Coalescing inherits priority: a request joining
/// a queued identical request upgrades that leader to its own priority if
/// higher. The default is [`Priority::Normal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Background traffic: admitted only when nothing more urgent waits.
    Low,
    /// Regular traffic (the default).
    #[default]
    Normal,
    /// Latency-sensitive traffic: admitted before all other waiters.
    High,
}

/// A cooperative cancellation handle shared between a submitter and the
/// caller that may abandon it.
///
/// Cancelling *drains* the request: the submission stops waiting and returns
/// [`ServiceError::Cancelled`]. It never poisons shared state — an in-flight
/// solve other requests coalesced onto keeps running and its result still
/// fans out to the remaining waiters.
///
/// # Examples
///
/// ```
/// use dftsp::CancellationToken;
///
/// let token = CancellationToken::new();
/// let handle = token.clone();
/// assert!(!token.is_cancelled());
/// handle.cancel();
/// assert!(token.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancellationToken(Arc<AtomicBool>);

impl CancellationToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancellationToken::default()
    }

    /// Signals cancellation to every clone of this token.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Returns `true` once any clone has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// One synthesis question: the code plus everything the answer depends on,
/// along with how urgently (and how abortably) it should be answered.
///
/// Option, backend and ladder overrides default to the service's own
/// configuration; two requests with the same effective configuration share
/// one [`ReportKey`] and therefore coalesce.
#[derive(Debug, Clone)]
pub struct SynthesisRequest {
    code: CssCode,
    options: Option<SynthesisOptions>,
    workload: Option<WorkloadKind>,
    solver: Option<BackendChoice>,
    ladder: Option<LadderMode>,
    priority: Priority,
    cancel: Option<CancellationToken>,
    solve_threads: Option<usize>,
}

impl SynthesisRequest {
    /// A request for `code` with the service's default configuration,
    /// [`Priority::Normal`] and no cancellation token.
    pub fn new(code: CssCode) -> Self {
        SynthesisRequest {
            code,
            options: None,
            workload: None,
            solver: None,
            ladder: None,
            priority: Priority::default(),
            cancel: None,
            solve_threads: None,
        }
    }

    /// Overrides the per-step synthesis options for this request only.
    pub fn options(mut self, options: SynthesisOptions) -> Self {
        self.options = Some(options);
        self
    }

    /// Overrides the synthesis workload for this request only. Cat-state
    /// requests run the pipeline against the GHZ stabilizer group of
    /// [`WorkloadKind::CatStatePrep`] regardless of the requested code, and
    /// are keyed (coalesced, cached, stored) separately from zero-state
    /// requests.
    pub fn workload(mut self, workload: WorkloadKind) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Overrides the SAT backend for this request only.
    pub fn solver(mut self, solver: BackendChoice) -> Self {
        self.solver = Some(solver);
        self
    }

    /// Overrides the ladder mode for this request only.
    pub fn ladder_mode(mut self, ladder: LadderMode) -> Self {
        self.ladder = Some(ladder);
        self
    }

    /// Sets the scheduling priority.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Attaches a cancellation token. Cancelling it makes the submission
    /// return [`ServiceError::Cancelled`] instead of waiting further.
    pub fn cancellation(mut self, token: CancellationToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Bounds the per-branch correction fan-out of the solve this request may
    /// lead (defaults to the service's full concurrency). Batch submission
    /// uses this to divide the thread budget between concurrent leaders so
    /// the two fan-out levels never multiply.
    pub fn solve_threads(mut self, threads: usize) -> Self {
        self.solve_threads = Some(threads.max(1));
        self
    }

    /// The requested code.
    pub fn code(&self) -> &CssCode {
        &self.code
    }

    /// The workload override, if any.
    pub fn workload_override(&self) -> Option<WorkloadKind> {
        self.workload
    }
}

/// Where a response's report came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Served from the report store without any solving.
    Cached,
    /// Joined an identical in-flight request; the report is the fan-out of
    /// that request's single solve.
    Coalesced,
    /// This request ran the SAT pipeline itself.
    Solved,
}

impl Provenance {
    /// `true` for [`Provenance::Solved`].
    pub fn is_solved(self) -> bool {
        self == Provenance::Solved
    }
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Provenance::Cached => write!(f, "cached"),
            Provenance::Coalesced => write!(f, "coalesced"),
            Provenance::Solved => write!(f, "solved"),
        }
    }
}

/// A served synthesis answer: the report plus its provenance and the
/// request's time breakdown.
#[derive(Debug, Clone)]
pub struct SynthesisResponse {
    /// The synthesized (or cached, or coalesced) report. Bit-identical to
    /// what a fresh single-caller engine run would produce.
    pub report: SynthesisReport,
    /// Whether the report was cached, coalesced or solved by this request.
    pub provenance: Provenance,
    /// Time spent waiting for admission by the priority scheduler.
    pub queue_time: Duration,
    /// Time from work start to the report being available: the SAT pipeline
    /// for [`Provenance::Solved`], the store lookup for
    /// [`Provenance::Cached`], the wait for the shared solve for
    /// [`Provenance::Coalesced`].
    pub solve_time: Duration,
}

/// Errors reported by [`SynthesisService`] submissions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The underlying synthesis pipeline failed. When the failing solve was
    /// shared, every coalesced waiter receives the same error.
    Synthesis(SynthesisError),
    /// The request's [`CancellationToken`] fired before a result was
    /// available; the request was drained without affecting shared state.
    Cancelled,
}

impl ServiceError {
    /// Unwraps the synthesis failure, if that is what this error is.
    pub fn into_synthesis(self) -> Option<SynthesisError> {
        match self {
            ServiceError::Synthesis(e) => Some(e),
            ServiceError::Cancelled => None,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Synthesis(source) => write!(f, "synthesis failed: {source}"),
            ServiceError::Cancelled => write!(f, "the request was cancelled"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Synthesis(source) => Some(source),
            ServiceError::Cancelled => None,
        }
    }
}

impl From<SynthesisError> for ServiceError {
    fn from(source: SynthesisError) -> Self {
        ServiceError::Synthesis(source)
    }
}

/// A snapshot of the service's traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests submitted so far.
    pub submitted: u64,
    /// Requests that ran the SAT pipeline themselves.
    pub solved: u64,
    /// Requests that joined an identical in-flight solve.
    pub coalesced: u64,
    /// Requests served from the report store.
    pub cached: u64,
    /// Requests drained by cancellation.
    pub cancelled: u64,
    /// Requests whose (own or shared) solve failed.
    pub failed: u64,
    /// Lookups the attached report store answered (0 when no store is
    /// attached). With a replicated store behind the service these include
    /// failover hits — the availability layer's wins show up here.
    pub store_hits: u64,
    /// Lookups the attached report store missed, *including* backend
    /// outages degraded to misses (0 when no store is attached).
    pub store_misses: u64,
}

impl ServiceStats {
    /// Fraction of completed requests that did *not* run the pipeline
    /// themselves — the dedup win of coalescing plus caching. Returns 0 when
    /// nothing completed.
    pub fn dedup_rate(&self) -> f64 {
        let completed = self.solved + self.coalesced + self.cached;
        if completed == 0 {
            0.0
        } else {
            (self.coalesced + self.cached) as f64 / completed as f64
        }
    }
}

impl std::fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "submitted={} solved={} coalesced={} cached={} cancelled={} failed={} store={}h/{}m (dedup {:.1}%)",
            self.submitted,
            self.solved,
            self.coalesced,
            self.cached,
            self.cancelled,
            self.failed,
            self.store_hits,
            self.store_misses,
            100.0 * self.dedup_rate(),
        )
    }
}

/// Builder for a [`SynthesisService`].
///
/// The synthesis-facing knobs mirror [`EngineBuilder`]; `concurrency` bounds
/// how many solves run at once (and how wide batch submission fans out).
#[derive(Debug, Clone, Default)]
pub struct ServiceBuilder {
    engine: EngineBuilder,
    concurrency: Option<usize>,
}

impl ServiceBuilder {
    /// A builder with all defaults (default engine configuration, hardware
    /// parallelism).
    pub fn new() -> Self {
        ServiceBuilder::default()
    }

    /// Replaces the default per-step option set of the service.
    pub fn options(mut self, options: SynthesisOptions) -> Self {
        self.engine = self.engine.options(options);
        self
    }

    /// Selects the default SAT backend.
    pub fn solver(mut self, choice: BackendChoice) -> Self {
        self.engine = self.engine.solver(choice);
        self
    }

    /// Selects the default ladder mode.
    pub fn ladder_mode(mut self, mode: LadderMode) -> Self {
        self.engine = self.engine.ladder_mode(mode);
        self
    }

    /// Attaches a [`ReportStore`]; every request consults it before solving
    /// and fresh reports are persisted into it.
    pub fn report_store(mut self, store: Arc<dyn ReportStore>) -> Self {
        self.engine = self.engine.report_store(store);
        self
    }

    /// Bounds how many solves run concurrently (defaults to the available
    /// hardware parallelism). Also the worker width of
    /// [`SynthesisService::submit_all`].
    pub fn concurrency(mut self, concurrency: usize) -> Self {
        self.concurrency = Some(concurrency.max(1));
        self
    }

    /// Finalizes the service.
    pub fn build(self) -> SynthesisService {
        let mut engine_builder = self.engine;
        if let Some(concurrency) = self.concurrency {
            engine_builder = engine_builder.threads(concurrency);
        }
        SynthesisService::from_engine(&engine_builder.build())
    }
}

/// What the leader of an in-flight key ends up publishing to its waiters.
#[derive(Debug, Clone)]
enum Publication {
    /// The leader's outcome, ready to fan out. Errors fan out exactly like
    /// reports. (Shared: N waiters clone the `Arc` under the cell lock and
    /// materialize their own copies outside it, so the fan-out of a large
    /// report is not serialized on the lock.)
    Ready(Arc<Result<SynthesisReport, SynthesisError>>),
    /// The leader was cancelled before its solve started; waiters retry and
    /// one of them takes over the key.
    Abandoned,
}

/// Where the leader of an in-flight key currently stands with the admission
/// scheduler. Guarded by one mutex so boosts and the leader's own
/// transitions are atomic; always locked *after* the admission lock.
#[derive(Debug, Default)]
struct LeaderQueueState {
    /// The leader's ticket while it is queued (`None` before registration
    /// and again once admitted). Followers with a higher priority upgrade it
    /// in place — coalescing inherits priority instead of inverting it.
    ticket: Option<Ticket>,
    /// The highest priority a follower requested *before* the leader
    /// registered its ticket; folded into the ticket at registration, so a
    /// boost can never fall into the gap between claiming the key and
    /// joining the admission queue.
    boost: Option<Priority>,
}

/// Bookkeeping of one in-flight solve that identical requests coalesce onto.
#[derive(Debug, Default)]
struct InFlight {
    /// `None` while the leader is still queued or solving.
    done: Mutex<Option<Publication>>,
    published: Condvar,
    /// The leader's standing in the admission queue (see
    /// [`LeaderQueueState`]).
    queue: Mutex<LeaderQueueState>,
}

/// A ticket in the admission queue. `BTreeSet` order is admission order:
/// highest priority first (hence the `Reverse`), then submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Ticket {
    priority: std::cmp::Reverse<Priority>,
    seq: u64,
}

/// State of the deterministic priority scheduler: how many solves hold a
/// permit and who is waiting for one.
#[derive(Debug, Default)]
struct AdmissionState {
    active: usize,
    waiting: BTreeSet<Ticket>,
}

impl AdmissionState {
    /// The ticket the scheduler admits next, once a permit frees up:
    /// the highest-priority, earliest-submitted waiter.
    fn next_ticket(&self) -> Option<Ticket> {
        self.waiting.first().copied()
    }

    /// Whether `ticket` may take a permit right now.
    fn may_admit(&self, ticket: Ticket, limit: usize) -> bool {
        self.active < limit && self.next_ticket() == Some(ticket)
    }
}

#[derive(Debug)]
struct ServiceInner {
    /// The engine every leader solves on (uncached — the service owns the
    /// store interaction).
    engine: SynthesisEngine,
    admission: Mutex<AdmissionState>,
    admitted: Condvar,
    inflight: Mutex<HashMap<ReportKey, Arc<InFlight>>>,
    next_seq: AtomicU64,
    submitted: AtomicU64,
    solved: AtomicU64,
    coalesced: AtomicU64,
    cached: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
}

/// The request/response serving front end over the synthesis pipeline.
///
/// Cloning is cheap and shares all state — clones coalesce against each
/// other, which is how the service is handed to many client threads.
///
/// # Examples
///
/// Identical concurrent submissions run the pipeline once — overlapping
/// requests coalesce onto the in-flight solve, and a request arriving after
/// it completed is served from the store:
///
/// ```
/// use std::sync::Arc;
/// use dftsp::{MemoryReportStore, SynthesisRequest, SynthesisService};
/// use dftsp_code::catalog;
///
/// let service = SynthesisService::builder()
///     .report_store(Arc::new(MemoryReportStore::new()))
///     .concurrency(2)
///     .build();
/// let clients: Vec<_> = (0..3)
///     .map(|_| {
///         let service = service.clone();
///         std::thread::spawn(move || service.submit(SynthesisRequest::new(catalog::steane())))
///     })
///     .collect();
/// let responses: Vec<_> = clients
///     .into_iter()
///     .map(|c| c.join().unwrap().unwrap())
///     .collect();
/// let solved = responses.iter().filter(|r| r.provenance.is_solved()).count();
/// assert_eq!(solved, 1, "one SAT pipeline run serves all three clients");
/// ```
#[derive(Debug, Clone)]
pub struct SynthesisService {
    inner: Arc<ServiceInner>,
}

impl Default for SynthesisService {
    fn default() -> Self {
        SynthesisService::builder().build()
    }
}

impl SynthesisService {
    /// Starts building a service.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::new()
    }

    /// A service with the exact configuration (options, backend, ladder mode,
    /// store, thread budget) of an existing engine. This is the seam the
    /// engine's own `synthesize`/`synthesize_all` wrappers go through.
    pub fn from_engine(engine: &SynthesisEngine) -> Self {
        SynthesisService {
            inner: Arc::new(ServiceInner {
                engine: engine.clone(),
                admission: Mutex::new(AdmissionState::default()),
                admitted: Condvar::new(),
                inflight: Mutex::new(HashMap::new()),
                next_seq: AtomicU64::new(0),
                submitted: AtomicU64::new(0),
                solved: AtomicU64::new(0),
                coalesced: AtomicU64::new(0),
                cached: AtomicU64::new(0),
                cancelled: AtomicU64::new(0),
                failed: AtomicU64::new(0),
            }),
        }
    }

    /// The concurrency limit (solves at once, batch worker width).
    pub fn concurrency(&self) -> usize {
        self.inner.engine.threads()
    }

    /// The report store requests are served from, if one is attached.
    pub fn report_store(&self) -> Option<&Arc<dyn ReportStore>> {
        self.inner.engine.report_store()
    }

    /// The [`ReportKey`] under which `request` is coalesced, cached and
    /// stored: the effective code plus the request's *effective*
    /// configuration (service defaults overlaid with the request's
    /// overrides, including the workload).
    pub fn request_key(&self, request: &SynthesisRequest) -> ReportKey {
        self.solve_engine(request).report_key(&request.code)
    }

    /// The code the pipeline actually runs on for `request`: the requested
    /// code itself, or the GHZ code for cat-state workloads.
    fn effective_code(&self, request: &SynthesisRequest) -> CssCode {
        request
            .workload
            .unwrap_or_else(|| self.inner.engine.workload())
            .effective_code(&request.code)
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> ServiceStats {
        let (store_hits, store_misses) = self
            .inner
            .engine
            .report_store()
            .map_or((0, 0), |store| (store.hits(), store.misses()));
        ServiceStats {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            solved: self.inner.solved.load(Ordering::Relaxed),
            coalesced: self.inner.coalesced.load(Ordering::Relaxed),
            cached: self.inner.cached.load(Ordering::Relaxed),
            cancelled: self.inner.cancelled.load(Ordering::Relaxed),
            failed: self.inner.failed.load(Ordering::Relaxed),
            store_hits,
            store_misses,
        }
    }

    /// Submits one request and blocks until it is served, coalesced away,
    /// or cancelled.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Synthesis`] when the (own or shared) solve fails,
    /// [`ServiceError::Cancelled`] when the request's token fires first.
    pub fn submit(&self, request: SynthesisRequest) -> Result<SynthesisResponse, ServiceError> {
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        let result = self.serve(&request);
        if matches!(result, Err(ServiceError::Cancelled)) {
            self.inner.cancelled.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Submits a whole batch, fanning the submissions out over up to
    /// [`SynthesisService::concurrency`] scoped workers, and returns the
    /// responses in input order. Duplicate requests within the batch coalesce
    /// exactly like concurrent external submissions.
    pub fn submit_all(
        &self,
        requests: Vec<SynthesisRequest>,
    ) -> Vec<Result<SynthesisResponse, ServiceError>> {
        let workers = self.concurrency().min(requests.len()).max(1);
        // Divide the thread budget between the submission fan-out and each
        // leader's per-branch correction fan-out so they never multiply.
        let solve_threads = crate::par::divide_threads(self.concurrency(), workers);
        let requests: Vec<SynthesisRequest> = requests
            .into_iter()
            .map(|request| match request.solve_threads {
                Some(_) => request,
                None => request.solve_threads(solve_threads),
            })
            .collect();
        crate::par::parallel_map_indexed(
            &requests,
            workers,
            |_, request| self.submit(request.clone()),
            |_| false,
        )
        .into_iter()
        .map(|slot| slot.expect("no early stop was requested"))
        .collect()
    }

    /// Submits one request without blocking the caller, returning a
    /// [`ResponseHandle`] to [`poll`](ResponseHandle::poll),
    /// [`try_take`](ResponseHandle::try_take) or
    /// [`wait`](ResponseHandle::wait) on.
    ///
    /// The request rides the exact same scheduler as [`submit`] — store fast
    /// path, coalescing, deterministic priority admission — on a background
    /// thread, so a non-blocking submission coalesces with blocking ones and
    /// its response is bit-identical to what [`submit`] would have returned.
    /// Dropping the handle detaches the request: the solve still completes
    /// and its report still lands in the store; only the response is
    /// discarded.
    ///
    /// [`submit`]: SynthesisService::submit
    pub fn submit_nonblocking(&self, request: SynthesisRequest) -> ResponseHandle {
        let slot = Arc::new(ResponseSlot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        });
        let service = self.clone();
        let thread_slot = Arc::clone(&slot);
        let thread = std::thread::Builder::new()
            .name("dftsp-service-submit".to_string())
            .spawn(move || {
                let result = service.submit(request);
                *thread_slot.result.lock().expect("response slot poisoned") = Some(result);
                thread_slot.ready.notify_all();
            })
            .expect("spawning a non-blocking submission thread");
        ResponseHandle {
            slot,
            thread: Some(thread),
        }
    }

    /// The serving pipeline of one request: store fast path →
    /// coalesce-or-lead → admission → solve → store persist → fan out.
    ///
    /// A store hit is answered immediately — it needs neither a permit nor
    /// leadership, so cached traffic is never queued behind saturated
    /// solves. Leadership of a key is claimed *before* a permit is acquired,
    /// so identical requests coalesce even while the service is saturated
    /// and their leader is still queued — the exactly-one-solve guarantee
    /// does not depend on timing or load. A leader cancelled before its
    /// solve starts publishes [`Publication::Abandoned`]; its waiters loop
    /// back and one of them takes over the key.
    fn serve(&self, request: &SynthesisRequest) -> Result<SynthesisResponse, ServiceError> {
        let submitted_at = Instant::now();
        let key = self.request_key(request);
        loop {
            if request.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                return Err(ServiceError::Cancelled);
            }

            // Store fast path: exactly one lookup per request (as the
            // engine's classic path did), before any scheduling.
            if let Some(store) = self.inner.engine.report_store() {
                let lookup_start = Instant::now();
                if let Some(report) = store.load(&key, &self.effective_code(request)) {
                    self.inner.cached.fetch_add(1, Ordering::Relaxed);
                    return Ok(SynthesisResponse {
                        report,
                        provenance: Provenance::Cached,
                        queue_time: lookup_start.duration_since(submitted_at),
                        solve_time: lookup_start.elapsed(),
                    });
                }
            }

            // Claim leadership of the key, or join the request leading it.
            let (cell, leader) = {
                let mut inflight = self.inner.inflight.lock().expect("inflight lock poisoned");
                match inflight.get(&key) {
                    Some(cell) => (Arc::clone(cell), false),
                    None => {
                        let cell = Arc::new(InFlight::default());
                        inflight.insert(key.clone(), Arc::clone(&cell));
                        (cell, true)
                    }
                }
            };

            if leader {
                return self.lead_and_publish(request, &key, &cell, submitted_at);
            }

            // A follower never holds a permit: it lends its priority to the
            // queued leader (coalescing inherits priority instead of
            // inverting it) and waits for the publication.
            self.boost_leader(&cell, request.priority);
            let queue_time = submitted_at.elapsed();
            let wait_start = Instant::now();
            match self.await_publication(&cell, request.cancel.as_ref())? {
                Publication::Ready(result) => {
                    // Deep-clone outside the cell lock (await_publication
                    // only cloned the Arc under it).
                    let result = result.as_ref().clone();
                    match &result {
                        Ok(_) => self.inner.coalesced.fetch_add(1, Ordering::Relaxed),
                        Err(_) => self.inner.failed.fetch_add(1, Ordering::Relaxed),
                    };
                    return Ok(SynthesisResponse {
                        report: result?,
                        provenance: Provenance::Coalesced,
                        queue_time,
                        solve_time: wait_start.elapsed(),
                    });
                }
                // The leader drained before solving; retry — this request
                // may now claim the key itself.
                Publication::Abandoned => continue,
            }
        }
    }

    /// The leader's path: wait for a permit, run the solve, publish the
    /// result to every coalesced waiter, retire the key. A cancellation
    /// before the solve starts abandons leadership instead (waiters retry
    /// and take over), so a drained leader never poisons the shared key.
    fn lead_and_publish(
        &self,
        request: &SynthesisRequest,
        key: &ReportKey,
        cell: &InFlight,
        submitted_at: Instant,
    ) -> Result<SynthesisResponse, ServiceError> {
        // Until disarmed, every exit — including a panicking solve unwinding
        // through this frame — publishes `Abandoned` (waiters retry and one
        // takes over the key) and returns the permit, so a single failing
        // request can never wedge the key or leak scheduler capacity.
        let mut guard = LeaderGuard {
            service: self,
            key,
            cell,
            holds_permit: false,
            armed: true,
        };
        if self.acquire_permit_as_leader(request, cell).is_err() {
            return Err(ServiceError::Cancelled);
        }
        guard.holds_permit = true;
        if request.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
            return Err(ServiceError::Cancelled);
        }
        let queue_time = submitted_at.elapsed();

        let work_start = Instant::now();
        let result = self.lead(request, key);
        let solve_time = work_start.elapsed();
        guard.armed = false;
        self.publish(key, cell, Publication::Ready(Arc::new(result.clone())));
        self.release_permit();
        match &result {
            Err(_) => self.inner.failed.fetch_add(1, Ordering::Relaxed),
            Ok(_) => self.inner.solved.fetch_add(1, Ordering::Relaxed),
        };
        Ok(SynthesisResponse {
            report: result?,
            provenance: Provenance::Solved,
            queue_time,
            solve_time,
        })
    }

    /// Publishes the outcome of a led key to its waiters, then retires the
    /// key so later identical requests go to the store (or a new leader).
    fn publish(&self, key: &ReportKey, cell: &InFlight, publication: Publication) {
        {
            let mut done = cell.done.lock().expect("inflight cell poisoned");
            *done = Some(publication);
            cell.published.notify_all();
        }
        self.inner
            .inflight
            .lock()
            .expect("inflight lock poisoned")
            .remove(key);
    }

    /// The leader's work: run the pipeline and persist the fresh report.
    /// (The store was already consulted on the fast path before leadership
    /// was claimed — a leader exists only because that lookup missed.)
    fn lead(
        &self,
        request: &SynthesisRequest,
        key: &ReportKey,
    ) -> Result<SynthesisReport, SynthesisError> {
        let engine = self.solve_engine(request);
        let result = engine.synthesize_uncached(&request.code);
        if let (Ok(report), Some(store)) = (&result, engine.report_store()) {
            store.save(key, report);
        }
        result
    }

    /// The engine a leader solves `request` on: the service's engine with the
    /// request's overrides applied.
    fn solve_engine(&self, request: &SynthesisRequest) -> SynthesisEngine {
        self.inner.engine.configured(
            request.options.clone(),
            request.workload,
            request.solver,
            request.ladder,
            request.solve_threads,
        )
    }

    /// Blocks until the scheduler admits the leader of `cell` (respecting
    /// the concurrency limit and the deterministic priority order) or the
    /// request's token fires. The leader's ticket lives in the cell while it
    /// is queued, so coalescing followers can upgrade its priority in place
    /// ([`SynthesisService::boost_leader`]); a boost requested before
    /// registration is folded into the initial ticket.
    ///
    /// Lock order is always admission → cell queue state.
    fn acquire_permit_as_leader(
        &self,
        request: &SynthesisRequest,
        cell: &InFlight,
    ) -> Result<(), ServiceError> {
        let cancel = request.cancel.as_ref();
        let limit = self.concurrency();
        let mut state = self
            .inner
            .admission
            .lock()
            .expect("admission lock poisoned");
        {
            let mut queue = cell.queue.lock().expect("queue lock poisoned");
            let priority = match queue.boost.take() {
                Some(boost) => request.priority.max(boost),
                None => request.priority,
            };
            let ticket = Ticket {
                priority: std::cmp::Reverse(priority),
                seq: self.inner.next_seq.fetch_add(1, Ordering::Relaxed),
            };
            state.waiting.insert(ticket);
            queue.ticket = Some(ticket);
        }
        loop {
            // Re-read every iteration: a follower may have upgraded it.
            let ticket = cell
                .queue
                .lock()
                .expect("queue lock poisoned")
                .ticket
                .expect("queued leader has a ticket");
            if cancel.is_some_and(|t| t.is_cancelled()) {
                state.waiting.remove(&ticket);
                cell.queue.lock().expect("queue lock poisoned").ticket = None;
                // The departure may unblock the next waiter in line.
                self.inner.admitted.notify_all();
                return Err(ServiceError::Cancelled);
            }
            if state.may_admit(ticket, limit) {
                state.waiting.remove(&ticket);
                cell.queue.lock().expect("queue lock poisoned").ticket = None;
                state.active += 1;
                // The new head of the queue may be admissible right away —
                // wake it rather than leaving it to its poll timeout.
                self.inner.admitted.notify_all();
                return Ok(());
            }
            state = wait_step(
                &self.inner.admitted,
                state,
                cancel.is_some(),
                "admission lock poisoned",
            );
        }
    }

    /// Upgrades the leader of `cell` to at least `priority` — called by a
    /// coalescing follower, so a high-priority request joining a
    /// low-priority in-flight key pulls that key's solve forward instead of
    /// inheriting its position (no priority inversion through coalescing).
    /// Before the leader registered its ticket the boost is parked in the
    /// cell and folded in at registration; once the leader is admitted it is
    /// a no-op.
    fn boost_leader(&self, cell: &InFlight, priority: Priority) {
        let mut state = self
            .inner
            .admission
            .lock()
            .expect("admission lock poisoned");
        let mut queue = cell.queue.lock().expect("queue lock poisoned");
        match queue.ticket {
            Some(ticket) => {
                // `Reverse` order: a smaller value is a higher priority.
                if std::cmp::Reverse(priority) < ticket.priority && state.waiting.remove(&ticket) {
                    let upgraded = Ticket {
                        priority: std::cmp::Reverse(priority),
                        seq: ticket.seq,
                    };
                    state.waiting.insert(upgraded);
                    queue.ticket = Some(upgraded);
                    self.inner.admitted.notify_all();
                }
            }
            None => {
                // The leader has not registered yet (or is already
                // admitted/done, in which case the watermark is never read).
                queue.boost = Some(match queue.boost {
                    Some(existing) => existing.max(priority),
                    None => priority,
                });
            }
        }
    }

    /// Returns a permit to the scheduler and wakes the next waiter in line.
    fn release_permit(&self) {
        let mut state = self
            .inner
            .admission
            .lock()
            .expect("admission lock poisoned");
        state.active -= 1;
        self.inner.admitted.notify_all();
    }

    /// A follower's wait for the leader's publication (or its own
    /// cancellation — which detaches this waiter only).
    fn await_publication(
        &self,
        cell: &InFlight,
        cancel: Option<&CancellationToken>,
    ) -> Result<Publication, ServiceError> {
        let mut done = cell.done.lock().expect("inflight cell poisoned");
        loop {
            if let Some(result) = done.as_ref() {
                return Ok(result.clone());
            }
            if cancel.is_some_and(|t| t.is_cancelled()) {
                return Err(ServiceError::Cancelled);
            }
            done = wait_step(
                &cell.published,
                done,
                cancel.is_some(),
                "inflight cell poisoned",
            );
        }
    }
}

/// Where a non-blocking submission's background thread publishes its result.
#[derive(Debug)]
struct ResponseSlot {
    result: Mutex<Option<Result<SynthesisResponse, ServiceError>>>,
    ready: Condvar,
}

/// A handle to a [`SynthesisService::submit_nonblocking`] request in flight.
///
/// The underlying request runs on a background thread through the service's
/// ordinary scheduler; the handle is a single-use mailbox for its result.
/// [`poll`](ResponseHandle::poll) checks readiness without blocking,
/// [`try_take`](ResponseHandle::try_take) claims the result if it is ready,
/// and [`wait`](ResponseHandle::wait) blocks until it arrives. Dropping the
/// handle detaches the request — the solve completes and populates the
/// report store, only the response goes unread.
///
/// # Examples
///
/// ```
/// use dftsp::{SynthesisRequest, SynthesisService};
/// use dftsp_code::catalog;
///
/// let service = SynthesisService::builder().concurrency(2).build();
/// let mut handle = service.submit_nonblocking(SynthesisRequest::new(catalog::steane()));
/// // The caller is free immediately; the result arrives in the background.
/// let response = match handle.try_take() {
///     Some(early) => early,   // already done
///     None => handle.wait(),  // block for it
/// }?;
/// assert!(response.provenance.is_solved());
/// # Ok::<(), dftsp::ServiceError>(())
/// ```
#[derive(Debug)]
pub struct ResponseHandle {
    slot: Arc<ResponseSlot>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ResponseHandle {
    /// Returns `true` once the response is ready to take. Never blocks.
    pub fn poll(&self) -> bool {
        self.slot
            .result
            .lock()
            .expect("response slot poisoned")
            .is_some()
    }

    /// Claims the response if it is ready; `None` while the request is still
    /// in flight (and forever after the response was already taken). Never
    /// blocks on the solve.
    pub fn try_take(&mut self) -> Option<Result<SynthesisResponse, ServiceError>> {
        let taken = self
            .slot
            .result
            .lock()
            .expect("response slot poisoned")
            .take();
        if taken.is_some() {
            self.join_thread();
        }
        taken
    }

    /// Blocks until the response arrives and returns it, consuming the
    /// handle.
    ///
    /// # Panics
    ///
    /// When the response was already claimed via
    /// [`try_take`](ResponseHandle::try_take) — a consumed mailbox cannot be
    /// waited on.
    ///
    /// # Errors
    ///
    /// Exactly the errors [`SynthesisService::submit`] would have returned
    /// for the same request.
    pub fn wait(mut self) -> Result<SynthesisResponse, ServiceError> {
        let result = {
            let mut result = self.slot.result.lock().expect("response slot poisoned");
            loop {
                if let Some(taken) = result.take() {
                    break taken;
                }
                assert!(
                    self.thread.is_some(),
                    "response already claimed via try_take"
                );
                result = self
                    .slot
                    .ready
                    .wait(result)
                    .expect("response slot poisoned");
            }
        };
        self.join_thread();
        result
    }

    fn join_thread(&mut self) {
        if let Some(thread) = self.thread.take() {
            thread.join().ok();
        }
    }
}

/// One blocking step on a condvar. Requests without a cancellation token
/// block outright (a notification always arrives: publication, abandonment,
/// permit release, self-admission); tokened requests wake every
/// [`CANCEL_POLL`] to notice a fired token.
fn wait_step<'m, T>(
    condvar: &Condvar,
    guard: std::sync::MutexGuard<'m, T>,
    cancellable: bool,
    poison: &str,
) -> std::sync::MutexGuard<'m, T> {
    if cancellable {
        condvar.wait_timeout(guard, CANCEL_POLL).expect(poison).0
    } else {
        condvar.wait(guard).expect(poison)
    }
}

/// Panic/exit safety of a leadership claim: until disarmed, dropping the
/// guard publishes [`Publication::Abandoned`] (so waiters retry instead of
/// hanging forever) and returns the held permit to the scheduler.
struct LeaderGuard<'a> {
    service: &'a SynthesisService,
    key: &'a ReportKey,
    cell: &'a InFlight,
    holds_permit: bool,
    armed: bool,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.service
                .publish(self.key, self.cell, Publication::Abandoned);
            if self.holds_permit {
                self.service.release_permit();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryReportStore;
    use dftsp_code::catalog;

    #[test]
    fn admission_order_is_priority_then_submission() {
        let mut state = AdmissionState::default();
        let ticket = |priority, seq| Ticket {
            priority: std::cmp::Reverse(priority),
            seq,
        };
        state.waiting.insert(ticket(Priority::Low, 0));
        state.waiting.insert(ticket(Priority::Normal, 1));
        state.waiting.insert(ticket(Priority::High, 3));
        state.waiting.insert(ticket(Priority::High, 2));

        // Highest priority first; within one priority, submission order.
        let mut admitted = Vec::new();
        while let Some(next) = state.next_ticket() {
            state.waiting.remove(&next);
            admitted.push((next.priority.0, next.seq));
        }
        assert_eq!(
            admitted,
            vec![
                (Priority::High, 2),
                (Priority::High, 3),
                (Priority::Normal, 1),
                (Priority::Low, 0),
            ]
        );

        // No admission above the concurrency limit, regardless of waiters.
        let mut full = AdmissionState {
            active: 2,
            waiting: BTreeSet::new(),
        };
        let urgent = ticket(Priority::High, 7);
        full.waiting.insert(urgent);
        assert!(!full.may_admit(urgent, 2));
        full.active = 1;
        assert!(full.may_admit(urgent, 2));
        // Only the head of the queue may be admitted.
        full.waiting.insert(ticket(Priority::High, 5));
        assert!(!full.may_admit(urgent, 2));
    }

    #[test]
    fn coalescing_followers_boost_a_queued_leader() {
        let service = SynthesisService::builder().concurrency(2).build();
        let cell = InFlight::default();

        // Simulate a leader queued at Low priority behind a saturated pool.
        let low = Ticket {
            priority: std::cmp::Reverse(Priority::Low),
            seq: 7,
        };
        {
            let mut state = service.inner.admission.lock().unwrap();
            state.waiting.insert(low);
            state.waiting.insert(Ticket {
                priority: std::cmp::Reverse(Priority::Normal),
                seq: 9,
            });
            cell.queue.lock().unwrap().ticket = Some(low);
        }

        // A High-priority follower pulls the shared solve to the front.
        service.boost_leader(&cell, Priority::High);
        {
            let state = service.inner.admission.lock().unwrap();
            let head = state.next_ticket().unwrap();
            assert_eq!(head.priority.0, Priority::High);
            assert_eq!(head.seq, 7, "the upgraded ticket keeps its seq");
            assert!(!state.waiting.contains(&low), "the old ticket is gone");
        }
        assert_eq!(
            cell.queue.lock().unwrap().ticket.unwrap().priority.0,
            Priority::High
        );

        // A lower or equal boost is a no-op.
        service.boost_leader(&cell, Priority::Normal);
        assert_eq!(
            cell.queue.lock().unwrap().ticket.unwrap().priority.0,
            Priority::High
        );

        // Once the ticket is cleared (admitted/done), a boost only parks a
        // watermark that nobody will read.
        cell.queue.lock().unwrap().ticket = None;
        service.boost_leader(&cell, Priority::High);
        assert!(cell.queue.lock().unwrap().ticket.is_none());
    }

    #[test]
    fn boosts_before_ticket_registration_are_not_lost() {
        // The race the watermark closes: a follower joins the cell after the
        // leader claimed the key but before it registered its admission
        // ticket. The parked boost must be folded into the ticket.
        let service = SynthesisService::builder().concurrency(2).build();
        let cell = InFlight::default();

        service.boost_leader(&cell, Priority::Normal);
        service.boost_leader(&cell, Priority::High);
        service.boost_leader(&cell, Priority::Low); // never downgrades
        assert_eq!(cell.queue.lock().unwrap().boost, Some(Priority::High));

        // Saturate the pool so registration queues instead of admitting,
        // then register a Low-priority leader: it must enqueue at High.
        service.inner.admission.lock().unwrap().active = 2;
        let token = CancellationToken::new();
        let request = SynthesisRequest::new(catalog::steane())
            .priority(Priority::Low)
            .cancellation(token.clone());
        let cell = Arc::new(cell);
        let handle = {
            let service = service.clone();
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || service.acquire_permit_as_leader(&request, &cell))
        };
        let registered = loop {
            if let Some(ticket) = cell.queue.lock().unwrap().ticket {
                break ticket;
            }
            std::thread::yield_now();
        };
        assert_eq!(
            registered.priority.0,
            Priority::High,
            "the parked boost is folded into the ticket"
        );
        assert_eq!(cell.queue.lock().unwrap().boost, None, "watermark consumed");

        // Drain the queued leader via its token and restore the pool.
        token.cancel();
        assert_eq!(handle.join().unwrap(), Err(ServiceError::Cancelled));
        assert_eq!(
            service.inner.admission.lock().unwrap().active,
            2,
            "a cancelled registration takes no permit"
        );
        service.inner.admission.lock().unwrap().active = 0;
    }

    #[test]
    fn dropped_leader_guard_abandons_the_key_and_returns_the_permit() {
        // The panic-safety net: if a leader unwinds mid-solve, the guard
        // must publish Abandoned (so waiters retry instead of hanging) and
        // hand its permit back.
        let service = SynthesisService::builder().concurrency(1).build();
        let key = ReportKey {
            code_name: "guard-test".to_string(),
            fingerprint: 42,
        };
        let cell = Arc::new(InFlight::default());
        service
            .inner
            .inflight
            .lock()
            .unwrap()
            .insert(key.clone(), Arc::clone(&cell));
        service.inner.admission.lock().unwrap().active = 1;

        drop(LeaderGuard {
            service: &service,
            key: &key,
            cell: &cell,
            holds_permit: true,
            armed: true,
        });
        assert!(
            matches!(*cell.done.lock().unwrap(), Some(Publication::Abandoned)),
            "waiters are told to retry"
        );
        assert!(
            service.inner.inflight.lock().unwrap().is_empty(),
            "the key is retired"
        );
        assert_eq!(
            service.inner.admission.lock().unwrap().active,
            0,
            "the permit is returned"
        );

        // The service still serves the code normally afterwards.
        let response = service
            .submit(SynthesisRequest::new(catalog::steane()))
            .unwrap();
        assert_eq!(response.provenance, Provenance::Solved);

        // A disarmed guard touches nothing.
        service.inner.admission.lock().unwrap().active = 1;
        drop(LeaderGuard {
            service: &service,
            key: &key,
            cell: &cell,
            holds_permit: true,
            armed: false,
        });
        assert_eq!(service.inner.admission.lock().unwrap().active, 1);
        service.inner.admission.lock().unwrap().active = 0;
    }

    #[test]
    fn single_request_is_solved_and_then_cached() {
        let store = Arc::new(MemoryReportStore::new());
        let service = SynthesisService::builder()
            .report_store(store.clone())
            .concurrency(2)
            .build();
        let first = service
            .submit(SynthesisRequest::new(catalog::steane()))
            .unwrap();
        assert_eq!(first.provenance, Provenance::Solved);
        let second = service
            .submit(SynthesisRequest::new(catalog::steane()))
            .unwrap();
        assert_eq!(second.provenance, Provenance::Cached);
        assert_eq!(
            format!("{:?}", first.report.protocol.layers),
            format!("{:?}", second.report.protocol.layers)
        );
        let stats = service.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.solved, 1);
        assert_eq!(stats.cached, 1);
        assert!(stats.dedup_rate() > 0.49);
        assert!(!stats.to_string().is_empty());
    }

    #[test]
    fn request_overrides_change_the_key() {
        let service = SynthesisService::builder().build();
        let base = SynthesisRequest::new(catalog::steane());
        let fresh = SynthesisRequest::new(catalog::steane()).ladder_mode(LadderMode::Fresh);
        let defaulted = SynthesisRequest::new(catalog::steane()).ladder_mode(LadderMode::default());
        assert_ne!(
            service.request_key(&base).fingerprint,
            service.request_key(&fresh).fingerprint,
            "a ladder override must not coalesce with the default"
        );
        assert_eq!(
            service.request_key(&base),
            service.request_key(&defaulted),
            "an explicit default override is the same question"
        );
    }

    #[test]
    fn cancelled_before_admission_is_drained() {
        let service = SynthesisService::builder().concurrency(1).build();
        let token = CancellationToken::new();
        token.cancel();
        let err = service
            .submit(SynthesisRequest::new(catalog::steane()).cancellation(token))
            .unwrap_err();
        assert_eq!(err, ServiceError::Cancelled);
        assert!(err.into_synthesis().is_none());
        let stats = service.stats();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.solved, 0);

        // The drained request leaves no residue: the same service still
        // serves the same question normally.
        let response = service
            .submit(SynthesisRequest::new(catalog::steane()))
            .unwrap();
        assert_eq!(response.provenance, Provenance::Solved);
    }

    #[test]
    fn cancelled_follower_does_not_poison_the_shared_solve() {
        let service = SynthesisService::builder().concurrency(2).build();
        let code = catalog::steane();
        let token = CancellationToken::new();
        let cancelling = {
            let service = service.clone();
            let code = code.clone();
            let token = token.clone();
            std::thread::spawn(move || {
                service.submit(SynthesisRequest::new(code).cancellation(token))
            })
        };
        let surviving = {
            let service = service.clone();
            let code = code.clone();
            std::thread::spawn(move || service.submit(SynthesisRequest::new(code)))
        };
        // Fire the token while the requests are (most likely) in flight; no
        // matter where each request is at that instant, the survivor must
        // complete with the correct report.
        std::thread::sleep(Duration::from_millis(2));
        token.cancel();
        let cancelled = cancelling.join().unwrap();
        let survived = surviving.join().unwrap().expect("survivor is unaffected");
        let reference = SynthesisEngine::builder()
            .threads(1)
            .build()
            .synthesize(&code)
            .unwrap();
        assert_eq!(
            format!("{:?}", survived.report.protocol.layers),
            format!("{:?}", reference.protocol.layers),
            "a cancellation next to a shared solve must not corrupt it"
        );
        // The cancelled request either drained or (if it already led the
        // solve / arrived after publication) completed — both are valid.
        if let Err(e) = cancelled {
            assert_eq!(e, ServiceError::Cancelled);
        }
    }

    #[test]
    fn submit_all_coalesces_duplicates_within_a_batch() {
        let service = SynthesisService::builder()
            .report_store(Arc::new(MemoryReportStore::new()))
            .concurrency(4)
            .build();
        let requests: Vec<SynthesisRequest> = (0..6)
            .map(|_| SynthesisRequest::new(catalog::steane()))
            .collect();
        let responses = service.submit_all(requests);
        assert_eq!(responses.len(), 6);
        let mut solved = 0;
        let mut renderings = BTreeSet::new();
        for response in responses {
            let response = response.unwrap();
            if response.provenance.is_solved() {
                solved += 1;
            } else {
                // Duplicates either ride the in-flight solve or — if they
                // arrive after it completed — hit the store it populated.
                assert!(matches!(
                    response.provenance,
                    Provenance::Coalesced | Provenance::Cached
                ));
            }
            renderings.insert(format!("{:?}", response.report.protocol.layers));
        }
        assert_eq!(solved, 1, "identical batch entries trigger one solve");
        assert_eq!(renderings.len(), 1, "all responses are bit-identical");
    }

    #[test]
    fn error_fan_out_reaches_every_coalesced_waiter() {
        // A zero conflict budget fails the verification ladder; the failure
        // must fan out to every waiter in the coalesced group as the same
        // typed error.
        let mut options = SynthesisOptions::default();
        options.verification.max_conflicts = Some(0);
        options.correction.max_conflicts = Some(0);
        let service = SynthesisService::builder()
            .options(options)
            .concurrency(4)
            .build();
        let requests: Vec<SynthesisRequest> = (0..4)
            .map(|_| SynthesisRequest::new(catalog::steane()))
            .collect();
        let responses = service.submit_all(requests);
        for response in responses {
            let err = response.unwrap_err();
            let synthesis = err.into_synthesis().expect("a synthesis failure");
            assert!(synthesis.to_string().contains("budget"));
        }
        assert_eq!(service.stats().solved + service.stats().cached, 0);
        assert_eq!(service.stats().failed, 4);
    }

    #[test]
    fn nonblocking_submission_is_bit_identical_to_the_blocking_path() {
        let blocking_service = SynthesisService::builder().concurrency(2).build();
        let blocking = blocking_service
            .submit(SynthesisRequest::new(catalog::steane()))
            .unwrap();

        let service = SynthesisService::builder().concurrency(2).build();
        let handle = service.submit_nonblocking(SynthesisRequest::new(catalog::steane()));
        let nonblocking = handle.wait().unwrap();

        assert!(nonblocking.provenance.is_solved());
        assert_eq!(
            format!("{:?}", blocking.report.protocol.layers),
            format!("{:?}", nonblocking.report.protocol.layers),
            "the non-blocking path must not change the synthesized protocol"
        );
    }

    #[test]
    fn identical_nonblocking_submissions_coalesce_to_one_solve() {
        let service = SynthesisService::builder()
            .report_store(Arc::new(MemoryReportStore::new()))
            .concurrency(4)
            .build();
        let handles: Vec<ResponseHandle> = (0..3)
            .map(|_| service.submit_nonblocking(SynthesisRequest::new(catalog::steane())))
            .collect();
        let mut solved = 0;
        let mut renderings = BTreeSet::new();
        for handle in handles {
            let response = handle.wait().unwrap();
            if response.provenance.is_solved() {
                solved += 1;
            } else {
                assert!(matches!(
                    response.provenance,
                    Provenance::Coalesced | Provenance::Cached
                ));
            }
            renderings.insert(format!("{:?}", response.report.protocol.layers));
        }
        assert_eq!(solved, 1, "identical handles trigger exactly one solve");
        assert_eq!(renderings.len(), 1, "all responses are bit-identical");
        assert_eq!(service.stats().submitted, 3);
    }

    #[test]
    fn response_handles_poll_and_try_take_without_blocking() {
        let service = SynthesisService::builder().concurrency(2).build();
        let mut handle = service.submit_nonblocking(SynthesisRequest::new(catalog::steane()));
        // Spin (with a sleep) until ready; poll/try_take never block the solve.
        let deadline = Instant::now() + Duration::from_secs(120);
        while !handle.poll() {
            assert!(Instant::now() < deadline, "solve did not finish in time");
            std::thread::sleep(Duration::from_millis(10));
        }
        let response = handle.try_take().expect("polled ready").unwrap();
        assert!(response.provenance.is_solved());
        assert!(handle.try_take().is_none(), "the mailbox is single-use");
        assert!(!handle.poll(), "taken means no longer pending-ready");
    }

    #[test]
    fn dropping_a_handle_detaches_but_still_populates_the_store() {
        let store = Arc::new(MemoryReportStore::new());
        let service = SynthesisService::builder()
            .report_store(store.clone())
            .concurrency(2)
            .build();
        drop(service.submit_nonblocking(SynthesisRequest::new(catalog::steane())));
        // The detached solve still runs to completion and persists; a later
        // blocking submission is served from the store it populated.
        let deadline = Instant::now() + Duration::from_secs(120);
        while store.is_empty() {
            assert!(Instant::now() < deadline, "detached solve never persisted");
            std::thread::sleep(Duration::from_millis(10));
        }
        let response = service
            .submit(SynthesisRequest::new(catalog::steane()))
            .unwrap();
        assert_eq!(response.provenance, Provenance::Cached);
    }
}
