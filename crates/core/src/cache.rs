//! Reusable single-fault enumeration cache.
//!
//! Exhaustive single-fault enumeration — executing the protocol once per
//! possible fault — is the most expensive non-SAT step of the synthesis
//! pipeline, and the pipeline historically repeated it for the *same* partial
//! protocol (once to decide whether a second layer is expected, once to
//! collect the first layer's dangerous errors). [`FaultCache`] memoizes the
//! records keyed by a structural fingerprint of the protocol, so each
//! distinct partial protocol is enumerated exactly once per synthesis run.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::ftcheck::{enumerate_single_fault_records, SingleFaultRecord};
use crate::protocol::DeterministicProtocol;

/// Memoized single-fault enumeration for the protocol under construction.
#[derive(Debug, Default)]
pub struct FaultCache {
    fingerprint: Option<u64>,
    records: Vec<SingleFaultRecord>,
    hits: u64,
    misses: u64,
}

impl FaultCache {
    /// An empty cache.
    pub fn new() -> Self {
        FaultCache::default()
    }

    /// The single-fault records of `protocol`, recomputing only when the
    /// protocol changed structurally since the previous call.
    pub fn records(&mut self, protocol: &DeterministicProtocol) -> &[SingleFaultRecord] {
        let fingerprint = structural_fingerprint(protocol);
        if self.fingerprint == Some(fingerprint) {
            self.hits += 1;
        } else {
            self.records = enumerate_single_fault_records(protocol);
            self.fingerprint = Some(fingerprint);
            self.misses += 1;
        }
        &self.records
    }

    /// Number of avoided enumerations.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of performed enumerations.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Hashes the `Debug` rendering of a value into a 64-bit fingerprint.
///
/// The `Debug` renderings used with this helper are faithful, deterministic
/// serializations of their content (maps are ordered `BTreeMap`s, derived
/// formatting covers every field). The text is streamed straight into the
/// hasher — no intermediate string — and costs microseconds. Besides the
/// fault cache below, this backs the code + options fingerprinting of
/// [`crate::store::ReportKey`].
pub(crate) fn debug_fingerprint<T: std::fmt::Debug + ?Sized>(value: &T) -> u64 {
    use std::fmt::Write;

    /// Feeds formatted output directly into a [`Hasher`].
    struct HashWriter<'a>(&'a mut DefaultHasher);

    impl Write for HashWriter<'_> {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            s.hash(self.0);
            Ok(())
        }
    }

    let mut hasher = DefaultHasher::new();
    write!(HashWriter(&mut hasher), "{value:?}").expect("hashing writer never fails");
    hasher.finish()
}

/// A fingerprint of everything the fault enumeration depends on: the
/// preparation circuit and the layers (gadgets, flags, branches, recoveries).
fn structural_fingerprint(protocol: &DeterministicProtocol) -> u64 {
    debug_fingerprint(&(&protocol.prep.circuit, &protocol.layers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadget::MeasurementGadget;
    use crate::prep::{synthesize_prep, PrepOptions};
    use crate::protocol::VerificationLayer;
    use crate::ZeroStateContext;
    use dftsp_code::catalog;
    use dftsp_pauli::PauliKind;

    fn bare_protocol() -> DeterministicProtocol {
        let code = catalog::steane();
        DeterministicProtocol {
            context: ZeroStateContext::new(code.clone()),
            prep: synthesize_prep(&code, &PrepOptions::default()),
            layers: Vec::new(),
        }
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let protocol = bare_protocol();
        let mut cache = FaultCache::new();
        let first_len = cache.records(&protocol).len();
        let second_len = cache.records(&protocol).len();
        assert_eq!(first_len, second_len);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn structural_changes_invalidate_the_cache() {
        let mut protocol = bare_protocol();
        let mut cache = FaultCache::new();
        let bare_count = cache.records(&protocol).len();

        let logical_z = protocol
            .context
            .code()
            .logicals(PauliKind::Z)
            .row(0)
            .clone();
        protocol.layers.push(VerificationLayer::new(
            PauliKind::X,
            vec![MeasurementGadget::new(logical_z, PauliKind::Z)],
        ));
        let layered_count = cache.records(&protocol).len();
        assert!(layered_count > bare_count, "more locations, more faults");
        assert_eq!(cache.misses(), 2);

        // The cached result matches a fresh enumeration of the same protocol.
        assert_eq!(
            cache.records(&protocol).len(),
            enumerate_single_fault_records(&protocol).len()
        );
        assert_eq!(cache.hits(), 1);
    }
}
