//! Reusable single-fault enumeration cache.
//!
//! Exhaustive single-fault enumeration — executing the protocol once per
//! possible fault — is the most expensive non-SAT step of the synthesis
//! pipeline, and the pipeline historically repeated it for the *same* partial
//! protocol (once to decide whether a second layer is expected, once to
//! collect the first layer's dangerous errors). [`FaultCache`] memoizes the
//! records keyed by a structural fingerprint of the protocol, so each
//! distinct partial protocol is enumerated exactly once per synthesis run.
//!
//! The cache keeps one slot per CSS sector ([`PauliKind`]): the X and Z
//! stages of one code work on structurally different partial protocols (the
//! Z stage sees the X layer and its branches), so a single shared slot would
//! make the sectors evict each other's records. With per-sector slots the X
//! correction stage can keep its branch-less records warm while the Z stage
//! populates its own slot — a prerequisite for running both sectors
//! concurrently.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use dftsp_pauli::PauliKind;

use crate::ftcheck::{enumerate_single_fault_records, SingleFaultRecord};
use crate::protocol::DeterministicProtocol;

/// One memoized enumeration: the fingerprint of the protocol it belongs to
/// and its records.
#[derive(Debug, Default)]
struct SectorSlot {
    fingerprint: Option<u64>,
    records: Vec<SingleFaultRecord>,
}

/// Memoized single-fault enumeration for the protocol under construction,
/// with one independent slot per CSS sector.
#[derive(Debug, Default)]
pub struct FaultCache {
    slots: [SectorSlot; 2],
    hits: u64,
    misses: u64,
}

fn slot_index(sector: PauliKind) -> usize {
    match sector {
        PauliKind::X => 0,
        PauliKind::Z => 1,
    }
}

impl FaultCache {
    /// An empty cache.
    pub fn new() -> Self {
        FaultCache::default()
    }

    /// The single-fault records of `protocol`, recomputing only when the
    /// protocol changed structurally since the previous call. Equivalent to
    /// [`Self::records_for`] on the X-sector slot.
    pub fn records(&mut self, protocol: &DeterministicProtocol) -> &[SingleFaultRecord] {
        self.records_for(PauliKind::X, protocol)
    }

    /// The single-fault records of `protocol` held in `sector`'s slot,
    /// recomputing only when the protocol differs structurally from the
    /// slot's previous query. Slots are independent: queries for one sector
    /// never evict the other's records.
    pub fn records_for(
        &mut self,
        sector: PauliKind,
        protocol: &DeterministicProtocol,
    ) -> &[SingleFaultRecord] {
        let fingerprint = structural_fingerprint(protocol);
        let slot = &mut self.slots[slot_index(sector)];
        if slot.fingerprint == Some(fingerprint) {
            self.hits += 1;
        } else {
            slot.records = enumerate_single_fault_records(protocol);
            slot.fingerprint = Some(fingerprint);
            self.misses += 1;
        }
        &slot.records
    }

    /// Number of avoided enumerations (summed over both sector slots).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of performed enumerations (summed over both sector slots).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Hashes the `Debug` rendering of a value into a 64-bit fingerprint.
///
/// The `Debug` renderings used with this helper are faithful, deterministic
/// serializations of their content (maps are ordered `BTreeMap`s, derived
/// formatting covers every field). The text is streamed straight into the
/// hasher — no intermediate string — and costs microseconds. Besides the
/// fault cache below, this backs the code + options fingerprinting of
/// [`crate::store::ReportKey`].
pub(crate) fn debug_fingerprint<T: std::fmt::Debug + ?Sized>(value: &T) -> u64 {
    use std::fmt::Write;

    /// Feeds formatted output directly into a [`Hasher`].
    struct HashWriter<'a>(&'a mut DefaultHasher);

    impl Write for HashWriter<'_> {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            s.hash(self.0);
            Ok(())
        }
    }

    let mut hasher = DefaultHasher::new();
    write!(HashWriter(&mut hasher), "{value:?}").expect("hashing writer never fails");
    hasher.finish()
}

/// A fingerprint of everything the fault enumeration depends on: the
/// preparation circuit and the layers (gadgets, flags, branches, recoveries).
fn structural_fingerprint(protocol: &DeterministicProtocol) -> u64 {
    debug_fingerprint(&(&protocol.prep.circuit, &protocol.layers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadget::MeasurementGadget;
    use crate::prep::{synthesize_prep, PrepOptions};
    use crate::protocol::VerificationLayer;
    use crate::ZeroStateContext;
    use dftsp_code::catalog;
    use dftsp_pauli::PauliKind;

    fn bare_protocol() -> DeterministicProtocol {
        let code = catalog::steane();
        DeterministicProtocol {
            context: ZeroStateContext::new(code.clone()),
            prep: synthesize_prep(&code, &PrepOptions::default()),
            layers: Vec::new(),
        }
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let protocol = bare_protocol();
        let mut cache = FaultCache::new();
        let first_len = cache.records(&protocol).len();
        let second_len = cache.records(&protocol).len();
        assert_eq!(first_len, second_len);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn structural_changes_invalidate_the_cache() {
        let mut protocol = bare_protocol();
        let mut cache = FaultCache::new();
        let bare_count = cache.records(&protocol).len();

        let logical_z = protocol
            .context
            .code()
            .logicals(PauliKind::Z)
            .row(0)
            .clone();
        protocol.layers.push(VerificationLayer::new(
            PauliKind::X,
            vec![MeasurementGadget::new(logical_z, PauliKind::Z)],
        ));
        let layered_count = cache.records(&protocol).len();
        assert!(layered_count > bare_count, "more locations, more faults");
        assert_eq!(cache.misses(), 2);

        // The cached result matches a fresh enumeration of the same protocol.
        assert_eq!(
            cache.records(&protocol).len(),
            enumerate_single_fault_records(&protocol).len()
        );
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn sector_slots_are_independent() {
        let mut layered = bare_protocol();
        let logical_z = layered.context.code().logicals(PauliKind::Z).row(0).clone();
        layered.layers.push(VerificationLayer::new(
            PauliKind::X,
            vec![MeasurementGadget::new(logical_z, PauliKind::Z)],
        ));
        let bare = bare_protocol();

        let mut cache = FaultCache::new();
        // X sector works on the bare protocol, Z sector on the layered one.
        let x_count = cache.records_for(PauliKind::X, &bare).len();
        let z_count = cache.records_for(PauliKind::Z, &layered).len();
        assert_eq!(cache.misses(), 2);
        // Re-queries hit their own slots — neither evicted the other.
        assert_eq!(cache.records_for(PauliKind::X, &bare).len(), x_count);
        assert_eq!(cache.records_for(PauliKind::Z, &layered).len(), z_count);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 2);
    }
}
