//! Minimal JSON reader/writer for the on-disk [`crate::store`] format.
//!
//! The offline `serde` shim is a no-op (it provides the trait names but no
//! serialization), so the JSON report store carries its own tiny codec. The
//! value model is deliberately restricted to what synthesis reports need:
//! objects, arrays, strings, booleans, `null` and *unsigned integers* (all
//! numeric report fields — counters, indices, nanosecond durations — are
//! unsigned, and integers round-trip exactly where floats would not).

use std::fmt::Write as _;

/// A parsed or to-be-written JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the only number form the store emits).
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved so output is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object value from key/value pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    pub fn as_num(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value to compact JSON text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text into a value.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", char::from(byte), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b) if b.is_ascii_digit() => {
            let start = *pos;
            while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
                *pos += 1;
            }
            let digits = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
            digits
                .parse::<u64>()
                .map(Json::Num)
                .map_err(|e| format!("invalid number at byte {start}: {e}"))
        }
        Some(b) => Err(format!("unexpected byte '{}' at {}", char::from(*b), *pos)),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(format!("invalid keyword at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "invalid \\u escape")?;
                        let value =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        out.push(char::from_u32(value).ok_or("invalid \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_value() {
        let value = Json::obj(vec![
            ("name", Json::Str("Steane [[7,1,3]]".to_string())),
            ("count", Json::Num(u64::MAX)),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::Num(0), Json::Str("a\"b\\c\n".to_string())]),
            ),
            ("empty_obj", Json::Obj(Vec::new())),
            ("empty_arr", Json::Arr(Vec::new())),
        ]);
        let text = value.to_text();
        assert_eq!(Json::parse(&text).unwrap(), value);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let parsed = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : \"\\u0041\" } ").unwrap();
        assert_eq!(parsed.get("b").and_then(Json::as_str), Some("A"));
        assert_eq!(
            parsed.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "\"x", "{\"a\":}", "123x", "nul", "-5", "1.5",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}
