//! Deterministic fault-tolerant state preparation for near-term quantum error
//! correction: automatic synthesis using Boolean satisfiability.
//!
//! This crate is the core of a from-scratch Rust reproduction of the DATE
//! 2025 paper by Schmid, Peham, Berent, Müller and Wille. Given a CSS code
//! with distance `d < 5` it synthesizes the complete *deterministic*
//! fault-tolerant preparation protocol for the logical all-zero state:
//!
//! 1. a (generally non-fault-tolerant) unitary preparation circuit
//!    ([`prep`]),
//! 2. verification measurements that detect every dangerous error a single
//!    circuit fault can cause ([`verify`]), optionally flagged against hook
//!    errors ([`gadget`]),
//! 3. for every verification outcome, a SAT-optimal *correction circuit* —
//!    additional stabilizer measurements plus a Pauli recovery — that converts
//!    the detected error into a correctable one ([`correct`]), removing the
//!    repeat-until-success loop of non-deterministic schemes.
//!
//! The public API is the [`SynthesisEngine`]: a session object configured via
//! [`EngineBuilder`] (preparation method, flag policy, measurement and SAT
//! conflict budgets, pluggable SAT backend, ladder mode, report store, worker
//! threads) whose [`synthesize`](SynthesisEngine::synthesize) runs the full
//! pipeline and returns a [`SynthesisReport`] — the protocol plus per-stage
//! SAT statistics, timings and branch counts. Whole code catalogs batch
//! through [`synthesize_all`](SynthesisEngine::synthesize_all) on worker
//! threads, and [`globally_optimize`](SynthesisEngine::globally_optimize)
//! explores all equivalent minimal verification circuits. The classic free
//! functions ([`synthesize_protocol`], [`globally_optimize`]) remain as thin
//! wrappers.
//!
//! Two layers of reuse make the engine fit for repeat traffic: the SAT
//! optimization ladders run on long-lived incremental solver sessions with
//! guarded, retractable cardinality bounds ([`LadderMode`]; the
//! fresh-backend-per-query path remains available for cross-checking), and a
//! persistent [`ReportStore`] ([`MemoryReportStore`] in-process,
//! [`JsonReportStore`] on disk, [`TieredStore`] layering a bounded memory
//! front over a disk back with deterministic LRU eviction) serves previously
//! synthesized reports bit-identically without any solving.
//!
//! # Serving API
//!
//! For many concurrent clients asking overlapping questions — the paper's
//! catalog-shaped workload — the request-oriented front end is
//! [`SynthesisService`]: typed [`SynthesisRequest`]s (code + options +
//! backend + [`Priority`] + [`CancellationToken`]) answered with
//! [`SynthesisResponse`]s that carry the report, its [`Provenance`]
//! (`Cached` / `Coalesced` / `Solved`) and queue/solve timings. Identical
//! in-flight requests are **coalesced**: N concurrent identical submissions
//! trigger exactly one SAT pipeline run whose report fans out bit-identically
//! to all waiters. Admission is bounded by
//! [`concurrency`](ServiceBuilder::concurrency) and deterministic (priority
//! first, submission order second), and a cancelled request is drained
//! without poisoning the shared solve. The engine's own
//! [`synthesize`](SynthesisEngine::synthesize) and
//! [`synthesize_all`](SynthesisEngine::synthesize_all) are thin wrappers over
//! a single-request service, so there is one serving code path
//! (`examples/service_demo.rs` walks through it):
//!
//! ```
//! use std::sync::Arc;
//! use dftsp::{MemoryReportStore, Provenance, SynthesisRequest, SynthesisService};
//! use dftsp_code::catalog;
//!
//! let service = SynthesisService::builder()
//!     .report_store(Arc::new(MemoryReportStore::new()))
//!     .concurrency(2)
//!     .build();
//! let first = service.submit(SynthesisRequest::new(catalog::steane()))?;
//! assert_eq!(first.provenance, Provenance::Solved);
//! let repeat = service.submit(SynthesisRequest::new(catalog::steane()))?;
//! assert_eq!(repeat.provenance, Provenance::Cached); // zero SAT work
//! # Ok::<(), dftsp::ServiceError>(())
//! ```
//!
//! ## Remote & sharded stores
//!
//! One process deduplicates; the [`remote`] module makes *processes*
//! deduplicate each other. A [`StoreServer`] exposes a
//! [`JsonReportStore`] directory over a length-prefixed, checksummed TCP
//! protocol (the [`remote::wire`] frames), and [`RemoteReportStore`] is a
//! [`ReportStore`] client for it — pooled connections, per-op timeouts,
//! bounded deterministic-backoff retries. Slot it behind
//! [`TieredStore::with_back`] and every service instance keeps its hot keys
//! in memory while cold keys fault in from the shared server; a server
//! outage *degrades to store misses* (counted on
//! [`RemoteReportStore::degraded`], warned on stderr) and synthesis re-solves
//! locally — a down store never fails a request. [`ShardedStore`] routes
//! each [`ReportKey`] to one of N backends by fingerprint, splitting the
//! keyspace across servers with zero coordination. For callers that must not
//! block, [`SynthesisService::submit_nonblocking`] returns a
//! [`ResponseHandle`] (`poll` / `try_take` / `wait`) over the same coalescing
//! scheduler, bit-identical to the blocking path
//! (`examples/remote_store_demo.rs` assembles the whole topology):
//!
//! ```
//! use std::sync::Arc;
//! use dftsp::{JsonReportStore, RemoteReportStore, ReportKey, ReportStore, StoreServer, TieredStore};
//! use dftsp_code::catalog;
//!
//! let dir = std::env::temp_dir().join(format!("dftsp-remote-doc-{}", std::process::id()));
//! let server = StoreServer::bind("127.0.0.1:0", Arc::new(JsonReportStore::new(&dir)?))?;
//! let remote = RemoteReportStore::connect(server.local_addr())?;
//! let key = ReportKey { code_name: "Steane".into(), fingerprint: 7 };
//! assert!(remote.load(&key, &catalog::steane()).is_none()); // cold store: a miss
//! assert_eq!(remote.misses(), 1);
//! // The production topology: per-process memory front, shared remote back.
//! let store = Arc::new(TieredStore::new(64).with_back(Arc::new(remote)));
//! # drop(store);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! ## Fault tolerance & replication
//!
//! The store stack treats *its own* failures with the same discipline the
//! paper applies to circuit faults: every failure mode is typed, counted,
//! and deterministically injectable. A [`FaultPlan`] is a seeded or scripted
//! schedule of [`FaultAction`]s — drop the connection, delay, corrupt frame
//! bytes, refuse with ERR, truncate the response, fail after N operations —
//! that is a pure function of its seed and the operation index, applied at
//! three seams: [`StoreServer::bind_faulty`] (wire-level), [`FaultyKv`]
//! (server storage) and [`FaultyStore`] (client store). For availability,
//! [`ReplicatedStore`] keeps N copies per key: writes fan out, reads fail
//! over in replica order, and each replica carries a circuit breaker
//! (tripped after [`ReplicaConfig::trip_after`] consecutive failures, held
//! open for a deterministic doubling schedule measured in operations, probed
//! half-open) driven through the fallible [`CheckedStore`] seam so a dead
//! replica is distinguishable from a cold one. A hit served by a later
//! replica is **read-repaired** onto earlier replicas that missed, so a
//! wiped server rejoining converges from ordinary traffic. Replica groups
//! compose under [`ShardedStore`]; `servebench --chaos` drives the whole
//! topology through a seeded fault schedule with a mid-run replica kill +
//! restart and asserts bit-identical responses
//! (`examples/chaos_demo.rs` is the runnable version):
//!
//! ```
//! use std::sync::Arc;
//! use dftsp::{
//!     BreakerState, CheckedStore, FaultAction, FaultPlan, FaultyStore, MemoryReportStore,
//!     ReplicaConfig, ReplicatedStore, ReportKey, ReportStore,
//! };
//! use dftsp_code::catalog;
//!
//! // A deterministic flaky replica: every operation fails, from op 0 on.
//! let flaky = Arc::new(FaultyStore::new(
//!     Arc::new(MemoryReportStore::new()),
//!     Arc::new(FaultPlan::fail_after(0, FaultAction::FailOp)),
//! ));
//! let healthy = Arc::new(MemoryReportStore::new());
//! let group = ReplicatedStore::with_config(
//!     vec![flaky as Arc<dyn CheckedStore>, healthy as Arc<dyn CheckedStore>],
//!     ReplicaConfig { trip_after: 1, hold_ops: 4, max_hold_ops: 16 },
//! )?;
//! let key = ReportKey { code_name: "Steane".into(), fingerprint: 7 };
//! // The flaky replica fails, the healthy one answers "miss": the load
//! // degrades to a miss, and the failure — not the miss — trips a breaker.
//! assert!(group.load(&key, &catalog::steane()).is_none());
//! assert_eq!(group.counters().breaker_trips, 1);
//! assert_eq!(group.health()[0].state, BreakerState::Open);
//! assert_eq!(group.health()[1].state, BreakerState::Closed);
//! # Ok::<(), dftsp::ReplicaError>(())
//! ```
//!
//! The synthesized [`DeterministicProtocol`] can be executed under arbitrary
//! circuit-level fault models ([`execute`]), checked exhaustively against the
//! strict fault-tolerance criterion ([`check_fault_tolerance`]), and
//! summarized in the metrics format of the paper's Table I
//! ([`ProtocolMetrics`]).
//!
//! # Workloads
//!
//! The pipeline prepares more than the paper's distance-3 zero states. A
//! [`WorkloadKind`] names *what* a request prepares:
//!
//! * [`WorkloadKind::ZeroStatePrep`] (the default) prepares the logical
//!   all-zero state of the request's code — every call site that predates
//!   the enum behaves exactly as before.
//! * [`WorkloadKind::CatStatePrep`] prepares an n-qubit cat (GHZ) state.
//!   A cat state is the zero state of the "cat code" whose X stabilizer is
//!   the all-ones row and whose Z stabilizers are neighbor pairs
//!   ([`dftsp_code::catalog::cat_state`]), so the workload substitutes that
//!   code and reuses the entire encoder/verification/correction machinery
//!   unchanged. The workload rides through [`SynthesisRequest`]s, is
//!   stamped on the [`SynthesisReport`], and is fingerprinted into the
//!   [`ReportKey`], so cat-state reports cache separately from zero-state
//!   reports for the same request code.
//!
//! Orthogonally, the *order* of fault tolerance scales with distance: a
//! distance-d code calls for order t = (d − 1)/2 — every set of s ≤ t
//! faults may leave at most a reduced residual weight of s per CSS sector.
//! [`check_fault_tolerance_order`] checks exactly that by enumerating fault
//! *sets* up to size t over the fault-free execution path (the single-fault
//! check is its t = 1 specialization), and
//! [`target_order`](EngineBuilder::target_order) makes the engine *reach*
//! it: after the ordinary order-1 pipeline, the engine re-checks at the
//! target order and, for any violating fault sets, synthesizes additional
//! verification layers and order-aware corrections until the checker passes
//! (or fails honestly with [`SynthesisError::OrderNotReached`]). The
//! default stays order 1 on every code: the repair loop's exhaustive
//! fault-set passes are affordable for cat states and other small codes
//! but run to CPU-hours on the distance-5 catalog entries (`QR-17`,
//! `Surface-5`), which therefore synthesize at order 1 unless a higher
//! order is requested explicitly (see ROADMAP for the open scaling work):
//!
//! ```
//! use std::sync::Arc;
//! use dftsp::{
//!     check_fault_tolerance_order, MemoryReportStore, Provenance, SynthesisEngine,
//!     SynthesisRequest, SynthesisService, WorkloadKind,
//! };
//! use dftsp_code::catalog;
//!
//! // An engine targeting order-2 fault tolerance; the 4-qubit cat state
//! // reaches it.
//! let engine = SynthesisEngine::builder().target_order(2).build();
//! let report = engine.synthesize(&catalog::cat_state(4))?;
//! assert!(check_fault_tolerance_order(&report.protocol, 2).is_fault_tolerant());
//!
//! // The same preparation as a service workload: the request carries the
//! // *logical* ask (a 4-qubit cat state); the code substitution and report
//! // caching happen behind the key.
//! let service = SynthesisService::builder()
//!     .report_store(Arc::new(MemoryReportStore::new()))
//!     .build();
//! let request = SynthesisRequest::new(catalog::steane())
//!     .workload(WorkloadKind::CatStatePrep { size: 4 });
//! let response = service.submit(request)?;
//! assert_eq!(response.provenance, Provenance::Solved);
//! assert_eq!(response.report.workload, WorkloadKind::CatStatePrep { size: 4 });
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Quick start
//!
//! ```
//! use dftsp::{check_fault_tolerance, SynthesisEngine};
//! use dftsp_code::catalog;
//!
//! // Configure once, synthesize many: the engine owns the solver choice,
//! // the budgets and the thread pool.
//! let engine = SynthesisEngine::builder().threads(2).build();
//!
//! let report = engine.synthesize(&catalog::steane())?;
//! assert!(check_fault_tolerance(&report.protocol).is_fault_tolerant());
//! println!("{report}");
//! for stage in &report.stages {
//!     println!("  {}: {:?}, {} SAT calls", stage.stage, stage.time, stage.sat.calls);
//! }
//!
//! // Batched multi-code synthesis over worker threads.
//! let reports = engine.synthesize_all(&[catalog::steane(), catalog::surface3()]);
//! assert!(reports.iter().all(Result::is_ok));
//! # Ok::<(), dftsp::SynthesisError>(())
//! ```
//!
//! # Parallelism
//!
//! [`EngineBuilder::threads`] caps the total number of concurrent SAT
//! workers; every fan-out in the crate draws from that one budget. Three
//! levels exist, and they compose by *dividing* the budget rather than
//! multiplying worker counts:
//!
//! 1. **Per-branch corrections** — the independent correction problems of one
//!    layer run on scoped workers, each with a private [`SatSession`]
//!    (`correct::synthesize_corrections_batch`).
//! 2. **Verification ladders** — the per-`u` cover ladders of one
//!    verification search run concurrently, and each ladder speculatively
//!    probes a second bound on a sibling session; when a level fans out over
//!    `w` workers, each worker's nested fan-out receives `threads / w`
//!    (clamped to ≥ 1), so nesting never oversubscribes the budget.
//! 3. **Stage overlap** — while a layer's X-sector correction branches are
//!    synthesized, the Z-sector verification search already runs on the
//!    other half of the budget; [`SynthesisEngine::globally_optimize`]
//!    likewise evaluates all candidate verification circuits of a layer
//!    concurrently.
//!
//! Parallelism is an implementation detail, not a semantic knob: the
//! synthesized protocols, the per-stage reports and the merged [`SatStats`]
//! (everything except wall-clock times) are bit-identical at every thread
//! count. Workers return `(result, stats)` pairs that the owner absorbs in
//! input order, winners are chosen by deterministic `(cost, index)` rules,
//! and speculative work is either always performed (sibling ladder probes)
//! or discarded wholesale, never merged conditionally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod context;
pub mod correct;
mod engine;
pub mod ftcheck;
pub mod gadget;
pub mod global;
mod json;
pub mod metrics;
mod par;
mod perm;
pub mod prep;
pub mod protocol;
pub mod remote;
pub mod service;
pub mod store;
pub mod synthesis;
pub mod verify;
pub mod workload;

pub use cache::FaultCache;
pub use context::ZeroStateContext;
pub use correct::{CorrectionOptions, CorrectionProblem, CorrectionSolution};
pub use engine::{
    EngineBuilder, GlobalReport, SatSession, SatStats, Stage, StageReport, SynthesisEngine,
    SynthesisReport,
};
pub use ftcheck::{
    check_fault_tolerance, check_fault_tolerance_order, check_fault_tolerance_order_with,
    check_fault_tolerance_with, enumerate_single_fault_records, FaultSetViolation, FtCheckOptions,
    FtFault, FtOrderReport, FtReport, FtViolation, SingleFaultRecord,
};
pub use gadget::MeasurementGadget;
pub use global::{globally_optimize, GlobalOptions, GlobalResult};
pub use metrics::{LayerMetrics, ProtocolMetrics};
pub use prep::{synthesize_prep, PrepCircuit, PrepMethod, PrepOptions};
pub use protocol::{
    execute, BranchKey, CorrectionBranch, DeterministicProtocol, ExecutionRecord, FaultModel,
    FaultSet, NoFaults, SegmentId, SingleFault, VerificationLayer,
};
pub use remote::{
    BreakerState, FaultAction, FaultError, FaultPlan, FaultyKv, FaultyStore, RemoteConfigError,
    RemoteCounters, RemoteReportStore, RemoteStoreConfig, ReplicaConfig, ReplicaCounters,
    ReplicaError, ReplicaHealth, ReplicatedStore, ShardedStore, StoreServer, StoreServerStats,
    WireError, MAX_ERR_MESSAGE, MAX_RETRIES,
};
pub use service::{
    CancellationToken, Priority, Provenance, ResponseHandle, ServiceBuilder, ServiceError,
    ServiceStats, SynthesisRequest, SynthesisResponse, SynthesisService,
};
pub use store::{
    CheckedStore, JsonReportStore, MemoryReportStore, RawReportKv, ReportKey, ReportStore,
    StoreFault, TieredStore,
};
pub use synthesis::{
    synthesize_protocol, synthesize_protocol_with_prep, FlagPolicy, SynthesisError,
    SynthesisOptions,
};
pub use verify::{VerificationOptions, VerificationSolution};
pub use workload::WorkloadKind;

// Re-exported so downstream callers can select a backend and ladder mode
// without depending on `dftsp-sat` directly.
pub use dftsp_sat::{
    BackendChoice, LadderMode, LaneStats, PortfolioConfig, PortfolioLane, PortfolioStats,
};
