//! Deterministic fault-tolerant state preparation for near-term quantum error
//! correction: automatic synthesis using Boolean satisfiability.
//!
//! This crate is the core of a from-scratch Rust reproduction of the DATE
//! 2025 paper by Schmid, Peham, Berent, Müller and Wille. Given a CSS code
//! with distance `d < 5` it synthesizes the complete *deterministic*
//! fault-tolerant preparation protocol for the logical all-zero state:
//!
//! 1. a (generally non-fault-tolerant) unitary preparation circuit
//!    ([`prep`]),
//! 2. verification measurements that detect every dangerous error a single
//!    circuit fault can cause ([`verify`]), optionally flagged against hook
//!    errors ([`gadget`]),
//! 3. for every verification outcome, a SAT-optimal *correction circuit* —
//!    additional stabilizer measurements plus a Pauli recovery — that converts
//!    the detected error into a correctable one ([`correct`]), removing the
//!    repeat-until-success loop of non-deterministic schemes.
//!
//! The full pipeline is [`synthesize_protocol`]; [`globally_optimize`]
//! additionally explores all equivalent minimal verification circuits. The
//! synthesized [`DeterministicProtocol`] can be executed under arbitrary
//! circuit-level fault models ([`execute`]), checked exhaustively against the
//! strict fault-tolerance criterion ([`check_fault_tolerance`]), and summarized
//! in the metrics format of the paper's Table I ([`ProtocolMetrics`]).
//!
//! # Quick start
//!
//! ```
//! use dftsp::{check_fault_tolerance, synthesize_protocol, ProtocolMetrics, SynthesisOptions};
//! use dftsp_code::catalog;
//!
//! let code = catalog::steane();
//! let protocol = synthesize_protocol(&code, &SynthesisOptions::default())?;
//! assert!(check_fault_tolerance(&protocol).is_fault_tolerant());
//!
//! let metrics = ProtocolMetrics::from_protocol(&protocol);
//! println!("{metrics}");
//! # Ok::<(), dftsp::SynthesisError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
pub mod correct;
pub mod ftcheck;
pub mod gadget;
pub mod global;
pub mod metrics;
pub mod prep;
pub mod protocol;
pub mod synthesis;
pub mod verify;

pub use context::ZeroStateContext;
pub use correct::{CorrectionOptions, CorrectionProblem, CorrectionSolution};
pub use ftcheck::{check_fault_tolerance, enumerate_single_fault_records, FtReport, FtViolation};
pub use gadget::MeasurementGadget;
pub use global::{globally_optimize, GlobalOptions, GlobalResult};
pub use metrics::{LayerMetrics, ProtocolMetrics};
pub use prep::{synthesize_prep, PrepCircuit, PrepMethod, PrepOptions};
pub use protocol::{
    execute, BranchKey, CorrectionBranch, DeterministicProtocol, ExecutionRecord, FaultModel,
    NoFaults, SegmentId, SingleFault, VerificationLayer,
};
pub use synthesis::{
    synthesize_protocol, synthesize_protocol_with_prep, FlagPolicy, SynthesisError,
    SynthesisOptions,
};
pub use verify::{VerificationOptions, VerificationSolution};
