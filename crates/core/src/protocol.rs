//! The deterministic fault-tolerant state-preparation protocol and its
//! executor.
//!
//! A [`DeterministicProtocol`] is the full object synthesized by this crate
//! (Fig. 3 of the paper): the unitary preparation circuit, one or two
//! verification layers, and for every non-trivial verification outcome a
//! conditional correction branch consisting of additional stabilizer
//! measurements and an outcome-dependent Pauli recovery.
//!
//! The [`execute`] function runs the protocol on a Pauli-frame simulation
//! under an arbitrary [`FaultModel`]. The same executor backs
//!
//! * the exhaustive single-fault check of [`crate::ftcheck`],
//! * the error-set enumeration that drives correction synthesis, and
//! * the Monte-Carlo circuit-level noise simulations in `dftsp-noise`.

use std::collections::BTreeMap;

use dftsp_circuit::{enumerate_fault_sites, Circuit, FaultEffect, FaultSite, PauliTracker};
use dftsp_f2::BitVec;
use dftsp_pauli::{PauliKind, PauliString};

use crate::gadget::MeasurementGadget;
use crate::prep::PrepCircuit;
use crate::ZeroStateContext;

/// Identifies the verification outcome that selects a correction branch: the
/// syndrome bits of the layer's verification measurements and the flag bits
/// of its flagged measurements, packed little-endian into masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BranchKey {
    /// Verification syndrome bits (bit `i` = outcome of verification `i`).
    pub syndrome: u64,
    /// Flag bits (bit `i` = flag outcome of verification `i`; always 0 for
    /// unflagged measurements).
    pub flags: u64,
}

impl BranchKey {
    /// Builds a key from syndrome and flag bit vectors.
    ///
    /// # Panics
    ///
    /// Panics if either vector has more than 64 bits.
    pub fn new(syndrome: &BitVec, flags: &BitVec) -> Self {
        assert!(
            syndrome.len() <= 64 && flags.len() <= 64,
            "branch keys hold at most 64 bits"
        );
        BranchKey {
            syndrome: pack_bits(syndrome),
            flags: pack_bits(flags),
        }
    }

    /// The all-zero outcome (no correction necessary).
    pub fn trivial() -> Self {
        BranchKey::default()
    }

    /// Returns `true` if neither a syndrome nor a flag bit is set.
    pub fn is_trivial(&self) -> bool {
        self.syndrome == 0 && self.flags == 0
    }

    /// Returns `true` if any flag bit is set (hook-error branch).
    pub fn has_flag(&self) -> bool {
        self.flags != 0
    }
}

impl std::fmt::Display for BranchKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b={:b}/f={:b}", self.syndrome, self.flags)
    }
}

fn pack_bits(bits: &BitVec) -> u64 {
    bits.iter_ones().fold(0u64, |acc, i| acc | (1 << i))
}

/// A conditional correction executed when its [`BranchKey`] is observed.
#[derive(Debug, Clone)]
pub struct CorrectionBranch {
    /// The sector of data errors this branch corrects (the recovery is a pure
    /// Pauli of this kind).
    pub error_kind: PauliKind,
    /// Additional stabilizer measurements refining the syndrome. Executed
    /// unflagged: under the single-fault assumption the branch only runs after
    /// the fault has already occurred.
    pub measurements: Vec<MeasurementGadget>,
    /// Recovery supports indexed by the little-endian outcome mask of the
    /// additional measurements (`2^measurements.len()` entries).
    pub recoveries: Vec<BitVec>,
    /// Whether the protocol terminates after this branch (used for hook-error
    /// branches: a detected hook excludes any further error, step (e) of
    /// Fig. 3).
    pub terminates: bool,
}

impl CorrectionBranch {
    /// Total number of CNOTs in the branch's additional measurements.
    pub fn cnot_count(&self) -> usize {
        self.measurements
            .iter()
            .map(MeasurementGadget::cnot_count)
            .sum()
    }

    /// Number of ancilla qubits (= additional measurements) in the branch.
    pub fn ancilla_count(&self) -> usize {
        self.measurements.len()
    }
}

/// One verification layer of the protocol (step (b)/(c) of Fig. 3) together
/// with all of its conditional correction branches (steps (d)/(e)).
#[derive(Debug, Clone)]
pub struct VerificationLayer {
    /// The sector of data errors this layer verifies.
    pub error_kind: PauliKind,
    /// The verification measurements (possibly flagged).
    pub verifications: Vec<MeasurementGadget>,
    /// Correction branches keyed by the observed verification outcome.
    pub branches: BTreeMap<BranchKey, CorrectionBranch>,
}

impl VerificationLayer {
    /// A layer with the given verification measurements and no branches yet.
    pub fn new(error_kind: PauliKind, verifications: Vec<MeasurementGadget>) -> Self {
        VerificationLayer {
            error_kind,
            verifications,
            branches: BTreeMap::new(),
        }
    }

    /// Number of verification ancillas (one syndrome ancilla per measurement).
    pub fn verification_ancillas(&self) -> usize {
        self.verifications.len()
    }

    /// Number of flag ancillas.
    pub fn flag_ancillas(&self) -> usize {
        self.verifications.iter().filter(|g| g.is_flagged()).count()
    }

    /// Total verification CNOTs, split into (stabilizer CNOTs, flag CNOTs).
    pub fn verification_cnots(&self) -> (usize, usize) {
        let stab = self
            .verifications
            .iter()
            .map(MeasurementGadget::weight)
            .sum();
        let flag = 2 * self.flag_ancillas();
        (stab, flag)
    }
}

/// A complete deterministic fault-tolerant state-preparation protocol.
#[derive(Debug, Clone)]
pub struct DeterministicProtocol {
    /// The stabilizer context of the prepared `|0…0⟩_L` state.
    pub context: ZeroStateContext,
    /// The (generally non-fault-tolerant) unitary preparation circuit.
    pub prep: PrepCircuit,
    /// The verification/correction layers, in execution order.
    pub layers: Vec<VerificationLayer>,
}

impl DeterministicProtocol {
    /// Number of data qubits.
    pub fn num_qubits(&self) -> usize {
        self.context.num_qubits()
    }
}

/// Identifies which part of the protocol a fault location belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SegmentId {
    /// The unitary preparation circuit.
    Prep,
    /// Verification measurement `index` of layer `layer`.
    Verification {
        /// Layer index.
        layer: usize,
        /// Measurement index within the layer.
        index: usize,
    },
    /// Correction measurement `index` of the branch taken in layer `layer`.
    Correction {
        /// Layer index.
        layer: usize,
        /// Measurement index within the branch.
        index: usize,
    },
}

/// Source of circuit-level faults driving an execution.
///
/// The executor calls [`FaultModel::fault`] exactly once per fault location it
/// traverses, in execution order; returning `Some` injects that fault
/// immediately after the corresponding gate (or flips the corresponding
/// measurement outcome).
pub trait FaultModel {
    /// Decides the fault at the current location.
    ///
    /// `location` is the global index of the location in this execution,
    /// `segment` identifies the protocol part, `circuit` is the segment's
    /// circuit and `site` the location within it.
    fn fault(
        &mut self,
        location: usize,
        segment: SegmentId,
        circuit: &Circuit,
        site: &FaultSite,
    ) -> Option<FaultEffect>;
}

/// The fault-free execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultModel for NoFaults {
    fn fault(
        &mut self,
        _location: usize,
        _segment: SegmentId,
        _circuit: &Circuit,
        _site: &FaultSite,
    ) -> Option<FaultEffect> {
        None
    }
}

/// Injects one specific fault at one specific global location index.
#[derive(Debug, Clone)]
pub struct SingleFault {
    /// Global location index at which to inject.
    pub location: usize,
    /// The fault to inject.
    pub effect: FaultEffect,
}

impl FaultModel for SingleFault {
    fn fault(
        &mut self,
        location: usize,
        _segment: SegmentId,
        _circuit: &Circuit,
        _site: &FaultSite,
    ) -> Option<FaultEffect> {
        (location == self.location).then(|| self.effect.clone())
    }
}

/// Injects a fixed set of faults addressed by (segment, offset within the
/// segment).
///
/// Unlike [`SingleFault`], which addresses its fault by global location
/// index, a *set* of faults must stay meaningful when earlier faults change
/// the execution path: a triggered correction branch inserts extra fault
/// locations, shifting the global indices of everything behind it. Segments
/// of the fault-free path (preparation and verification measurements) run
/// exactly once per execution, so the pair (segment, offset within that
/// segment's location stream) is a stable address under path divergence.
///
/// The model tracks the current segment and resets its offset counter on
/// every segment change, so one `FaultSet` value must drive exactly one
/// execution (clone it to re-execute).
#[derive(Debug, Clone)]
pub struct FaultSet {
    faults: Vec<((SegmentId, usize), FaultEffect)>,
    current_segment: Option<SegmentId>,
    offset: usize,
}

impl FaultSet {
    /// A model injecting `effect` at `(segment, offset)` for every listed
    /// fault. Addresses must be unique.
    pub fn new(faults: Vec<((SegmentId, usize), FaultEffect)>) -> Self {
        FaultSet {
            faults,
            current_segment: None,
            offset: 0,
        }
    }
}

impl FaultModel for FaultSet {
    fn fault(
        &mut self,
        _location: usize,
        segment: SegmentId,
        _circuit: &Circuit,
        _site: &FaultSite,
    ) -> Option<FaultEffect> {
        if self.current_segment == Some(segment) {
            self.offset += 1;
        } else {
            self.current_segment = Some(segment);
            self.offset = 0;
        }
        let offset = self.offset;
        self.faults
            .iter()
            .find(|((s, o), _)| *s == segment && *o == offset)
            .map(|(_, effect)| effect.clone())
    }
}

/// Result of one protocol execution under a fault model.
#[derive(Debug, Clone)]
pub struct ExecutionRecord {
    /// Residual Pauli error on the data qubits at the end of the protocol
    /// (before any subsequent round of error correction).
    pub residual: PauliString,
    /// Observed verification syndrome and flag bits per layer.
    pub layer_outcomes: Vec<BranchKey>,
    /// The branch key looked up per layer (`None` when the trivial outcome
    /// was observed or the layer was skipped).
    pub branches_taken: Vec<Option<BranchKey>>,
    /// `true` if a hook branch terminated the protocol before its last layer.
    pub terminated_early: bool,
    /// Number of fault locations traversed during this execution.
    pub locations: usize,
}

/// Executes the protocol under the given fault model and returns the final
/// residual error together with the branching history.
///
/// # Examples
///
/// ```
/// use dftsp::{execute, synthesize_protocol, NoFaults, SynthesisOptions};
/// use dftsp_code::catalog;
///
/// let protocol = synthesize_protocol(&catalog::steane(), &SynthesisOptions::default()).unwrap();
/// let record = execute(&protocol, &mut NoFaults);
/// assert!(record.residual.is_identity());
/// assert!(!record.terminated_early);
/// ```
pub fn execute(protocol: &DeterministicProtocol, faults: &mut dyn FaultModel) -> ExecutionRecord {
    let n = protocol.num_qubits();
    let mut frame = PauliString::identity(n);
    let mut locations = 0usize;
    let mut layer_outcomes = Vec::with_capacity(protocol.layers.len());
    let mut branches_taken = Vec::with_capacity(protocol.layers.len());
    let mut terminated_early = false;

    // Preparation segment.
    run_segment(
        &protocol.prep.circuit,
        n,
        SegmentId::Prep,
        &mut frame,
        faults,
        &mut locations,
    );

    for (layer_index, layer) in protocol.layers.iter().enumerate() {
        if terminated_early {
            break;
        }
        let mut syndrome = BitVec::zeros(layer.verifications.len());
        let mut flags = BitVec::zeros(layer.verifications.len());
        for (gadget_index, gadget) in layer.verifications.iter().enumerate() {
            let circuit = gadget.to_circuit();
            let outcomes = run_segment(
                &circuit,
                n,
                SegmentId::Verification {
                    layer: layer_index,
                    index: gadget_index,
                },
                &mut frame,
                faults,
                &mut locations,
            );
            syndrome.set(gadget_index, outcomes.get(0));
            if gadget.is_flagged() {
                flags.set(gadget_index, outcomes.get(1));
            }
        }
        let key = BranchKey::new(&syndrome, &flags);
        layer_outcomes.push(key);

        if key.is_trivial() {
            branches_taken.push(None);
            continue;
        }
        let Some(branch) = layer.branches.get(&key) else {
            // Only reachable with two or more faults: no synthesized branch,
            // leave the state to the downstream error-correction round.
            branches_taken.push(None);
            continue;
        };
        branches_taken.push(Some(key));
        let mut outcome_mask = 0usize;
        for (measurement_index, gadget) in branch.measurements.iter().enumerate() {
            let circuit = gadget.to_circuit();
            let outcomes = run_segment(
                &circuit,
                n,
                SegmentId::Correction {
                    layer: layer_index,
                    index: measurement_index,
                },
                &mut frame,
                faults,
                &mut locations,
            );
            if outcomes.get(0) {
                outcome_mask |= 1 << measurement_index;
            }
        }
        let recovery = &branch.recoveries[outcome_mask];
        frame.mul_assign(&PauliString::from_kind(branch.error_kind, recovery.clone()));
        if branch.terminates {
            terminated_early = layer_index + 1 < protocol.layers.len();
            if terminated_early {
                // Record skipped layers as trivial for a uniform shape.
                break;
            }
        }
    }

    ExecutionRecord {
        residual: frame,
        layer_outcomes,
        branches_taken,
        terminated_early,
        locations,
    }
}

/// Runs one segment circuit, propagating the data-qubit Pauli frame through
/// it while injecting faults from the model, and returns the segment's
/// measurement-outcome flips.
///
/// The segment circuit acts on `num_data` data qubits plus any number of
/// ancillas (which are assumed to start fresh and be discarded afterwards);
/// the data frame is widened on entry and truncated on exit.
fn run_segment(
    circuit: &Circuit,
    num_data: usize,
    segment: SegmentId,
    data_frame: &mut PauliString,
    faults: &mut dyn FaultModel,
    locations: &mut usize,
) -> BitVec {
    let width = circuit.num_qubits();
    debug_assert!(width >= num_data);
    let mut tracker = PauliTracker::new(circuit);
    // Widen the incoming data frame to the segment width.
    let mut incoming = PauliString::identity(width);
    for q in 0..num_data {
        incoming.set(q, data_frame.get(q));
    }
    tracker.inject(&incoming);

    let sites = enumerate_fault_sites(circuit);
    for (gate_index, site) in sites.iter().enumerate() {
        tracker.run(gate_index..gate_index + 1);
        if let Some(effect) = faults.fault(*locations, segment, circuit, site) {
            match effect {
                FaultEffect::Pauli(p) => {
                    assert_eq!(
                        p.num_qubits(),
                        width,
                        "fault must act on the segment's qubits"
                    );
                    tracker.inject(&p);
                }
                FaultEffect::MeasurementFlip(bit) => tracker.flip_measurement(bit),
            }
        }
        *locations += 1;
    }
    let (frame, flips) = tracker.into_parts();
    let mut truncated = PauliString::identity(num_data);
    for q in 0..num_data {
        truncated.set(q, frame.get(q));
    }
    *data_frame = truncated;
    flips
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftsp_code::catalog;
    use dftsp_pauli::Pauli;

    use crate::prep::{synthesize_prep, PrepOptions};

    /// A protocol with a single unflagged verification layer and no branches,
    /// built directly for executor unit tests (full synthesis is exercised in
    /// the pipeline tests).
    fn bare_steane_protocol() -> DeterministicProtocol {
        let code = catalog::steane();
        let context = ZeroStateContext::new(code.clone());
        let prep = synthesize_prep(&code, &PrepOptions::default());
        let logical_z = code.logicals(PauliKind::Z).row(0).clone();
        let layer = VerificationLayer::new(
            PauliKind::X,
            vec![MeasurementGadget::new(logical_z, PauliKind::Z)],
        );
        DeterministicProtocol {
            context,
            prep,
            layers: vec![layer],
        }
    }

    #[test]
    fn noiseless_execution_is_clean() {
        let protocol = bare_steane_protocol();
        let record = execute(&protocol, &mut NoFaults);
        assert!(record.residual.is_identity());
        assert_eq!(record.layer_outcomes, vec![BranchKey::trivial()]);
        assert_eq!(record.branches_taken, vec![None]);
        assert!(!record.terminated_early);
        // Locations: every prep gate plus every verification-gadget gate.
        let expected =
            protocol.prep.circuit.len() + protocol.layers[0].verifications[0].to_circuit().len();
        assert_eq!(record.locations, expected);
    }

    #[test]
    fn single_fault_location_count_is_stable() {
        let protocol = bare_steane_protocol();
        let clean = execute(&protocol, &mut NoFaults);
        // A fault at the very first location (a prep-circuit gate) does not
        // change the number of traversed locations when no branch exists.
        let effect = FaultEffect::Pauli(PauliString::single(7, protocol.prep.seeds[0], Pauli::X));
        let mut model = SingleFault {
            location: 0,
            effect,
        };
        let record = execute(&protocol, &mut model);
        assert_eq!(record.locations, clean.locations);
    }

    #[test]
    fn prep_fault_spreads_through_final_cnot() {
        let protocol = bare_steane_protocol();
        // An X error on the control of the last prep CNOT spreads to a
        // weight-two error which the logical-Z verification must detect.
        let prep_len = protocol.prep.circuit.len();
        let last_cnot_index = (0..prep_len)
            .rev()
            .find(|&i| {
                matches!(
                    protocol.prep.circuit.gates()[i],
                    dftsp_circuit::Gate::Cnot { .. }
                )
            })
            .expect("prep has CNOTs");
        let control = match protocol.prep.circuit.gates()[last_cnot_index] {
            dftsp_circuit::Gate::Cnot { control, .. } => control,
            _ => unreachable!(),
        };
        // Inject right before the last CNOT by faulting the preceding location.
        let mut model = SingleFault {
            location: last_cnot_index - 1,
            effect: FaultEffect::Pauli(PauliString::single(7, control, Pauli::X)),
        };
        let record = execute(&protocol, &mut model);
        // The X spreads through the final CNOT onto exactly two data qubits.
        assert_eq!(record.residual.x_part().weight(), 2);
        assert_eq!(record.layer_outcomes.len(), 1);
    }

    #[test]
    fn measurement_flip_fault_sets_syndrome_without_residual() {
        let protocol = bare_steane_protocol();
        let prep_len = protocol.prep.circuit.len();
        let gadget_circuit = protocol.layers[0].verifications[0].to_circuit();
        // The syndrome-ancilla measurement is the last gate of the gadget.
        let meas_location = prep_len + gadget_circuit.len() - 1;
        let mut model = SingleFault {
            location: meas_location,
            effect: FaultEffect::MeasurementFlip(0),
        };
        let record = execute(&protocol, &mut model);
        assert!(record.residual.is_identity());
        assert_eq!(record.layer_outcomes[0].syndrome, 1);
    }

    #[test]
    fn branch_recovery_is_applied() {
        // Attach a branch that applies a fixed X recovery whenever the
        // verification fires, then force the verification to fire with a
        // measurement flip: the recovery must show up in the residual.
        let mut protocol = bare_steane_protocol();
        let recovery = BitVec::unit(7, 3);
        protocol.layers[0].branches.insert(
            BranchKey {
                syndrome: 1,
                flags: 0,
            },
            CorrectionBranch {
                error_kind: PauliKind::X,
                measurements: Vec::new(),
                recoveries: vec![recovery.clone()],
                terminates: false,
            },
        );
        let prep_len = protocol.prep.circuit.len();
        let gadget_len = protocol.layers[0].verifications[0].to_circuit().len();
        let mut model = SingleFault {
            location: prep_len + gadget_len - 1,
            effect: FaultEffect::MeasurementFlip(0),
        };
        let record = execute(&protocol, &mut model);
        assert_eq!(
            record.branches_taken,
            vec![Some(BranchKey {
                syndrome: 1,
                flags: 0
            })]
        );
        assert_eq!(record.residual.x_part(), &recovery);
    }

    #[test]
    fn fault_set_addresses_match_single_fault_on_the_fault_free_path() {
        let protocol = bare_steane_protocol();
        let effect = FaultEffect::Pauli(PauliString::single(7, protocol.prep.seeds[0], Pauli::X));
        // Prep is the first segment, so (Prep, k) coincides with global
        // location k.
        let single = execute(
            &protocol,
            &mut SingleFault {
                location: 3,
                effect: effect.clone(),
            },
        );
        let set = execute(
            &protocol,
            &mut FaultSet::new(vec![((SegmentId::Prep, 3), effect)]),
        );
        assert_eq!(single.residual, set.residual);
        assert_eq!(single.layer_outcomes, set.layer_outcomes);

        // A verification-segment address resets its offset at the segment
        // boundary: (Verification, 0) is global location prep_len.
        let prep_len = protocol.prep.circuit.len();
        let flip = FaultEffect::MeasurementFlip(0);
        let single = execute(
            &protocol,
            &mut SingleFault {
                location: prep_len + protocol.layers[0].verifications[0].to_circuit().len() - 1,
                effect: flip.clone(),
            },
        );
        let gadget_len = protocol.layers[0].verifications[0].to_circuit().len();
        let set = execute(
            &protocol,
            &mut FaultSet::new(vec![(
                (
                    SegmentId::Verification { layer: 0, index: 0 },
                    gadget_len - 1,
                ),
                flip,
            )]),
        );
        assert_eq!(single.layer_outcomes, set.layer_outcomes);
    }

    #[test]
    fn fault_set_injects_multiple_faults() {
        let protocol = bare_steane_protocol();
        let q = protocol.prep.seeds[0];
        let effect = FaultEffect::Pauli(PauliString::single(7, q, Pauli::X));
        // The same X twice at different prep locations with no CNOT in
        // between acting on q would cancel; instead check that two
        // measurement flips of the same outcome cancel exactly.
        let gadget_len = protocol.layers[0].verifications[0].to_circuit().len();
        let seg = SegmentId::Verification { layer: 0, index: 0 };
        let record = execute(
            &protocol,
            &mut FaultSet::new(vec![
                ((seg, gadget_len - 1), FaultEffect::MeasurementFlip(0)),
                ((seg, gadget_len - 2), FaultEffect::MeasurementFlip(0)),
            ]),
        );
        assert!(record.layer_outcomes[0].is_trivial());
        // And that a prep fault and a measurement flip both land: against the
        // single-fault run the residual is unchanged (no branches attached)
        // while the syndrome bit is flipped on top.
        let single = execute(
            &protocol,
            &mut SingleFault {
                location: 0,
                effect: effect.clone(),
            },
        );
        let record = execute(
            &protocol,
            &mut FaultSet::new(vec![
                ((SegmentId::Prep, 0), effect),
                ((seg, gadget_len - 1), FaultEffect::MeasurementFlip(0)),
            ]),
        );
        assert_eq!(record.residual, single.residual);
        assert_eq!(
            record.layer_outcomes[0].syndrome,
            single.layer_outcomes[0].syndrome ^ 1
        );
    }

    #[test]
    fn branch_key_packing() {
        let syndrome = BitVec::from_indices(3, &[0, 2]);
        let flags = BitVec::from_indices(3, &[1]);
        let key = BranchKey::new(&syndrome, &flags);
        assert_eq!(key.syndrome, 0b101);
        assert_eq!(key.flags, 0b010);
        assert!(!key.is_trivial());
        assert!(key.has_flag());
        assert!(BranchKey::trivial().is_trivial());
        assert!(!key.to_string().is_empty());
    }
}
