//! The stabilizer structure of the prepared logical zero state.

use dftsp_code::{reduced_weight, CssCode};
use dftsp_f2::{BitMatrix, BitVec};
use dftsp_pauli::PauliKind;

/// Stabilizer structure of the logical all-zero state `|0…0⟩_L` of a CSS code.
///
/// Synthesis of verification and correction circuits for state preparation
/// works with the stabilizer group of the *prepared state*, which is larger
/// than the code's stabilizer group: `|0…0⟩_L` is additionally stabilized by
/// every logical Z operator. Two consequences drive the whole pipeline:
///
/// * **Measurable operators.** To detect X errors one may measure any Z-type
///   operator that stabilizes the state — products of Z-type code stabilizers
///   *and* logical Z operators (the paper's weight-3 Steane verification is
///   the logical Z itself). To detect Z errors only X-type code stabilizers
///   are available (logical X does not stabilize `|0⟩_L`).
/// * **Residual-error equivalence.** A residual X error matters modulo the
///   X-type code stabilizers; a residual Z error matters modulo the Z-type
///   stabilizers *and* logical Z, because a logical Z acts trivially on
///   `|0…0⟩_L`.
///
/// # Examples
///
/// ```
/// use dftsp::ZeroStateContext;
/// use dftsp_code::catalog;
/// use dftsp_f2::BitVec;
/// use dftsp_pauli::PauliKind;
///
/// let ctx = ZeroStateContext::new(catalog::steane());
/// // The logical Z (weight 3) is measurable for X-error detection.
/// assert_eq!(ctx.measurable_group(PauliKind::X).num_rows(), 4);
/// // A weight-2 X error is dangerous, a weight-1 X error is not.
/// assert!(ctx.is_dangerous(PauliKind::X, &BitVec::from_indices(7, &[0, 1])));
/// assert!(!ctx.is_dangerous(PauliKind::X, &BitVec::unit(7, 0)));
/// ```
#[derive(Debug, Clone)]
pub struct ZeroStateContext {
    code: CssCode,
    /// Z-type stabilizers of |0…0⟩_L: rows of H_Z plus logical Z representatives.
    z_state_group: BitMatrix,
    /// X-type stabilizers of |0…0⟩_L: rows of H_X.
    x_state_group: BitMatrix,
}

impl ZeroStateContext {
    /// Builds the context for the logical all-zero state of `code`.
    pub fn new(code: CssCode) -> Self {
        let z_state_group = code
            .stabilizers(PauliKind::Z)
            .vstack(code.logicals(PauliKind::Z));
        let x_state_group = code.stabilizers(PauliKind::X).clone();
        ZeroStateContext {
            code,
            z_state_group,
            x_state_group,
        }
    }

    /// Returns the underlying code.
    pub fn code(&self) -> &CssCode {
        &self.code
    }

    /// Returns the number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.code.num_qubits()
    }

    /// Returns the generators of the group of operators that stabilize
    /// `|0…0⟩_L` and can therefore be measured without disturbing the state to
    /// *detect errors of the given kind*.
    ///
    /// X errors are detected by Z-type operators (code Z stabilizers and
    /// logical Z), Z errors by X-type code stabilizers.
    pub fn measurable_group(&self, error_kind: PauliKind) -> &BitMatrix {
        match error_kind {
            PauliKind::X => &self.z_state_group,
            PauliKind::Z => &self.x_state_group,
        }
    }

    /// Returns the generators of the group modulo which a residual error of
    /// the given kind is equivalent on `|0…0⟩_L`.
    ///
    /// Residual X errors are reduced modulo the X-type code stabilizers;
    /// residual Z errors modulo the Z-type stabilizers *and* logical Z.
    pub fn reduction_group(&self, error_kind: PauliKind) -> &BitMatrix {
        match error_kind {
            PauliKind::X => &self.x_state_group,
            PauliKind::Z => &self.z_state_group,
        }
    }

    /// Returns the state-stabilizer-reduced weight of a residual error of the
    /// given kind.
    ///
    /// # Panics
    ///
    /// Panics if `error.len()` differs from the number of qubits.
    pub fn reduced_weight(&self, error_kind: PauliKind, error: &BitVec) -> usize {
        reduced_weight(self.reduction_group(error_kind), error)
    }

    /// Returns `true` if a residual error of the given kind is *dangerous*:
    /// its state-stabilizer-reduced weight is at least 2, so a single such
    /// error already violates the strict fault-tolerance condition for a
    /// distance-3 or distance-4 code.
    pub fn is_dangerous(&self, error_kind: PauliKind, error: &BitVec) -> bool {
        self.reduced_weight(error_kind, error) >= 2
    }

    /// Returns the syndrome of a residual error of the given kind under the
    /// measurable group: one parity bit per generator returned by
    /// [`ZeroStateContext::measurable_group`].
    pub fn state_syndrome(&self, error_kind: PauliKind, error: &BitVec) -> BitVec {
        self.measurable_group(error_kind).mul_vec(error)
    }

    /// Returns `true` if the error is undetectable by every operator of the
    /// measurable group yet still dangerous — i.e. the error acts as a
    /// logical operator on the prepared state. Such errors cannot be caught
    /// by any verification measurement.
    pub fn is_undetectable_logical(&self, error_kind: PauliKind, error: &BitVec) -> bool {
        self.state_syndrome(error_kind, error).is_zero() && self.is_dangerous(error_kind, error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftsp_code::catalog;

    #[test]
    fn steane_measurable_groups() {
        let ctx = ZeroStateContext::new(catalog::steane());
        // 3 Z stabilizers + 1 logical Z for X-error detection.
        assert_eq!(ctx.measurable_group(PauliKind::X).num_rows(), 4);
        // 3 X stabilizers for Z-error detection.
        assert_eq!(ctx.measurable_group(PauliKind::Z).num_rows(), 3);
        assert_eq!(ctx.num_qubits(), 7);
        assert_eq!(ctx.code().name(), "Steane");
    }

    #[test]
    fn logical_z_is_not_dangerous_on_zero_state() {
        let code = catalog::steane();
        let lz = code.logicals(PauliKind::Z).row(0).clone();
        let ctx = ZeroStateContext::new(code);
        // As a Z error the logical Z acts trivially on |0⟩_L.
        assert_eq!(ctx.reduced_weight(PauliKind::Z, &lz), 0);
        assert!(!ctx.is_dangerous(PauliKind::Z, &lz));
    }

    #[test]
    fn logical_x_is_dangerous_but_detectable_on_zero_state() {
        // A logical X flips |0⟩_L to |1⟩_L: it is dangerous, but because the
        // logical Z stabilizes |0⟩_L and anticommutes with it, it *is*
        // detectable by a state-stabilizer measurement (unlike in the plain
        // code picture, where logical operators are undetectable).
        let code = catalog::steane();
        let lx = code.logicals(PauliKind::X).row(0).clone();
        let ctx = ZeroStateContext::new(code);
        assert!(ctx.is_dangerous(PauliKind::X, &lx));
        assert!(!ctx.state_syndrome(PauliKind::X, &lx).is_zero());
        assert!(!ctx.is_undetectable_logical(PauliKind::X, &lx));
    }

    #[test]
    fn weight_two_x_error_is_dangerous_and_detectable() {
        let ctx = ZeroStateContext::new(catalog::steane());
        let e = BitVec::from_indices(7, &[0, 1]);
        assert!(ctx.is_dangerous(PauliKind::X, &e));
        assert!(!ctx.state_syndrome(PauliKind::X, &e).is_zero());
        assert!(!ctx.is_undetectable_logical(PauliKind::X, &e));
    }

    #[test]
    fn x_stabilizer_is_harmless() {
        let code = catalog::steane();
        let s = code.stabilizers(PauliKind::X).row(0).clone();
        let ctx = ZeroStateContext::new(code);
        assert_eq!(ctx.reduced_weight(PauliKind::X, &s), 0);
        assert!(ctx.state_syndrome(PauliKind::X, &s).is_zero());
        assert!(!ctx.is_undetectable_logical(PauliKind::X, &s));
    }

    #[test]
    fn shor_weight_two_z_error_within_block_is_harmless() {
        // On the Shor code, Z₁Z₂ is a stabilizer, so as a residual Z error it
        // is equivalent to the identity.
        let ctx = ZeroStateContext::new(catalog::shor());
        let e = BitVec::from_indices(9, &[0, 1]);
        assert_eq!(ctx.reduced_weight(PauliKind::Z, &e), 0);
        // The same two-qubit support as an X error is dangerous.
        assert!(ctx.is_dangerous(PauliKind::X, &e));
    }
}
