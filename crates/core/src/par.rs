//! Shared scoped-worker helper for the engine's two fan-out levels
//! (`SynthesisEngine::synthesize_all` across codes, per-branch correction
//! synthesis within one code).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Maps `f` over `items` on up to `workers` scoped threads and returns the
/// results in input order.
///
/// Indices are claimed in ascending order from a shared counter, so the
/// processed items always form a contiguous prefix. When `stop_on` returns
/// `true` for a produced result, workers stop claiming further indices
/// (fail-fast); every already-claimed item still runs to completion, so the
/// lowest-index stopping result is always present — callers scanning the
/// returned slots in order see the same first failure a serial run would.
/// Unprocessed slots are `None` and form a suffix; without an early stop
/// every slot is `Some`.
pub(crate) fn parallel_map_indexed<T, R, F, S>(
    items: &[T],
    workers: usize,
    f: F,
    stop_on: S,
) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    S: Fn(&R) -> bool + Sync,
{
    let workers = workers.min(items.len()).max(1);
    if workers <= 1 {
        let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
        for (index, item) in items.iter().enumerate() {
            let result = f(index, item);
            let stop = stop_on(&result);
            out.push(Some(result));
            if stop {
                break;
            }
        }
        out.resize_with(items.len(), || None);
        return out;
    }

    let next = AtomicUsize::new(0);
    let stopped = AtomicBool::new(false);
    let (sender, receiver) = std::sync::mpsc::channel();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let sender = sender.clone();
            let next = &next;
            let stopped = &stopped;
            let f = &f;
            let stop_on = &stop_on;
            scope.spawn(move || loop {
                if stopped.load(Ordering::Relaxed) {
                    break;
                }
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= items.len() {
                    break;
                }
                let result = f(index, &items[index]);
                if stop_on(&result) {
                    stopped.store(true, Ordering::Relaxed);
                }
                sender
                    .send((index, result))
                    .expect("receiver outlives the worker scope");
            });
        }
    });
    drop(sender);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (index, result) in receiver {
        slots[index] = Some(result);
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..40).collect();
        for workers in [1, 4] {
            let results = parallel_map_indexed(&items, workers, |_, &x| x * 2, |_| false);
            let values: Vec<usize> = results.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(values, (0..40).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn early_stop_keeps_the_first_stopping_result() {
        let items: Vec<usize> = (0..64).collect();
        for workers in [1, 4] {
            let results = parallel_map_indexed(&items, workers, |_, &x| x, |&r| r == 9);
            // Everything before the stopping item was claimed first and is
            // present; the stopping result itself is always present.
            for (i, slot) in results.iter().enumerate().take(10) {
                assert_eq!(slot, &Some(i), "workers={workers}");
            }
            // The unprocessed tail is a (possibly empty) None suffix.
            let first_none = results.iter().position(|s| s.is_none());
            if let Some(start) = first_none {
                assert!(results[start..].iter().all(|s| s.is_none()));
            }
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u8> = Vec::new();
        let results = parallel_map_indexed(&items, 4, |_, &x| x, |_| false);
        assert!(results.is_empty());
    }
}
