//! Shared scoped-worker helpers for the engine's nested fan-out levels
//! (`SynthesisEngine::synthesize_all` across codes, X/Z sector overlap,
//! per-branch correction synthesis and per-`u` verification ladders within
//! one code).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Divides a thread budget of `total` between `outer` concurrent tasks,
/// returning the per-task inner budget.
///
/// Invariant: when at most `outer` tasks actually run concurrently (the
/// usual `workers = total.min(items)` clamp guarantees `outer <= total`
/// whenever `total` covers the fan-out), the product
/// `outer * divide_threads(total, outer)` never exceeds `total.max(outer)`
/// — nested fan-out levels never multiply past the configured budget.
/// Every task keeps at least one thread, so a budget of 1 degrades to
/// fully serial execution at every level.
pub(crate) fn divide_threads(total: usize, outer: usize) -> usize {
    (total / outer.max(1)).max(1)
}

/// Maps `f` over `items` on up to `workers` scoped threads and returns the
/// results in input order.
///
/// Indices are claimed in ascending order from a shared counter, so the
/// processed items always form a contiguous prefix. When `stop_on` returns
/// `true` for a produced result, workers stop claiming further indices
/// (fail-fast); every already-claimed item still runs to completion, so the
/// lowest-index stopping result is always present — callers scanning the
/// returned slots in order see the same first failure a serial run would.
/// Unprocessed slots are `None` and form a suffix; without an early stop
/// every slot is `Some`.
pub(crate) fn parallel_map_indexed<T, R, F, S>(
    items: &[T],
    workers: usize,
    f: F,
    stop_on: S,
) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    S: Fn(&R) -> bool + Sync,
{
    let workers = workers.min(items.len()).max(1);
    if workers <= 1 {
        let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
        for (index, item) in items.iter().enumerate() {
            let result = f(index, item);
            let stop = stop_on(&result);
            out.push(Some(result));
            if stop {
                break;
            }
        }
        out.resize_with(items.len(), || None);
        return out;
    }

    let next = AtomicUsize::new(0);
    let stopped = AtomicBool::new(false);
    let (sender, receiver) = std::sync::mpsc::channel();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let sender = sender.clone();
            let next = &next;
            let stopped = &stopped;
            let f = &f;
            let stop_on = &stop_on;
            scope.spawn(move || loop {
                if stopped.load(Ordering::Relaxed) {
                    break;
                }
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= items.len() {
                    break;
                }
                let result = f(index, &items[index]);
                if stop_on(&result) {
                    stopped.store(true, Ordering::Relaxed);
                }
                sender
                    .send((index, result))
                    .expect("receiver outlives the worker scope");
            });
        }
    });
    drop(sender);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (index, result) in receiver {
        slots[index] = Some(result);
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..40).collect();
        for workers in [1, 4] {
            let results = parallel_map_indexed(&items, workers, |_, &x| x * 2, |_| false);
            let values: Vec<usize> = results.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(values, (0..40).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn early_stop_keeps_the_first_stopping_result() {
        let items: Vec<usize> = (0..64).collect();
        for workers in [1, 4] {
            let results = parallel_map_indexed(&items, workers, |_, &x| x, |&r| r == 9);
            // Everything before the stopping item was claimed first and is
            // present; the stopping result itself is always present.
            for (i, slot) in results.iter().enumerate().take(10) {
                assert_eq!(slot, &Some(i), "workers={workers}");
            }
            // The unprocessed tail is a (possibly empty) None suffix.
            let first_none = results.iter().position(|s| s.is_none());
            if let Some(start) = first_none {
                assert!(results[start..].iter().all(|s| s.is_none()));
            }
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u8> = Vec::new();
        let results = parallel_map_indexed(&items, 4, |_, &x| x, |_| false);
        assert!(results.is_empty());
    }

    #[test]
    fn divide_threads_never_multiplies_past_the_budget() {
        for total in 0..=16 {
            for items in 0..=16 {
                // The clamp every fan-out site applies before dividing.
                let outer = total.min(items).max(1);
                let inner = divide_threads(total, outer);
                assert!(inner >= 1, "every task keeps a thread");
                assert!(
                    outer * inner <= total.max(outer),
                    "total={total} items={items}: {outer} outer x {inner} inner"
                );
            }
        }
        // A serial budget stays serial at every level.
        assert_eq!(divide_threads(1, 1), 1);
        assert_eq!(divide_threads(1, 2), 1);
        // An even split hands out the whole budget.
        assert_eq!(divide_threads(8, 2), 4);
        assert_eq!(divide_threads(8, 8), 1);
        // Degenerate outer counts are clamped instead of dividing by zero.
        assert_eq!(divide_threads(4, 0), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn map_contract_holds_for_any_workers_and_stop_position(
            len in 0..48usize,
            workers in 1..=8usize,
            stop_at in 0..64usize,
        ) {
            let items: Vec<usize> = (0..len).collect();
            let slots = parallel_map_indexed(
                &items,
                workers,
                |index, &x| {
                    assert_eq!(index, x);
                    x
                },
                |&r| r == stop_at,
            );
            prop_assert_eq!(slots.len(), len);
            // Processed items form a contiguous prefix; the rest is a
            // `None` suffix.
            let prefix = slots.iter().take_while(|s| s.is_some()).count();
            prop_assert!(slots[prefix..].iter().all(|s| s.is_none()));
            for (index, slot) in slots.iter().enumerate().take(prefix) {
                prop_assert_eq!(*slot, Some(index));
            }
            if stop_at < len {
                // The lowest-index stopping result is always present, and
                // everything before it ran.
                prop_assert!(prefix > stop_at);
            } else {
                // No early stop: every slot is populated.
                prop_assert_eq!(prefix, len);
            }
        }
    }
}
