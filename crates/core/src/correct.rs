//! SAT-based synthesis of correction circuits.
//!
//! This is the paper's central contribution (Sec. IV, problem box
//! "CORRECTION CIRCUIT SYNTHESIS"): given the set of errors that may be
//! present when a particular verification outcome is observed, find
//!
//! * a set of `u` additional stabilizer measurements `s₁, …, s_u` drawn from
//!   the group of operators that stabilize the prepared state, with bounded
//!   summed weight `Σ wt(sᵢ) ≤ v`, and
//! * one Pauli recovery per additional-measurement outcome,
//!
//! such that every error in the set, once the recovery selected by its
//! refined syndrome is applied, is equivalent to an error of weight at most
//! one modulo the state's stabilizer group.
//!
//! The decision problem for fixed `(u, v)` is encoded into CNF and solved
//! with the in-tree CDCL solver; optimality follows the paper by iterating
//! `u` upwards and minimizing `v` for the first feasible `u`.
//!
//! `synthesize_corrections_batch` fans the independent per-branch problems
//! out over scoped worker threads, each on a private [`SatSession`], and
//! merges the per-problem statistics back in input order — the template every
//! other fan-out in the crate follows (see the crate-level "Parallelism"
//! section of [`crate`]). Callers that fan out at an outer level (candidate
//! evaluation, X/Z stage overlap) pass a budget divided by
//! `par::divide_threads` so the nested levels never oversubscribe the
//! configured thread count.

use std::collections::HashMap;

use dftsp_f2::{BitMatrix, BitVec};
use dftsp_sat::{BoundedLadder, Encoder, LadderMode, Lit, Model, SatBackend, SolveResult};

use crate::engine::SatSession;

/// One instance of the correction-synthesis problem: a set of candidate
/// residual errors (all mapped to the same verification outcome) that must be
/// reduced to a bounded weight by a common, outcome-dependent recovery.
///
/// The default target weight is 1 per error (the paper's `d = 3` criterion).
/// Order-`t` synthesis assigns each error the size of the fault set that
/// produced it via [`CorrectionProblem::target_weights`], per the strict
/// generalized criterion of arXiv 2408.11894 (`s` faults → reduced residual
/// weight ≤ `s`).
#[derive(Debug, Clone)]
pub struct CorrectionProblem {
    /// Residual error supports (in the sector being corrected).
    pub errors: Vec<BitVec>,
    /// Per-error maximum acceptable reduced weight after recovery, parallel
    /// to `errors`. Empty means "weight ≤ 1 for every error"; entries beyond
    /// the provided prefix also default to 1.
    pub target_weights: Vec<usize>,
    /// Generators of the group of measurable operators (operators that
    /// stabilize the prepared state and anticommute with errors of this
    /// sector).
    pub measurable: BitMatrix,
    /// Generators of the group modulo which residual errors of this sector
    /// are equivalent on the prepared state.
    pub reduction: BitMatrix,
}

impl CorrectionProblem {
    /// Target weight of error `index` (1 unless overridden).
    fn target_weight(&self, index: usize) -> usize {
        self.target_weights.get(index).copied().unwrap_or(1)
    }
}

/// Options bounding the correction-synthesis search.
#[derive(Debug, Clone)]
pub struct CorrectionOptions {
    /// Maximum number of additional measurements per branch.
    pub max_measurements: usize,
    /// Conflict budget per SAT query (`None` = unlimited). Pathological
    /// instances then fail with [`CorrectionError::ConflictBudgetExceeded`]
    /// instead of hanging.
    pub max_conflicts: Option<u64>,
}

impl Default for CorrectionOptions {
    fn default() -> Self {
        CorrectionOptions {
            max_measurements: 3,
            max_conflicts: None,
        }
    }
}

/// A synthesized correction: additional measurements plus a recovery for each
/// of their outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrectionSolution {
    /// Support vectors of the additional measurements.
    pub measurements: Vec<BitVec>,
    /// Recovery supports indexed by the little-endian outcome mask of the
    /// additional measurements (`2^measurements.len()` entries).
    pub recoveries: Vec<BitVec>,
    /// Summed weight of the additional measurements (= data CNOT count).
    pub total_weight: usize,
}

impl CorrectionSolution {
    /// Number of additional measurements (= ancillas) in this correction.
    pub fn num_measurements(&self) -> usize {
        self.measurements.len()
    }
}

/// Errors reported by correction synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorrectionError {
    /// No correction was found within the measurement budget.
    BudgetExhausted,
    /// A SAT query exceeded the configured conflict budget.
    ConflictBudgetExceeded {
        /// The per-query conflict budget that was exhausted.
        max_conflicts: u64,
    },
}

impl std::fmt::Display for CorrectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorrectionError::BudgetExhausted => {
                write!(
                    f,
                    "no correction circuit found within the measurement budget"
                )
            }
            CorrectionError::ConflictBudgetExceeded { max_conflicts } => {
                write!(
                    f,
                    "a SAT query exceeded the budget of {max_conflicts} conflicts"
                )
            }
        }
    }
}

impl std::error::Error for CorrectionError {}

/// Synthesizes an optimal correction for the given problem: minimal number of
/// additional measurements first, minimal summed measurement weight second.
///
/// # Errors
///
/// Returns [`CorrectionError::BudgetExhausted`] if no solution exists within
/// `options.max_measurements` additional measurements.
///
/// # Examples
///
/// ```
/// use dftsp::correct::{synthesize_correction, CorrectionOptions, CorrectionProblem};
/// use dftsp::ZeroStateContext;
/// use dftsp_code::catalog;
/// use dftsp_f2::BitVec;
/// use dftsp_pauli::PauliKind;
///
/// let ctx = ZeroStateContext::new(catalog::steane());
/// // A single dangerous two-qubit X error: no extra measurement is needed,
/// // the recovery is simply that error itself.
/// let problem = CorrectionProblem {
///     errors: vec![BitVec::from_indices(7, &[0, 1])],
///     target_weights: Vec::new(),
///     measurable: ctx.measurable_group(PauliKind::X).clone(),
///     reduction: ctx.reduction_group(PauliKind::X).clone(),
/// };
/// let solution = synthesize_correction(&problem, &CorrectionOptions::default()).unwrap();
/// assert_eq!(solution.num_measurements(), 0);
/// ```
pub fn synthesize_correction(
    problem: &CorrectionProblem,
    options: &CorrectionOptions,
) -> Result<CorrectionSolution, CorrectionError> {
    synthesize_correction_with(&mut SatSession::default(), problem, options)
}

/// [`synthesize_correction`] against an explicit [`SatSession`], which
/// selects the SAT backend and accumulates per-query statistics. This is the
/// entry point used by [`crate::SynthesisEngine`].
///
/// # Errors
///
/// Same failure modes as [`synthesize_correction`].
pub fn synthesize_correction_with(
    session: &mut SatSession,
    problem: &CorrectionProblem,
    options: &CorrectionOptions,
) -> Result<CorrectionSolution, CorrectionError> {
    let (errors, weights) = dedupe_errors(problem);
    if errors.is_empty() {
        return Ok(CorrectionSolution {
            measurements: Vec::new(),
            recoveries: vec![BitVec::zeros(problem.measurable.num_cols())],
            total_weight: 0,
        });
    }
    // Syndrome map of the reduction group: a vector lies in the group's row
    // space iff it is orthogonal to every row of the nullspace basis.
    let null_basis = problem.reduction.nullspace();
    let n = problem.measurable.num_cols();
    // Admissible target syndromes per error: the syndromes of every vector
    // whose weight is at most the error's target weight.
    let max_weight = weights.iter().copied().max().unwrap_or(1);
    let by_weight = target_syndromes_by_weight(&null_basis, n, max_weight);
    let targets: Vec<&[BitVec]> = weights.iter().map(|&w| by_weight[w].as_slice()).collect();

    for u in 0..=options.max_measurements {
        if let Some(solution) =
            run_correction_ladder(session, problem, &errors, &null_basis, &targets, u, options)?
        {
            return Ok(solution);
        }
    }
    Err(CorrectionError::BudgetExhausted)
}

/// Admissible recovery-target syndromes indexed by target weight: entry `w`
/// lists the (deduplicated) reduction-group syndromes of every vector of
/// weight ≤ `w`, in combination-enumeration order. Entry 1 reproduces the
/// original `d = 3` target list exactly: the zero syndrome followed by the
/// distinct single-qubit syndromes in qubit order.
fn target_syndromes_by_weight(
    null_basis: &BitMatrix,
    n: usize,
    max_weight: usize,
) -> Vec<Vec<BitVec>> {
    let k = null_basis.num_rows();
    let mut targets: Vec<BitVec> = vec![BitVec::zeros(k)];
    let mut by_weight = vec![targets.clone()];
    let mut support = Vec::new();
    for weight in 1..=max_weight {
        extend_target_syndromes(null_basis, n, weight, 0, &mut support, &mut targets);
        by_weight.push(targets.clone());
    }
    by_weight
}

/// Appends the syndromes of all weight-`remaining + support.len()` vectors
/// extending `support` with indices ≥ `start`, skipping syndromes already
/// collected.
fn extend_target_syndromes(
    null_basis: &BitMatrix,
    n: usize,
    remaining: usize,
    start: usize,
    support: &mut Vec<usize>,
    targets: &mut Vec<BitVec>,
) {
    if remaining == 0 {
        let mut v = BitVec::zeros(n);
        for &q in support.iter() {
            v.set(q, true);
        }
        let t = null_basis.mul_vec(&v);
        if !targets.contains(&t) {
            targets.push(t);
        }
        return;
    }
    for q in start..n {
        support.push(q);
        extend_target_syndromes(null_basis, n, remaining - 1, q + 1, support, targets);
        support.pop();
    }
}

/// Synthesizes the corrections of a whole batch of problems — one per branch
/// of a verification layer — fanning the solves across up to `threads`
/// worker threads. Per-branch correction synthesis is embarrassingly
/// parallel: every branch opens its own ladder on its own freshly
/// instantiated backend, so the solves share no solver state.
///
/// Each worker runs a private [`SatSession`] with `session`'s backend choice
/// and ladder mode; results are joined in input (deterministic branch) order
/// and the workers' [`crate::SatStats`] are merged back into `session` in
/// that same order. Because every per-branch solve is deterministic and the
/// statistics counters combine commutatively (sums, and a maximum for the
/// peak clause-database size), the returned solutions *and* the accumulated
/// statistics are bit-identical to a serial run of
/// [`synthesize_correction_with`] over the same problems, whatever `threads`
/// is.
///
/// Fails fast: the first error (by branch index) is returned and unstarted
/// branches are skipped. Indices are claimed in ascending order, so the
/// lowest-index failure is always computed — the returned error and the
/// statistics merged up to it match a serial run exactly.
pub(crate) fn synthesize_corrections_batch(
    session: &mut SatSession,
    problems: &[CorrectionProblem],
    options: &CorrectionOptions,
    threads: usize,
) -> Result<Vec<CorrectionSolution>, (usize, CorrectionError)> {
    let workers = threads.min(problems.len()).max(1);
    if workers <= 1 {
        let mut solutions = Vec::with_capacity(problems.len());
        for (index, problem) in problems.iter().enumerate() {
            solutions.push(
                synthesize_correction_with(session, problem, options)
                    .map_err(|error| (index, error))?,
            );
        }
        return Ok(solutions);
    }
    let choice = session.choice();
    let mode = session.mode();
    let slots = crate::par::parallel_map_indexed(
        problems,
        workers,
        |_, problem| {
            let mut worker_session = SatSession::with_mode(choice, mode);
            let result = synthesize_correction_with(&mut worker_session, problem, options);
            (result, worker_session.take_stats())
        },
        |(result, _)| result.is_err(),
    );
    let mut solutions = Vec::with_capacity(problems.len());
    for (index, slot) in slots.into_iter().enumerate() {
        // `None` slots are a suffix behind a computed failure.
        let Some((result, stats)) = slot else { break };
        session.absorb(&stats);
        match result {
            Ok(solution) => solutions.push(solution),
            Err(error) => return Err((index, error)),
        }
    }
    debug_assert_eq!(solutions.len(), problems.len());
    Ok(solutions)
}

/// Runs the weight-minimization ladder for a fixed additional-measurement
/// count `u`: one feasibility probe with unbounded weight, a binary search
/// over the summed-weight bound, and a final canonical extraction solve at
/// the optimum. Returns `None` when `u` measurements cannot solve the
/// problem.
///
/// Mirrors the verification ladder (see `crate::verify`): in
/// [`LadderMode::Incremental`] the whole ladder runs on one live solver with
/// retractable weight bounds, and the canonical extraction makes the result
/// bit-identical across modes (budget-interrupted ladders return the best
/// mode-local solution instead, as in the verification ladder).
fn run_correction_ladder(
    session: &mut SatSession,
    problem: &CorrectionProblem,
    errors: &[BitVec],
    null_basis: &BitMatrix,
    targets: &[&[BitVec]],
    u: usize,
    options: &CorrectionOptions,
) -> Result<Option<CorrectionSolution>, CorrectionError> {
    if u == 0 {
        // No measurements, no weight to minimize: a single cold probe with
        // the mode-independent base encoding decides feasibility.
        return solve_correction_fresh(
            session, problem, errors, null_basis, targets, 0, 0, options,
        );
    }
    let mut ladder = CorrectionLadder::open(session, problem, errors, null_basis, targets, u);
    let Some(first) = ladder.probe(
        session, problem, errors, null_basis, targets, u, None, options,
    )?
    else {
        return Ok(None);
    };
    // Minimize the summed measurement weight. A conflict-budget interruption
    // here only costs weight optimality — the feasible solution already in
    // hand is returned rather than failing.
    let w0 = first.total_weight;
    // Every probed bound lies strictly below w0.
    ladder.prepare_bounds(w0);
    let mut lo = u;
    let mut hi = w0;
    let mut best = first.clone();
    while lo < hi {
        let mid = (lo + hi) / 2;
        match ladder.probe(
            session,
            problem,
            errors,
            null_basis,
            targets,
            u,
            Some(mid),
            options,
        ) {
            Ok(Some(better)) => {
                hi = better.total_weight.min(mid);
                best = better;
            }
            Ok(None) => lo = mid + 1,
            Err(CorrectionError::ConflictBudgetExceeded { .. }) => return Ok(Some(best)),
            Err(other) => return Err(other),
        }
    }
    if hi == w0 && !session.choice().is_racing_portfolio() {
        // The unbounded probe was already optimal and ran on a cold solver.
        return Ok(Some(first));
    }
    // Canonical extraction at the proven optimum (see `crate::verify`): a
    // racing portfolio extracts even when the unbounded probe was already
    // optimal (its model belongs to the race winner), re-solving the probe's
    // exact formula via the no-op weight bound `n·u`.
    let target = if hi == w0 {
        problem.measurable.num_cols() * u
    } else {
        hi
    };
    match solve_correction_fresh(
        session, problem, errors, null_basis, targets, u, target, options,
    ) {
        Ok(Some(solution)) => Ok(Some(solution)),
        Ok(None) => Ok(Some(best)),
        Err(CorrectionError::ConflictBudgetExceeded { .. }) => Ok(Some(best)),
        Err(other) => Err(other),
    }
}

/// One (u, ·) correction ladder: either a live incremental session or the
/// fresh-backend-per-probe configuration.
enum CorrectionLadder {
    Warm(Box<WarmCorrectionLadder>),
    Fresh,
}

impl CorrectionLadder {
    fn open(
        session: &SatSession,
        problem: &CorrectionProblem,
        errors: &[BitVec],
        null_basis: &BitMatrix,
        targets: &[&[BitVec]],
        u: usize,
    ) -> Self {
        match session.mode() {
            LadderMode::Incremental => CorrectionLadder::Warm(Box::new(
                WarmCorrectionLadder::open(session, problem, errors, null_basis, targets, u),
            )),
            LadderMode::Fresh => CorrectionLadder::Fresh,
        }
    }

    /// Sizes the warm ladder's cardinality counter so every bound below
    /// `width` can be assumed (no-op for fresh probes, which re-encode).
    fn prepare_bounds(&mut self, width: usize) {
        if let CorrectionLadder::Warm(warm) = self {
            warm.prepare_bounds(width);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn probe(
        &mut self,
        session: &mut SatSession,
        problem: &CorrectionProblem,
        errors: &[BitVec],
        null_basis: &BitMatrix,
        targets: &[&[BitVec]],
        u: usize,
        bound: Option<usize>,
        options: &CorrectionOptions,
    ) -> Result<Option<CorrectionSolution>, CorrectionError> {
        match self {
            CorrectionLadder::Warm(warm) => warm.probe(session, errors, bound, options),
            CorrectionLadder::Fresh => {
                // An effectively unbounded weight makes `at_most_k` a no-op.
                let v = bound.unwrap_or(problem.measurable.num_cols() * u);
                solve_correction_fresh(session, problem, errors, null_basis, targets, u, v, options)
            }
        }
    }
}

/// Removes exact duplicates from the error set, keeping first-occurrence
/// order and, for errors that repeat with different target weights, the
/// *minimum* (strictest) target. Errors of weight ≤ 1 are kept: although
/// harmless by themselves they constrain the recovery (the recovery applied
/// on their syndrome must not make them worse).
fn dedupe_errors(problem: &CorrectionProblem) -> (Vec<BitVec>, Vec<usize>) {
    let mut seen: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut out = Vec::new();
    let mut weights: Vec<usize> = Vec::new();
    for (i, e) in problem.errors.iter().enumerate() {
        let w = problem.target_weight(i);
        match seen.entry(e.to_bits()) {
            std::collections::hash_map::Entry::Occupied(slot) => {
                let j = *slot.get();
                weights[j] = weights[j].min(w);
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(out.len());
                out.push(e.clone());
                weights.push(w);
            }
        }
    }
    (out, weights)
}

/// Selector, support and recovery literals of one `u`-measurement correction
/// encoding (everything except the weight bound, which the ladders install
/// separately — unguarded on fresh backends, guarded and retractable on
/// incremental sessions).
struct CorrectionEncoding {
    support_lits: Vec<Vec<Lit>>,
    all_supports: Vec<Lit>,
    recoveries: Vec<Vec<Lit>>,
}

/// Encodes the weight-independent part of one `(u, ·)` correction instance.
fn encode_correction_base(
    solver: &mut dyn SatBackend,
    problem: &CorrectionProblem,
    errors: &[BitVec],
    null_basis: &BitMatrix,
    targets: &[&[BitVec]],
    u: usize,
) -> CorrectionEncoding {
    let m = problem.measurable.num_rows();
    let n = problem.measurable.num_cols();
    let k = null_basis.num_rows();

    // Measurement selector variables.
    let selectors: Vec<Vec<Lit>> = (0..u)
        .map(|_| (0..m).map(|_| Lit::pos(solver.new_var())).collect())
        .collect();
    // Recovery bits per additional-measurement outcome.
    let num_outcomes = 1usize << u;
    let recoveries: Vec<Vec<Lit>> = (0..num_outcomes)
        .map(|_| (0..n).map(|_| Lit::pos(solver.new_var())).collect())
        .collect();

    let mut support_lits: Vec<Vec<Lit>> = Vec::with_capacity(u);
    {
        let mut enc = Encoder::new(&mut *solver);

        // Measurement supports.
        for row in &selectors {
            let mut supports = Vec::with_capacity(n);
            for q in 0..n {
                let involved: Vec<Lit> = (0..m)
                    .filter(|&j| problem.measurable.get(j, q))
                    .map(|j| row[j])
                    .collect();
                supports.push(enc.xor_many(&involved));
            }
            support_lits.push(supports);
        }
        // Each additional measurement must be non-trivial.
        for supports in &support_lits {
            enc.solver().add_clause(supports);
        }

        // Reduction-group syndrome parities of each recovery.
        // pi[y][row] = XOR_{q in supp(null_basis[row])} recovery[y][q].
        let mut recovery_syndrome: Vec<Vec<Lit>> = Vec::with_capacity(num_outcomes);
        for outcome in &recoveries {
            let mut parities = Vec::with_capacity(k);
            for row in 0..k {
                let involved: Vec<Lit> = null_basis
                    .row(row)
                    .iter_ones()
                    .map(|q| outcome[q])
                    .collect();
                parities.push(enc.xor_many(&involved));
            }
            recovery_syndrome.push(parities);
        }

        // Cache of "recovery syndrome of outcome y equals constant pattern"
        // literals, keyed by (outcome, pattern bits).
        let mut equality_cache: HashMap<(usize, Vec<u8>), Lit> = HashMap::new();

        for (error, error_targets) in errors.iter().zip(targets) {
            // Syndrome of the error under the candidate measurements:
            // t[i] = XOR_{j : <error, g_j> = 1} a[i][j].
            let detection_set: Vec<usize> = (0..m)
                .filter(|&j| problem.measurable.row(j).dot(error))
                .collect();
            let error_syndrome: Vec<Lit> = selectors
                .iter()
                .map(|row| {
                    let involved: Vec<Lit> = detection_set.iter().map(|&j| row[j]).collect();
                    enc.xor_many(&involved)
                })
                .collect();
            let error_null = null_basis.mul_vec(error);

            for (y, _) in recoveries.iter().enumerate() {
                // Literal: "this error produces outcome y".
                let outcome_match: Vec<Lit> = error_syndrome
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| if (y >> i) & 1 == 1 { t } else { !t })
                    .collect();
                let matches = enc.and(&outcome_match);

                // Literal: "error + recovery[y] has reduced weight within
                // this error's target", i.e. its reduction-group syndrome
                // equals one of the admissible targets.
                let mut alternatives = Vec::with_capacity(error_targets.len());
                for target in error_targets.iter() {
                    let pattern: Vec<u8> = (0..k)
                        .map(|row| u8::from(error_null.get(row) ^ target.get(row)))
                        .collect();
                    let key = (y, pattern.clone());
                    let lit = if let Some(&lit) = equality_cache.get(&key) {
                        lit
                    } else {
                        let conjuncts: Vec<Lit> = pattern
                            .iter()
                            .enumerate()
                            .map(|(row, &bit)| {
                                if bit == 1 {
                                    recovery_syndrome[y][row]
                                } else {
                                    !recovery_syndrome[y][row]
                                }
                            })
                            .collect();
                        let lit = enc.and(&conjuncts);
                        equality_cache.insert(key, lit);
                        lit
                    };
                    alternatives.push(lit);
                }
                let mut clause = vec![!matches];
                clause.extend(alternatives);
                enc.solver().add_clause(&clause);
            }
        }
    }

    let all_supports = support_lits.iter().flatten().copied().collect();
    CorrectionEncoding {
        support_lits,
        all_supports,
        recoveries,
    }
}

/// Reads the measurements and recoveries off a satisfying model.
fn extract_correction_solution(
    model: &Model,
    encoding: &CorrectionEncoding,
    errors: &[BitVec],
    n: usize,
) -> CorrectionSolution {
    let mut measurements = Vec::with_capacity(encoding.support_lits.len());
    let mut total_weight = 0;
    for supports in &encoding.support_lits {
        let mut support = BitVec::zeros(n);
        for (q, &lit) in supports.iter().enumerate() {
            if model.lit_value(lit) {
                support.set(q, true);
            }
        }
        total_weight += support.weight();
        measurements.push(support);
    }
    // Outcomes that no error of this branch can produce keep the identity
    // recovery instead of whatever the solver happened to assign.
    let mut reachable = vec![false; encoding.recoveries.len()];
    for error in errors {
        let mut outcome = 0usize;
        for (i, s) in measurements.iter().enumerate() {
            if s.dot(error) {
                outcome |= 1 << i;
            }
        }
        reachable[outcome] = true;
    }
    let recoveries: Vec<BitVec> = encoding
        .recoveries
        .iter()
        .enumerate()
        .map(|(y, bits)| {
            if !reachable[y] {
                return BitVec::zeros(n);
            }
            let mut r = BitVec::zeros(n);
            for (q, &lit) in bits.iter().enumerate() {
                if model.lit_value(lit) {
                    r.set(q, true);
                }
            }
            r
        })
        .collect();
    CorrectionSolution {
        measurements,
        recoveries,
        total_weight,
    }
}

/// Solves one `(u, v)` instance of the correction-synthesis decision problem
/// on a fresh *canonical* backend ([`SatSession::canonical_instance`]), so
/// its model — which becomes protocol output — never depends on a portfolio
/// race winner (racing is confined to the warm incremental ladders' bound
/// probes; see `crate::verify`).
#[allow(clippy::too_many_arguments)]
fn solve_correction_fresh(
    session: &mut SatSession,
    problem: &CorrectionProblem,
    errors: &[BitVec],
    null_basis: &BitMatrix,
    targets: &[&[BitVec]],
    u: usize,
    v: usize,
    options: &CorrectionOptions,
) -> Result<Option<CorrectionSolution>, CorrectionError> {
    let n = problem.measurable.num_cols();
    let mut solver = session.canonical_instance();
    let solver = solver.as_mut();
    let encoding = encode_correction_base(solver, problem, errors, null_basis, targets, u);
    if u > 0 {
        Encoder::new(&mut *solver).at_most_k(&encoding.all_supports, v);
    }
    match session.solve(solver, options.max_conflicts) {
        Some(SolveResult::Sat) => {}
        Some(SolveResult::Unsat) => return Ok(None),
        None => {
            return Err(CorrectionError::ConflictBudgetExceeded {
                max_conflicts: options.max_conflicts.unwrap_or(0),
            })
        }
    }
    let model = solver.model().expect("SAT result has a model");
    Ok(Some(extract_correction_solution(
        model, &encoding, errors, n,
    )))
}

/// The warm half of a [`CorrectionLadder`]: the base encoding on a live
/// [`BoundedLadder`], which owns the retractable-bound bookkeeping.
struct WarmCorrectionLadder {
    ladder: BoundedLadder<Box<dyn SatBackend>>,
    encoding: CorrectionEncoding,
    num_qubits: usize,
}

impl WarmCorrectionLadder {
    fn open(
        session: &SatSession,
        problem: &CorrectionProblem,
        errors: &[BitVec],
        null_basis: &BitMatrix,
        targets: &[&[BitVec]],
        u: usize,
    ) -> Self {
        let mut incremental = session.incremental();
        let encoding = encode_correction_base(
            incremental.backend_mut().as_mut(),
            problem,
            errors,
            null_basis,
            targets,
            u,
        );
        let all_supports = encoding.all_supports.clone();
        WarmCorrectionLadder {
            ladder: BoundedLadder::new(incremental, all_supports),
            encoding,
            num_qubits: problem.measurable.num_cols(),
        }
    }

    fn prepare_bounds(&mut self, width: usize) {
        self.ladder.prepare_bounds(width);
    }

    fn probe(
        &mut self,
        session: &mut SatSession,
        errors: &[BitVec],
        bound: Option<usize>,
        options: &CorrectionOptions,
    ) -> Result<Option<CorrectionSolution>, CorrectionError> {
        if let Some(v) = bound {
            self.ladder.set_bound(v);
        }
        match session.solve_incremental(self.ladder.session_mut(), options.max_conflicts) {
            Some(SolveResult::Sat) => {
                let model = self.ladder.model().expect("SAT result has a model");
                Ok(Some(extract_correction_solution(
                    model,
                    &self.encoding,
                    errors,
                    self.num_qubits,
                )))
            }
            Some(SolveResult::Unsat) => Ok(None),
            None => Err(CorrectionError::ConflictBudgetExceeded {
                max_conflicts: options.max_conflicts.unwrap_or(0),
            }),
        }
    }
}

/// Checks that a correction solution actually handles every error of a
/// problem: for each error, the recovery selected by its refined syndrome
/// leaves a residual of reduced weight at most the error's target weight
/// (1 unless [`CorrectionProblem::target_weights`] overrides it).
///
/// Used in tests and by the protocol-level fault-tolerance check.
pub fn correction_is_valid(problem: &CorrectionProblem, solution: &CorrectionSolution) -> bool {
    problem.errors.iter().enumerate().all(|(index, error)| {
        let mut outcome = 0usize;
        for (i, s) in solution.measurements.iter().enumerate() {
            if s.dot(error) {
                outcome |= 1 << i;
            }
        }
        let corrected = error ^ &solution.recoveries[outcome];
        dftsp_code::reduced_weight(&problem.reduction, &corrected) <= problem.target_weight(index)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ZeroStateContext;
    use dftsp_code::catalog;
    use dftsp_pauli::PauliKind;

    fn steane_problem(errors: Vec<BitVec>) -> CorrectionProblem {
        let ctx = ZeroStateContext::new(catalog::steane());
        CorrectionProblem {
            errors,
            target_weights: Vec::new(),
            measurable: ctx.measurable_group(PauliKind::X).clone(),
            reduction: ctx.reduction_group(PauliKind::X).clone(),
        }
    }

    #[test]
    fn empty_error_set_is_trivial() {
        let problem = steane_problem(vec![]);
        let solution = synthesize_correction(&problem, &CorrectionOptions::default()).unwrap();
        assert_eq!(solution.num_measurements(), 0);
        assert_eq!(solution.total_weight, 0);
        assert!(correction_is_valid(&problem, &solution));
    }

    #[test]
    fn single_error_needs_no_measurement() {
        let problem = steane_problem(vec![BitVec::from_indices(7, &[0, 1])]);
        let solution = synthesize_correction(&problem, &CorrectionOptions::default()).unwrap();
        assert_eq!(solution.num_measurements(), 0);
        assert!(correction_is_valid(&problem, &solution));
    }

    #[test]
    fn weight_one_errors_constrain_but_do_not_require_measurements() {
        // A dangerous error together with the identity and a single-qubit
        // error with the same verification outcome: the recovery must not
        // break the harmless cases.
        let problem = steane_problem(vec![
            BitVec::from_indices(7, &[0, 1]),
            BitVec::zeros(7),
            BitVec::unit(7, 5),
        ]);
        let solution = synthesize_correction(&problem, &CorrectionOptions::default()).unwrap();
        assert!(correction_is_valid(&problem, &solution));
    }

    #[test]
    fn incompatible_errors_force_an_additional_measurement() {
        // Two errors whose sum has weight 4 with a trivial reduction group:
        // no single recovery fixes both, so the synthesis must introduce a
        // distinguishing measurement (here a single-qubit Z suffices).
        let problem = CorrectionProblem {
            errors: vec![
                BitVec::from_indices(4, &[0, 1]),
                BitVec::from_indices(4, &[2, 3]),
            ],
            target_weights: Vec::new(),
            measurable: BitMatrix::from_dense(&[&[1, 0, 0, 0][..], &[0, 0, 1, 0][..]]),
            reduction: BitMatrix::with_cols(4, std::iter::empty()),
        };
        let solution = synthesize_correction(&problem, &CorrectionOptions::default()).unwrap();
        assert_eq!(solution.num_measurements(), 1);
        assert_eq!(solution.total_weight, 1);
        assert!(correction_is_valid(&problem, &solution));
    }

    #[test]
    fn steane_dangerous_pairs_share_a_recovery() {
        // On the Steane code the sum of any two two-qubit X errors has
        // stabilizer-reduced weight at most 2, so every pair of dangerous
        // errors with the same verification outcome can share one recovery —
        // the synthesized branch needs no additional measurement.
        let ctx = ZeroStateContext::new(catalog::steane());
        for (a, b) in [(0usize, 1usize), (2, 4), (3, 6)] {
            for (c, d) in [(1usize, 5usize), (2, 6)] {
                let e1 = BitVec::from_indices(7, &[a, b]);
                let e2 = BitVec::from_indices(7, &[c, d]);
                if !ctx.is_dangerous(PauliKind::X, &e1) || !ctx.is_dangerous(PauliKind::X, &e2) {
                    continue;
                }
                let problem = steane_problem(vec![e1, e2]);
                let solution =
                    synthesize_correction(&problem, &CorrectionOptions::default()).unwrap();
                assert_eq!(solution.num_measurements(), 0);
                assert!(correction_is_valid(&problem, &solution));
            }
        }
    }

    #[test]
    fn measurements_are_drawn_from_the_measurable_group() {
        let ctx = ZeroStateContext::new(catalog::steane());
        let problem = steane_problem(vec![
            BitVec::from_indices(7, &[0, 1]),
            BitVec::from_indices(7, &[0, 3]),
            BitVec::from_indices(7, &[5, 6]),
        ]);
        let solution = synthesize_correction(&problem, &CorrectionOptions::default()).unwrap();
        for s in &solution.measurements {
            assert!(ctx.measurable_group(PauliKind::X).in_row_space(s));
        }
        assert!(correction_is_valid(&problem, &solution));
    }

    #[test]
    fn shor_weight_two_z_errors_are_trivially_correctable() {
        // On the Shor code every in-block weight-2 Z error is a stabilizer, so
        // the zero recovery suffices for whole families of them.
        let ctx = ZeroStateContext::new(catalog::shor());
        let problem = CorrectionProblem {
            errors: vec![
                BitVec::from_indices(9, &[0, 1]),
                BitVec::from_indices(9, &[3, 4]),
                BitVec::zeros(9),
            ],
            target_weights: Vec::new(),
            measurable: ctx.measurable_group(PauliKind::Z).clone(),
            reduction: ctx.reduction_group(PauliKind::Z).clone(),
        };
        let solution = synthesize_correction(&problem, &CorrectionOptions::default()).unwrap();
        assert_eq!(solution.num_measurements(), 0);
        assert!(correction_is_valid(&problem, &solution));
    }

    #[test]
    fn budget_exhaustion_reports_error() {
        let problem = CorrectionProblem {
            errors: vec![
                BitVec::from_indices(4, &[0, 1]),
                BitVec::from_indices(4, &[2, 3]),
            ],
            target_weights: Vec::new(),
            // Empty measurable group and empty reduction group: the two
            // dangerous errors cannot be distinguished nor reduced.
            measurable: BitMatrix::with_cols(4, std::iter::empty()),
            reduction: BitMatrix::with_cols(4, std::iter::empty()),
        };
        let options = CorrectionOptions {
            max_measurements: 1,
            ..CorrectionOptions::default()
        };
        assert_eq!(
            synthesize_correction(&problem, &options),
            Err(CorrectionError::BudgetExhausted)
        );
    }

    #[test]
    fn recovery_table_has_power_of_two_entries() {
        let problem = steane_problem(vec![
            BitVec::from_indices(7, &[0, 1]),
            BitVec::from_indices(7, &[2, 3]),
            BitVec::from_indices(7, &[4, 6]),
        ]);
        let solution = synthesize_correction(&problem, &CorrectionOptions::default()).unwrap();
        assert_eq!(solution.recoveries.len(), 1 << solution.num_measurements());
        assert!(correction_is_valid(&problem, &solution));
    }
}
