//! SAT-based synthesis of correction circuits.
//!
//! This is the paper's central contribution (Sec. IV, problem box
//! "CORRECTION CIRCUIT SYNTHESIS"): given the set of errors that may be
//! present when a particular verification outcome is observed, find
//!
//! * a set of `u` additional stabilizer measurements `s₁, …, s_u` drawn from
//!   the group of operators that stabilize the prepared state, with bounded
//!   summed weight `Σ wt(sᵢ) ≤ v`, and
//! * one Pauli recovery per additional-measurement outcome,
//!
//! such that every error in the set, once the recovery selected by its
//! refined syndrome is applied, is equivalent to an error of weight at most
//! one modulo the state's stabilizer group.
//!
//! The decision problem for fixed `(u, v)` is encoded into CNF and solved
//! with the in-tree CDCL solver; optimality follows the paper by iterating
//! `u` upwards and minimizing `v` for the first feasible `u`.

use std::collections::HashMap;

use dftsp_f2::{BitMatrix, BitVec};
use dftsp_sat::{Encoder, Lit, SatBackend, SolveResult};

use crate::engine::SatSession;

/// One instance of the correction-synthesis problem: a set of candidate
/// residual errors (all mapped to the same verification outcome) that must be
/// reduced to weight ≤ 1 by a common, outcome-dependent recovery.
#[derive(Debug, Clone)]
pub struct CorrectionProblem {
    /// Residual error supports (in the sector being corrected).
    pub errors: Vec<BitVec>,
    /// Generators of the group of measurable operators (operators that
    /// stabilize the prepared state and anticommute with errors of this
    /// sector).
    pub measurable: BitMatrix,
    /// Generators of the group modulo which residual errors of this sector
    /// are equivalent on the prepared state.
    pub reduction: BitMatrix,
}

/// Options bounding the correction-synthesis search.
#[derive(Debug, Clone)]
pub struct CorrectionOptions {
    /// Maximum number of additional measurements per branch.
    pub max_measurements: usize,
    /// Conflict budget per SAT query (`None` = unlimited). Pathological
    /// instances then fail with [`CorrectionError::ConflictBudgetExceeded`]
    /// instead of hanging.
    pub max_conflicts: Option<u64>,
}

impl Default for CorrectionOptions {
    fn default() -> Self {
        CorrectionOptions {
            max_measurements: 3,
            max_conflicts: None,
        }
    }
}

/// A synthesized correction: additional measurements plus a recovery for each
/// of their outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrectionSolution {
    /// Support vectors of the additional measurements.
    pub measurements: Vec<BitVec>,
    /// Recovery supports indexed by the little-endian outcome mask of the
    /// additional measurements (`2^measurements.len()` entries).
    pub recoveries: Vec<BitVec>,
    /// Summed weight of the additional measurements (= data CNOT count).
    pub total_weight: usize,
}

impl CorrectionSolution {
    /// Number of additional measurements (= ancillas) in this correction.
    pub fn num_measurements(&self) -> usize {
        self.measurements.len()
    }
}

/// Errors reported by correction synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorrectionError {
    /// No correction was found within the measurement budget.
    BudgetExhausted,
    /// A SAT query exceeded the configured conflict budget.
    ConflictBudgetExceeded {
        /// The per-query conflict budget that was exhausted.
        max_conflicts: u64,
    },
}

impl std::fmt::Display for CorrectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorrectionError::BudgetExhausted => {
                write!(
                    f,
                    "no correction circuit found within the measurement budget"
                )
            }
            CorrectionError::ConflictBudgetExceeded { max_conflicts } => {
                write!(
                    f,
                    "a SAT query exceeded the budget of {max_conflicts} conflicts"
                )
            }
        }
    }
}

impl std::error::Error for CorrectionError {}

/// Synthesizes an optimal correction for the given problem: minimal number of
/// additional measurements first, minimal summed measurement weight second.
///
/// # Errors
///
/// Returns [`CorrectionError::BudgetExhausted`] if no solution exists within
/// `options.max_measurements` additional measurements.
///
/// # Examples
///
/// ```
/// use dftsp::correct::{synthesize_correction, CorrectionOptions, CorrectionProblem};
/// use dftsp::ZeroStateContext;
/// use dftsp_code::catalog;
/// use dftsp_f2::BitVec;
/// use dftsp_pauli::PauliKind;
///
/// let ctx = ZeroStateContext::new(catalog::steane());
/// // A single dangerous two-qubit X error: no extra measurement is needed,
/// // the recovery is simply that error itself.
/// let problem = CorrectionProblem {
///     errors: vec![BitVec::from_indices(7, &[0, 1])],
///     measurable: ctx.measurable_group(PauliKind::X).clone(),
///     reduction: ctx.reduction_group(PauliKind::X).clone(),
/// };
/// let solution = synthesize_correction(&problem, &CorrectionOptions::default()).unwrap();
/// assert_eq!(solution.num_measurements(), 0);
/// ```
pub fn synthesize_correction(
    problem: &CorrectionProblem,
    options: &CorrectionOptions,
) -> Result<CorrectionSolution, CorrectionError> {
    synthesize_correction_with(&mut SatSession::default(), problem, options)
}

/// [`synthesize_correction`] against an explicit [`SatSession`], which
/// selects the SAT backend and accumulates per-query statistics. This is the
/// entry point used by [`crate::SynthesisEngine`].
///
/// # Errors
///
/// Same failure modes as [`synthesize_correction`].
pub fn synthesize_correction_with(
    session: &mut SatSession,
    problem: &CorrectionProblem,
    options: &CorrectionOptions,
) -> Result<CorrectionSolution, CorrectionError> {
    let errors = dedupe_errors(&problem.errors);
    if errors.is_empty() {
        return Ok(CorrectionSolution {
            measurements: Vec::new(),
            recoveries: vec![BitVec::zeros(problem.measurable.num_cols())],
            total_weight: 0,
        });
    }
    for u in 0..=options.max_measurements {
        let unbounded = problem.measurable.num_cols() * u.max(1);
        if let Some(solution) = solve_correction(session, problem, &errors, u, unbounded, options)?
        {
            if u == 0 {
                return Ok(solution);
            }
            // Minimize the summed measurement weight. A conflict-budget
            // interruption here only costs weight optimality — the feasible
            // solution already in hand is returned rather than failing.
            let mut lo = u;
            let mut hi = solution.total_weight;
            let mut best = solution;
            while lo < hi {
                let mid = (lo + hi) / 2;
                match solve_correction(session, problem, &errors, u, mid, options) {
                    Ok(Some(better)) => {
                        hi = better.total_weight.min(mid);
                        best = better;
                    }
                    Ok(None) => lo = mid + 1,
                    Err(CorrectionError::ConflictBudgetExceeded { .. }) => break,
                    Err(other) => return Err(other),
                }
            }
            return Ok(best);
        }
    }
    Err(CorrectionError::BudgetExhausted)
}

/// Removes exact duplicates from the error set. Errors of weight ≤ 1 are
/// kept: although harmless by themselves they constrain the recovery (the
/// recovery applied on their syndrome must not make them worse).
fn dedupe_errors(errors: &[BitVec]) -> Vec<BitVec> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for e in errors {
        if seen.insert(e.to_bits()) {
            out.push(e.clone());
        }
    }
    out
}

/// Solves one `(u, v)` instance of the correction-synthesis decision problem.
fn solve_correction(
    session: &mut SatSession,
    problem: &CorrectionProblem,
    errors: &[BitVec],
    u: usize,
    v: usize,
    options: &CorrectionOptions,
) -> Result<Option<CorrectionSolution>, CorrectionError> {
    let m = problem.measurable.num_rows();
    let n = problem.measurable.num_cols();
    // Syndrome map of the reduction group: a vector lies in the group's row
    // space iff it is orthogonal to every row of the nullspace basis.
    let null_basis = problem.reduction.nullspace();
    let k = null_basis.num_rows();
    // Admissible target syndromes: the zero vector and the syndrome of every
    // single-qubit error.
    let mut targets: Vec<BitVec> = vec![BitVec::zeros(k)];
    for q in 0..n {
        let t = null_basis.mul_vec(&BitVec::unit(n, q));
        if !targets.contains(&t) {
            targets.push(t);
        }
    }

    let mut solver = session.instance();
    let mut solver = solver.as_mut();
    // Measurement selector variables.
    let selectors: Vec<Vec<Lit>> = (0..u)
        .map(|_| (0..m).map(|_| Lit::pos(solver.new_var())).collect())
        .collect();
    // Recovery bits per additional-measurement outcome.
    let num_outcomes = 1usize << u;
    let recoveries: Vec<Vec<Lit>> = (0..num_outcomes)
        .map(|_| (0..n).map(|_| Lit::pos(solver.new_var())).collect())
        .collect();

    let mut support_lits: Vec<Vec<Lit>> = Vec::with_capacity(u);
    {
        let mut enc = Encoder::new(&mut solver);

        // Measurement supports and weight bound.
        for row in &selectors {
            let mut supports = Vec::with_capacity(n);
            for q in 0..n {
                let involved: Vec<Lit> = (0..m)
                    .filter(|&j| problem.measurable.get(j, q))
                    .map(|j| row[j])
                    .collect();
                supports.push(enc.xor_many(&involved));
            }
            support_lits.push(supports);
        }
        if u > 0 {
            let all_supports: Vec<Lit> = support_lits.iter().flatten().copied().collect();
            enc.at_most_k(&all_supports, v);
            // Each additional measurement must be non-trivial.
            for supports in &support_lits {
                enc.solver().add_clause(supports);
            }
        }

        // Reduction-group syndrome parities of each recovery.
        // pi[y][row] = XOR_{q in supp(null_basis[row])} recovery[y][q].
        let mut recovery_syndrome: Vec<Vec<Lit>> = Vec::with_capacity(num_outcomes);
        for outcome in &recoveries {
            let mut parities = Vec::with_capacity(k);
            for row in 0..k {
                let involved: Vec<Lit> = null_basis
                    .row(row)
                    .iter_ones()
                    .map(|q| outcome[q])
                    .collect();
                parities.push(enc.xor_many(&involved));
            }
            recovery_syndrome.push(parities);
        }

        // Cache of "recovery syndrome of outcome y equals constant pattern"
        // literals, keyed by (outcome, pattern bits).
        let mut equality_cache: HashMap<(usize, Vec<u8>), Lit> = HashMap::new();

        for error in errors {
            // Syndrome of the error under the candidate measurements:
            // t[i] = XOR_{j : <error, g_j> = 1} a[i][j].
            let detection_set: Vec<usize> = (0..m)
                .filter(|&j| problem.measurable.row(j).dot(error))
                .collect();
            let error_syndrome: Vec<Lit> = selectors
                .iter()
                .map(|row| {
                    let involved: Vec<Lit> = detection_set.iter().map(|&j| row[j]).collect();
                    enc.xor_many(&involved)
                })
                .collect();
            let error_null = null_basis.mul_vec(error);

            for (y, _) in recoveries.iter().enumerate() {
                // Literal: "this error produces outcome y".
                let outcome_match: Vec<Lit> = error_syndrome
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| if (y >> i) & 1 == 1 { t } else { !t })
                    .collect();
                let matches = enc.and(&outcome_match);

                // Literal: "error + recovery[y] has reduced weight ≤ 1", i.e.
                // its reduction-group syndrome equals one of the admissible
                // targets.
                let mut alternatives = Vec::with_capacity(targets.len());
                for target in &targets {
                    let pattern: Vec<u8> = (0..k)
                        .map(|row| u8::from(error_null.get(row) ^ target.get(row)))
                        .collect();
                    let key = (y, pattern.clone());
                    let lit = if let Some(&lit) = equality_cache.get(&key) {
                        lit
                    } else {
                        let conjuncts: Vec<Lit> = pattern
                            .iter()
                            .enumerate()
                            .map(|(row, &bit)| {
                                if bit == 1 {
                                    recovery_syndrome[y][row]
                                } else {
                                    !recovery_syndrome[y][row]
                                }
                            })
                            .collect();
                        let lit = enc.and(&conjuncts);
                        equality_cache.insert(key, lit);
                        lit
                    };
                    alternatives.push(lit);
                }
                let mut clause = vec![!matches];
                clause.extend(alternatives);
                enc.solver().add_clause(&clause);
            }
        }
    }

    match session.solve(solver, options.max_conflicts) {
        Some(SolveResult::Sat) => {}
        Some(SolveResult::Unsat) => return Ok(None),
        None => {
            return Err(CorrectionError::ConflictBudgetExceeded {
                max_conflicts: options.max_conflicts.unwrap_or(0),
            })
        }
    }
    let model = solver.model().expect("SAT result has a model").clone();
    let mut measurements = Vec::with_capacity(u);
    let mut total_weight = 0;
    for supports in &support_lits {
        let mut support = BitVec::zeros(n);
        for (q, &lit) in supports.iter().enumerate() {
            if model.lit_value(lit) {
                support.set(q, true);
            }
        }
        total_weight += support.weight();
        measurements.push(support);
    }
    // Outcomes that no error of this branch can produce keep the identity
    // recovery instead of whatever the solver happened to assign.
    let mut reachable = vec![false; num_outcomes];
    for error in errors {
        let mut outcome = 0usize;
        for (i, s) in measurements.iter().enumerate() {
            if s.dot(error) {
                outcome |= 1 << i;
            }
        }
        reachable[outcome] = true;
    }
    let recoveries: Vec<BitVec> = recoveries
        .iter()
        .enumerate()
        .map(|(y, bits)| {
            if !reachable[y] {
                return BitVec::zeros(n);
            }
            let mut r = BitVec::zeros(n);
            for (q, &lit) in bits.iter().enumerate() {
                if model.lit_value(lit) {
                    r.set(q, true);
                }
            }
            r
        })
        .collect();
    Ok(Some(CorrectionSolution {
        measurements,
        recoveries,
        total_weight,
    }))
}

/// Checks that a correction solution actually handles every error of a
/// problem: for each error, the recovery selected by its refined syndrome
/// leaves a residual of reduced weight at most 1.
///
/// Used in tests and by the protocol-level fault-tolerance check.
pub fn correction_is_valid(problem: &CorrectionProblem, solution: &CorrectionSolution) -> bool {
    problem.errors.iter().all(|error| {
        let mut outcome = 0usize;
        for (i, s) in solution.measurements.iter().enumerate() {
            if s.dot(error) {
                outcome |= 1 << i;
            }
        }
        let corrected = error ^ &solution.recoveries[outcome];
        dftsp_code::reduced_weight(&problem.reduction, &corrected) <= 1
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ZeroStateContext;
    use dftsp_code::catalog;
    use dftsp_pauli::PauliKind;

    fn steane_problem(errors: Vec<BitVec>) -> CorrectionProblem {
        let ctx = ZeroStateContext::new(catalog::steane());
        CorrectionProblem {
            errors,
            measurable: ctx.measurable_group(PauliKind::X).clone(),
            reduction: ctx.reduction_group(PauliKind::X).clone(),
        }
    }

    #[test]
    fn empty_error_set_is_trivial() {
        let problem = steane_problem(vec![]);
        let solution = synthesize_correction(&problem, &CorrectionOptions::default()).unwrap();
        assert_eq!(solution.num_measurements(), 0);
        assert_eq!(solution.total_weight, 0);
        assert!(correction_is_valid(&problem, &solution));
    }

    #[test]
    fn single_error_needs_no_measurement() {
        let problem = steane_problem(vec![BitVec::from_indices(7, &[0, 1])]);
        let solution = synthesize_correction(&problem, &CorrectionOptions::default()).unwrap();
        assert_eq!(solution.num_measurements(), 0);
        assert!(correction_is_valid(&problem, &solution));
    }

    #[test]
    fn weight_one_errors_constrain_but_do_not_require_measurements() {
        // A dangerous error together with the identity and a single-qubit
        // error with the same verification outcome: the recovery must not
        // break the harmless cases.
        let problem = steane_problem(vec![
            BitVec::from_indices(7, &[0, 1]),
            BitVec::zeros(7),
            BitVec::unit(7, 5),
        ]);
        let solution = synthesize_correction(&problem, &CorrectionOptions::default()).unwrap();
        assert!(correction_is_valid(&problem, &solution));
    }

    #[test]
    fn incompatible_errors_force_an_additional_measurement() {
        // Two errors whose sum has weight 4 with a trivial reduction group:
        // no single recovery fixes both, so the synthesis must introduce a
        // distinguishing measurement (here a single-qubit Z suffices).
        let problem = CorrectionProblem {
            errors: vec![
                BitVec::from_indices(4, &[0, 1]),
                BitVec::from_indices(4, &[2, 3]),
            ],
            measurable: BitMatrix::from_dense(&[&[1, 0, 0, 0][..], &[0, 0, 1, 0][..]]),
            reduction: BitMatrix::with_cols(4, std::iter::empty()),
        };
        let solution = synthesize_correction(&problem, &CorrectionOptions::default()).unwrap();
        assert_eq!(solution.num_measurements(), 1);
        assert_eq!(solution.total_weight, 1);
        assert!(correction_is_valid(&problem, &solution));
    }

    #[test]
    fn steane_dangerous_pairs_share_a_recovery() {
        // On the Steane code the sum of any two two-qubit X errors has
        // stabilizer-reduced weight at most 2, so every pair of dangerous
        // errors with the same verification outcome can share one recovery —
        // the synthesized branch needs no additional measurement.
        let ctx = ZeroStateContext::new(catalog::steane());
        for (a, b) in [(0usize, 1usize), (2, 4), (3, 6)] {
            for (c, d) in [(1usize, 5usize), (2, 6)] {
                let e1 = BitVec::from_indices(7, &[a, b]);
                let e2 = BitVec::from_indices(7, &[c, d]);
                if !ctx.is_dangerous(PauliKind::X, &e1) || !ctx.is_dangerous(PauliKind::X, &e2) {
                    continue;
                }
                let problem = steane_problem(vec![e1, e2]);
                let solution =
                    synthesize_correction(&problem, &CorrectionOptions::default()).unwrap();
                assert_eq!(solution.num_measurements(), 0);
                assert!(correction_is_valid(&problem, &solution));
            }
        }
    }

    #[test]
    fn measurements_are_drawn_from_the_measurable_group() {
        let ctx = ZeroStateContext::new(catalog::steane());
        let problem = steane_problem(vec![
            BitVec::from_indices(7, &[0, 1]),
            BitVec::from_indices(7, &[0, 3]),
            BitVec::from_indices(7, &[5, 6]),
        ]);
        let solution = synthesize_correction(&problem, &CorrectionOptions::default()).unwrap();
        for s in &solution.measurements {
            assert!(ctx.measurable_group(PauliKind::X).in_row_space(s));
        }
        assert!(correction_is_valid(&problem, &solution));
    }

    #[test]
    fn shor_weight_two_z_errors_are_trivially_correctable() {
        // On the Shor code every in-block weight-2 Z error is a stabilizer, so
        // the zero recovery suffices for whole families of them.
        let ctx = ZeroStateContext::new(catalog::shor());
        let problem = CorrectionProblem {
            errors: vec![
                BitVec::from_indices(9, &[0, 1]),
                BitVec::from_indices(9, &[3, 4]),
                BitVec::zeros(9),
            ],
            measurable: ctx.measurable_group(PauliKind::Z).clone(),
            reduction: ctx.reduction_group(PauliKind::Z).clone(),
        };
        let solution = synthesize_correction(&problem, &CorrectionOptions::default()).unwrap();
        assert_eq!(solution.num_measurements(), 0);
        assert!(correction_is_valid(&problem, &solution));
    }

    #[test]
    fn budget_exhaustion_reports_error() {
        let problem = CorrectionProblem {
            errors: vec![
                BitVec::from_indices(4, &[0, 1]),
                BitVec::from_indices(4, &[2, 3]),
            ],
            // Empty measurable group and empty reduction group: the two
            // dangerous errors cannot be distinguished nor reduced.
            measurable: BitMatrix::with_cols(4, std::iter::empty()),
            reduction: BitMatrix::with_cols(4, std::iter::empty()),
        };
        let options = CorrectionOptions {
            max_measurements: 1,
            ..CorrectionOptions::default()
        };
        assert_eq!(
            synthesize_correction(&problem, &options),
            Err(CorrectionError::BudgetExhausted)
        );
    }

    #[test]
    fn recovery_table_has_power_of_two_entries() {
        let problem = steane_problem(vec![
            BitVec::from_indices(7, &[0, 1]),
            BitVec::from_indices(7, &[2, 3]),
            BitVec::from_indices(7, &[4, 6]),
        ]);
        let solution = synthesize_correction(&problem, &CorrectionOptions::default()).unwrap();
        assert_eq!(solution.recoveries.len(), 1 << solution.num_measurements());
        assert!(correction_is_valid(&problem, &solution));
    }
}
