//! Exhaustive single-fault verification of synthesized protocols.
//!
//! Definition 1 of the paper (strict fault tolerance) requires, for the
//! `d < 5` codes considered, that **any single circuit fault leaves a
//! residual error of weight at most one** on the output state. For CSS codes
//! the X and Z sectors are handled independently, so the check implemented
//! here is: for every single fault at every location of the protocol's
//! fault-free execution path, the residual X error has state-stabilizer-
//! reduced weight ≤ 1 and the residual Z error has reduced weight ≤ 1.
//!
//! The check shares the executor with the noise simulations, so a protocol
//! passing [`check_fault_tolerance`] necessarily exhibits the `O(p²)` logical
//! error scaling of Fig. 4 under circuit-level noise (up to sampling noise).

use dftsp_circuit::{single_fault_effects, Circuit, FaultEffect, FaultSite};
use dftsp_pauli::PauliKind;

use crate::protocol::{
    execute, DeterministicProtocol, ExecutionRecord, FaultModel, SegmentId, SingleFault,
};

/// One enumerated single fault together with the execution it produces.
#[derive(Debug, Clone)]
pub struct SingleFaultRecord {
    /// Global fault-location index on the fault-free execution path.
    pub location: usize,
    /// Protocol segment the location belongs to.
    pub segment: SegmentId,
    /// The injected fault.
    pub effect: FaultEffect,
    /// The execution under this single fault.
    pub execution: ExecutionRecord,
}

/// A single fault that violates strict fault tolerance.
#[derive(Debug, Clone)]
pub struct FtViolation {
    /// Global fault-location index.
    pub location: usize,
    /// Protocol segment of the location.
    pub segment: SegmentId,
    /// The injected fault.
    pub effect: FaultEffect,
    /// Reduced weight of the residual X error.
    pub x_weight: usize,
    /// Reduced weight of the residual Z error.
    pub z_weight: usize,
}

/// Result of the exhaustive single-fault check.
#[derive(Debug, Clone)]
pub struct FtReport {
    /// Number of fault locations on the fault-free execution path.
    pub locations: usize,
    /// Number of (location, fault) pairs examined.
    pub faults_checked: usize,
    /// All violations found (empty for a fault-tolerant protocol).
    pub violations: Vec<FtViolation>,
}

impl FtReport {
    /// Returns `true` if no single fault violates the residual-weight bound.
    pub fn is_fault_tolerant(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Records the fault locations of the fault-free execution path together with
/// the possible fault effects at each location.
#[derive(Default)]
struct LocationRecorder {
    locations: Vec<(SegmentId, Vec<FaultEffect>)>,
}

impl FaultModel for LocationRecorder {
    fn fault(
        &mut self,
        _location: usize,
        segment: SegmentId,
        circuit: &Circuit,
        site: &FaultSite,
    ) -> Option<FaultEffect> {
        self.locations
            .push((segment, single_fault_effects(circuit, site)));
        None
    }
}

/// Enumerates every possible single fault on the protocol's fault-free
/// execution path and returns the execution record of each.
///
/// Faults inside conditional correction branches are *not* enumerated: under
/// the single-fault assumption a branch only executes after the fault has
/// already occurred elsewhere, so branch-internal locations never carry the
/// single fault (they are still noisy in the Monte-Carlo simulations of
/// `dftsp-noise`).
pub fn enumerate_single_fault_records(protocol: &DeterministicProtocol) -> Vec<SingleFaultRecord> {
    let mut recorder = LocationRecorder::default();
    execute(protocol, &mut recorder);

    let mut records = Vec::new();
    for (location, (segment, effects)) in recorder.locations.iter().enumerate() {
        for effect in effects {
            let mut model = SingleFault {
                location,
                effect: effect.clone(),
            };
            let execution = execute(protocol, &mut model);
            records.push(SingleFaultRecord {
                location,
                segment: *segment,
                effect: effect.clone(),
                execution,
            });
        }
    }
    records
}

/// Exhaustively checks strict fault tolerance of a synthesized protocol.
///
/// # Examples
///
/// ```
/// use dftsp::{check_fault_tolerance, synthesize_protocol, SynthesisOptions};
/// use dftsp_code::catalog;
///
/// let protocol = synthesize_protocol(&catalog::steane(), &SynthesisOptions::default()).unwrap();
/// let report = check_fault_tolerance(&protocol);
/// assert!(report.is_fault_tolerant());
/// assert!(report.faults_checked > 100);
/// ```
pub fn check_fault_tolerance(protocol: &DeterministicProtocol) -> FtReport {
    let records = enumerate_single_fault_records(protocol);
    let locations = records
        .iter()
        .map(|r| r.location)
        .max()
        .map_or(0, |m| m + 1);
    let mut violations = Vec::new();
    for record in &records {
        let x_weight = protocol
            .context
            .reduced_weight(PauliKind::X, record.execution.residual.x_part());
        let z_weight = protocol
            .context
            .reduced_weight(PauliKind::Z, record.execution.residual.z_part());
        if x_weight > 1 || z_weight > 1 {
            violations.push(FtViolation {
                location: record.location,
                segment: record.segment,
                effect: record.effect.clone(),
                x_weight,
                z_weight,
            });
        }
    }
    FtReport {
        locations,
        faults_checked: records.len(),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::{synthesize_prep, PrepOptions};
    use crate::protocol::VerificationLayer;
    use crate::ZeroStateContext;
    use dftsp_code::catalog;

    /// The bare preparation circuit without verification is *not* fault
    /// tolerant: this is Example 3 of the paper.
    #[test]
    fn bare_prep_circuit_is_not_fault_tolerant() {
        let code = catalog::steane();
        let prep = synthesize_prep(&code, &PrepOptions::default());
        let protocol = DeterministicProtocol {
            context: ZeroStateContext::new(code),
            prep,
            layers: Vec::new(),
        };
        let report = check_fault_tolerance(&protocol);
        assert!(!report.is_fault_tolerant());
        // Every violation stems from the preparation segment.
        assert!(report
            .violations
            .iter()
            .all(|v| v.segment == SegmentId::Prep));
    }

    /// A verification layer without correction branches detects dangerous
    /// errors but cannot correct them, so the *deterministic* protocol is
    /// still incomplete — yet no violation may be *undetected*: every
    /// violating fault must have produced a non-trivial verification outcome.
    #[test]
    fn verification_without_correction_detects_all_violations() {
        let code = catalog::steane();
        let context = ZeroStateContext::new(code.clone());
        let prep = synthesize_prep(&code, &PrepOptions::default());
        let mut protocol = DeterministicProtocol {
            context,
            prep,
            layers: Vec::new(),
        };
        let dangerous =
            crate::synthesis::dangerous_errors_for_layer(&protocol, dftsp_pauli::PauliKind::X);
        let verification = crate::verify::synthesize_verification(
            protocol.context.measurable_group(dftsp_pauli::PauliKind::X),
            &dangerous,
            &crate::verify::VerificationOptions::default(),
        )
        .unwrap();
        let gadgets = verification
            .measurements
            .iter()
            .map(|s| crate::gadget::MeasurementGadget::new(s.clone(), dftsp_pauli::PauliKind::Z))
            .collect();
        protocol
            .layers
            .push(VerificationLayer::new(dftsp_pauli::PauliKind::X, gadgets));

        let records = enumerate_single_fault_records(&protocol);
        for record in records {
            let x_dangerous = protocol.context.is_dangerous(
                dftsp_pauli::PauliKind::X,
                record.execution.residual.x_part(),
            );
            if x_dangerous {
                assert!(
                    !record.execution.layer_outcomes[0].is_trivial(),
                    "dangerous X residual must be detected by the verification"
                );
            }
        }
    }

    #[test]
    fn enumeration_covers_all_locations() {
        let code = catalog::steane();
        let prep = synthesize_prep(&code, &PrepOptions::default());
        let prep_len = prep.circuit.len();
        let protocol = DeterministicProtocol {
            context: ZeroStateContext::new(code),
            prep,
            layers: Vec::new(),
        };
        let records = enumerate_single_fault_records(&protocol);
        let locations: std::collections::HashSet<usize> =
            records.iter().map(|r| r.location).collect();
        assert_eq!(locations.len(), prep_len);
        // Two-qubit gates contribute 15 faults, single-qubit gates 3.
        assert!(records.len() > prep_len * 3);
    }
}
