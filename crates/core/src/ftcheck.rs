//! Exhaustive fault-tolerance verification of synthesized protocols.
//!
//! Two generations of the check live here:
//!
//! * **Order 1** (Definition 1 of the paper, strict fault tolerance for the
//!   `d < 5` codes): any single circuit fault leaves a residual error of
//!   reduced weight at most one — [`check_fault_tolerance`].
//! * **Order t** (the generalized criterion of Peham et al.,
//!   arXiv 2408.11894, which unlocks `d ≥ 5` codes): every *set* of
//!   `s ≤ t` circuit faults leaves a residual error of reduced weight at
//!   most `s` per CSS sector — [`check_fault_tolerance_order`]. The
//!   single-fault check is exactly the `t = 1` specialization.
//!
//! Fault sets are enumerated combinatorially over the locations of the
//! protocol's *fault-free execution path* (combinations of (location,
//! effect) choices up to size `t`), fanned out over worker threads by the
//! outermost location with a deterministic merge, so reports are
//! bit-identical for every thread count. Each enumerated set re-executes the
//! protocol under a [`FaultSet`] model whose faults are addressed by
//! (segment, offset) — stable even when earlier faults steer the execution
//! into correction branches that shift global location indices.
//!
//! The check shares the executor with the noise simulations, so a protocol
//! passing [`check_fault_tolerance_order`] at order `t` necessarily exhibits
//! `O(p^{t+1})` logical error scaling under circuit-level noise (up to
//! sampling noise); Fig. 4 of the paper is the `t = 1` case.

use dftsp_circuit::{single_fault_effects, Circuit, FaultEffect, FaultSite};
use dftsp_pauli::{PauliKind, PauliString};

use crate::par::parallel_map_indexed;
use crate::protocol::{
    execute, DeterministicProtocol, ExecutionRecord, FaultModel, FaultSet, SegmentId, SingleFault,
};

/// One enumerated single fault together with the execution it produces.
#[derive(Debug, Clone)]
pub struct SingleFaultRecord {
    /// Global fault-location index on the fault-free execution path.
    pub location: usize,
    /// Protocol segment the location belongs to.
    pub segment: SegmentId,
    /// The injected fault.
    pub effect: FaultEffect,
    /// The execution under this single fault.
    pub execution: ExecutionRecord,
}

/// A single fault that violates strict fault tolerance.
#[derive(Debug, Clone)]
pub struct FtViolation {
    /// Global fault-location index.
    pub location: usize,
    /// Protocol segment of the location.
    pub segment: SegmentId,
    /// The injected fault.
    pub effect: FaultEffect,
    /// Reduced weight of the residual X error.
    pub x_weight: usize,
    /// Reduced weight of the residual Z error.
    pub z_weight: usize,
}

/// Result of the exhaustive single-fault check.
#[derive(Debug, Clone)]
pub struct FtReport {
    /// Number of fault locations on the fault-free execution path.
    pub locations: usize,
    /// Number of (location, fault) pairs examined.
    pub faults_checked: usize,
    /// Total number of violating faults found (never capped).
    pub violations_found: usize,
    /// Violations, capped at [`FtCheckOptions::max_violations`] (empty for a
    /// fault-tolerant protocol).
    pub violations: Vec<FtViolation>,
}

impl FtReport {
    /// Returns `true` if no single fault violates the residual-weight bound.
    pub fn is_fault_tolerant(&self) -> bool {
        self.violations_found == 0
    }
}

/// One fault of an enumerated fault set.
#[derive(Debug, Clone)]
pub struct FtFault {
    /// Protocol segment of the fault location.
    pub segment: SegmentId,
    /// Offset of the location within its segment's location stream.
    pub offset: usize,
    /// Global location index on the fault-free execution path.
    pub location: usize,
    /// The injected fault.
    pub effect: FaultEffect,
}

/// A fault set that violates the order-t criterion: `s ≤ t` faults left a
/// residual of reduced weight exceeding `s` in some CSS sector.
#[derive(Debug, Clone)]
pub struct FaultSetViolation {
    /// The faults of the set, in ascending location order.
    pub faults: Vec<FtFault>,
    /// The residual data error of the violating execution.
    pub residual: PauliString,
    /// Reduced weight of the residual X error.
    pub x_weight: usize,
    /// Reduced weight of the residual Z error.
    pub z_weight: usize,
}

/// Options of the fault-tolerance checks.
#[derive(Debug, Clone)]
pub struct FtCheckOptions {
    /// Cap on the number of violations *collected* into the report. The
    /// violation *count* is never capped; the cap only bounds memory —
    /// order-2 enumeration on 17+ qubits could otherwise build
    /// multi-million-entry vectors before reporting failure.
    pub max_violations: usize,
    /// Worker threads for the fault-set fan-out. Reports are bit-identical
    /// for every thread count.
    pub threads: usize,
}

impl Default for FtCheckOptions {
    fn default() -> Self {
        FtCheckOptions {
            max_violations: 1024,
            threads: 1,
        }
    }
}

/// Result of the exhaustive order-t fault-set check.
#[derive(Debug, Clone)]
pub struct FtOrderReport {
    /// The order `t` the check ran at.
    pub order: usize,
    /// Number of fault locations on the fault-free execution path.
    pub locations: usize,
    /// Number of fault sets (of every size `1..=t`) examined.
    pub sets_checked: usize,
    /// Total number of violating fault sets found (never capped).
    pub violations_found: usize,
    /// Violations, capped at [`FtCheckOptions::max_violations`], in
    /// deterministic enumeration order.
    pub violations: Vec<FaultSetViolation>,
}

impl FtOrderReport {
    /// Returns `true` if no fault set violates the order-t residual-weight
    /// bound.
    pub fn is_fault_tolerant(&self) -> bool {
        self.violations_found == 0
    }
}

/// One fault location of the fault-free execution path: its segment-relative
/// address and the possible fault effects there.
#[derive(Debug, Clone)]
pub(crate) struct PathLocation {
    pub(crate) segment: SegmentId,
    pub(crate) offset: usize,
    pub(crate) location: usize,
    pub(crate) effects: Vec<FaultEffect>,
}

/// Records the fault locations of the fault-free execution path together
/// with the possible fault effects at each location.
#[derive(Default)]
struct PathRecorder {
    locations: Vec<PathLocation>,
    current: Option<SegmentId>,
    offset: usize,
}

impl FaultModel for PathRecorder {
    fn fault(
        &mut self,
        location: usize,
        segment: SegmentId,
        circuit: &Circuit,
        site: &FaultSite,
    ) -> Option<FaultEffect> {
        if self.current == Some(segment) {
            self.offset += 1;
        } else {
            self.current = Some(segment);
            self.offset = 0;
        }
        self.locations.push(PathLocation {
            segment,
            offset: self.offset,
            location,
            effects: single_fault_effects(circuit, site),
        });
        None
    }
}

/// Enumerates the fault locations (and per-location effects) of the
/// protocol's fault-free execution path.
pub(crate) fn record_fault_path(protocol: &DeterministicProtocol) -> Vec<PathLocation> {
    let mut recorder = PathRecorder::default();
    execute(protocol, &mut recorder);
    recorder.locations
}

/// Visitor of the fault-set enumeration: receives the set (as `(path
/// index, effect)` pairs in ascending location order) and its execution.
pub(crate) type FaultSetVisitor<'a> = dyn FnMut(&[(usize, FaultEffect)], &ExecutionRecord) + 'a;

/// Depth-first enumeration of every fault set of size `1..=order` whose
/// *first* (lowest-location) fault sits at path index `outer`, calling
/// `visit` with the set and its execution record.
///
/// The visit order is fixed (faults in ascending location order, effects in
/// [`single_fault_effects`] order, a set visited before its extensions), so
/// concatenating the outputs for `outer = 0, 1, …` reproduces the serial
/// enumeration order exactly — the basis for thread-count-independent
/// reports.
pub(crate) fn for_fault_sets_from(
    protocol: &DeterministicProtocol,
    path: &[PathLocation],
    outer: usize,
    order: usize,
    visit: &mut FaultSetVisitor<'_>,
) {
    let mut set: Vec<(usize, FaultEffect)> = Vec::with_capacity(order);
    for effect in &path[outer].effects {
        set.push((outer, effect.clone()));
        visit_and_extend(protocol, path, order, &mut set, visit);
        set.pop();
    }
}

fn visit_and_extend(
    protocol: &DeterministicProtocol,
    path: &[PathLocation],
    order: usize,
    set: &mut Vec<(usize, FaultEffect)>,
    visit: &mut FaultSetVisitor<'_>,
) {
    let faults: Vec<((SegmentId, usize), FaultEffect)> = set
        .iter()
        .map(|(index, effect)| ((path[*index].segment, path[*index].offset), effect.clone()))
        .collect();
    let record = execute(protocol, &mut FaultSet::new(faults));
    visit(set, &record);
    if set.len() < order {
        let last = set.last().expect("set is never empty here").0;
        for next in last + 1..path.len() {
            for effect in &path[next].effects {
                set.push((next, effect.clone()));
                visit_and_extend(protocol, path, order, set, visit);
                set.pop();
            }
        }
    }
}

/// Enumerates every possible single fault on the protocol's fault-free
/// execution path and returns the execution record of each.
///
/// Faults inside conditional correction branches are *not* enumerated: under
/// the single-fault assumption a branch only executes after the fault has
/// already occurred elsewhere, so branch-internal locations never carry the
/// single fault (they are still noisy in the Monte-Carlo simulations of
/// `dftsp-noise`).
pub fn enumerate_single_fault_records(protocol: &DeterministicProtocol) -> Vec<SingleFaultRecord> {
    let path = record_fault_path(protocol);
    let mut records = Vec::new();
    for location in &path {
        for effect in &location.effects {
            let mut model = SingleFault {
                location: location.location,
                effect: effect.clone(),
            };
            let execution = execute(protocol, &mut model);
            records.push(SingleFaultRecord {
                location: location.location,
                segment: location.segment,
                effect: effect.clone(),
                execution,
            });
        }
    }
    records
}

/// Per-worker accumulator of the order-t check.
struct WorkerOutcome {
    sets_checked: usize,
    violations_found: usize,
    violations: Vec<FaultSetViolation>,
}

/// Exhaustively checks the generalized order-t fault-tolerance criterion:
/// every set of `s ≤ t` faults on the fault-free execution path must leave a
/// residual error of reduced weight at most `s` in each CSS sector.
///
/// The per-set bound `s` (rather than a uniform `t`) is the strict form of
/// the criterion: it keeps single faults to weight ≤ 1 even at `t = 2`, so
/// an order-t protocol is automatically order-s for every `s < t`.
///
/// # Panics
///
/// Panics if `order` is zero.
///
/// # Examples
///
/// ```
/// use dftsp::{check_fault_tolerance_order, synthesize_protocol, SynthesisOptions};
/// use dftsp_code::catalog;
///
/// let protocol = synthesize_protocol(&catalog::steane(), &SynthesisOptions::default()).unwrap();
/// let report = check_fault_tolerance_order(&protocol, 1);
/// assert!(report.is_fault_tolerant());
/// assert_eq!(report.order, 1);
/// ```
pub fn check_fault_tolerance_order(
    protocol: &DeterministicProtocol,
    order: usize,
) -> FtOrderReport {
    check_fault_tolerance_order_with(protocol, order, &FtCheckOptions::default())
}

/// [`check_fault_tolerance_order`] with explicit options (violation cap and
/// worker threads).
pub fn check_fault_tolerance_order_with(
    protocol: &DeterministicProtocol,
    order: usize,
    options: &FtCheckOptions,
) -> FtOrderReport {
    assert!(order >= 1, "the fault-tolerance order must be at least 1");
    let path = record_fault_path(protocol);
    let indices: Vec<usize> = (0..path.len()).collect();
    let outcomes = parallel_map_indexed(
        &indices,
        options.threads.max(1),
        |_, &outer| {
            let mut outcome = WorkerOutcome {
                sets_checked: 0,
                violations_found: 0,
                violations: Vec::new(),
            };
            for_fault_sets_from(protocol, &path, outer, order, &mut |set, record| {
                outcome.sets_checked += 1;
                let x_weight = protocol
                    .context
                    .reduced_weight(PauliKind::X, record.residual.x_part());
                let z_weight = protocol
                    .context
                    .reduced_weight(PauliKind::Z, record.residual.z_part());
                if x_weight > set.len() || z_weight > set.len() {
                    outcome.violations_found += 1;
                    if outcome.violations.len() < options.max_violations {
                        outcome.violations.push(FaultSetViolation {
                            faults: set
                                .iter()
                                .map(|(index, effect)| FtFault {
                                    segment: path[*index].segment,
                                    offset: path[*index].offset,
                                    location: path[*index].location,
                                    effect: effect.clone(),
                                })
                                .collect(),
                            residual: record.residual.clone(),
                            x_weight,
                            z_weight,
                        });
                    }
                }
            });
            outcome
        },
        |_| false,
    );

    let mut report = FtOrderReport {
        order,
        locations: path.len(),
        sets_checked: 0,
        violations_found: 0,
        violations: Vec::new(),
    };
    for outcome in outcomes.into_iter().flatten() {
        report.sets_checked += outcome.sets_checked;
        report.violations_found += outcome.violations_found;
        report.violations.extend(outcome.violations);
    }
    report.violations.truncate(options.max_violations);
    report
}

/// Exhaustively checks strict (order-1) fault tolerance of a synthesized
/// protocol. This is the `t = 1` specialization of
/// [`check_fault_tolerance_order`].
///
/// # Examples
///
/// ```
/// use dftsp::{check_fault_tolerance, synthesize_protocol, SynthesisOptions};
/// use dftsp_code::catalog;
///
/// let protocol = synthesize_protocol(&catalog::steane(), &SynthesisOptions::default()).unwrap();
/// let report = check_fault_tolerance(&protocol);
/// assert!(report.is_fault_tolerant());
/// assert!(report.faults_checked > 100);
/// ```
pub fn check_fault_tolerance(protocol: &DeterministicProtocol) -> FtReport {
    check_fault_tolerance_with(protocol, &FtCheckOptions::default())
}

/// [`check_fault_tolerance`] with explicit options (violation cap and worker
/// threads).
pub fn check_fault_tolerance_with(
    protocol: &DeterministicProtocol,
    options: &FtCheckOptions,
) -> FtReport {
    let report = check_fault_tolerance_order_with(protocol, 1, options);
    FtReport {
        locations: report.locations,
        faults_checked: report.sets_checked,
        violations_found: report.violations_found,
        violations: report
            .violations
            .into_iter()
            .map(|violation| {
                let fault = violation
                    .faults
                    .into_iter()
                    .next()
                    .expect("order-1 sets hold exactly one fault");
                FtViolation {
                    location: fault.location,
                    segment: fault.segment,
                    effect: fault.effect,
                    x_weight: violation.x_weight,
                    z_weight: violation.z_weight,
                }
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::{synthesize_prep, PrepCircuit, PrepMethod, PrepOptions};
    use crate::protocol::VerificationLayer;
    use crate::ZeroStateContext;
    use dftsp_code::{catalog, CssCode};
    use proptest::prelude::*;

    /// A valid but unoptimized fan-out preparation straight from the RREF of
    /// the X-stabilizer matrix. The checker comparison tests only need *a*
    /// deterministic protocol per code, so this skips the CNOT-ordering
    /// search in [`synthesize_prep`] that makes the larger catalog codes
    /// unaffordable in a sweep.
    fn rref_fanout_prep(code: &CssCode) -> PrepCircuit {
        let (rref, pivots) = code.stabilizers(PauliKind::X).rref();
        let mut circuit = Circuit::new(code.num_qubits());
        for &pivot in &pivots {
            circuit.h(pivot);
        }
        for (i, &pivot) in pivots.iter().enumerate() {
            for q in rref.row(i).iter_ones() {
                if q != pivot {
                    circuit.cnot(pivot, q);
                }
            }
        }
        PrepCircuit {
            circuit,
            seeds: pivots,
            method: PrepMethod::Heuristic,
            proven_optimal: false,
        }
    }

    /// The bare preparation circuit without verification is *not* fault
    /// tolerant: this is Example 3 of the paper.
    #[test]
    fn bare_prep_circuit_is_not_fault_tolerant() {
        let code = catalog::steane();
        let prep = synthesize_prep(&code, &PrepOptions::default());
        let protocol = DeterministicProtocol {
            context: ZeroStateContext::new(code),
            prep,
            layers: Vec::new(),
        };
        let report = check_fault_tolerance(&protocol);
        assert!(!report.is_fault_tolerant());
        assert_eq!(report.violations_found, report.violations.len());
        // Every violation stems from the preparation segment.
        assert!(report
            .violations
            .iter()
            .all(|v| v.segment == SegmentId::Prep));
    }

    /// A verification layer without correction branches detects dangerous
    /// errors but cannot correct them, so the *deterministic* protocol is
    /// still incomplete — yet no violation may be *undetected*: every
    /// violating fault must have produced a non-trivial verification outcome.
    #[test]
    fn verification_without_correction_detects_all_violations() {
        let code = catalog::steane();
        let context = ZeroStateContext::new(code.clone());
        let prep = synthesize_prep(&code, &PrepOptions::default());
        let mut protocol = DeterministicProtocol {
            context,
            prep,
            layers: Vec::new(),
        };
        let dangerous =
            crate::synthesis::dangerous_errors_for_layer(&protocol, dftsp_pauli::PauliKind::X);
        let verification = crate::verify::synthesize_verification(
            protocol.context.measurable_group(dftsp_pauli::PauliKind::X),
            &dangerous,
            &crate::verify::VerificationOptions::default(),
        )
        .unwrap();
        let gadgets = verification
            .measurements
            .iter()
            .map(|s| crate::gadget::MeasurementGadget::new(s.clone(), dftsp_pauli::PauliKind::Z))
            .collect();
        protocol
            .layers
            .push(VerificationLayer::new(dftsp_pauli::PauliKind::X, gadgets));

        let records = enumerate_single_fault_records(&protocol);
        for record in records {
            let x_dangerous = protocol.context.is_dangerous(
                dftsp_pauli::PauliKind::X,
                record.execution.residual.x_part(),
            );
            if x_dangerous {
                assert!(
                    !record.execution.layer_outcomes[0].is_trivial(),
                    "dangerous X residual must be detected by the verification"
                );
            }
        }
    }

    #[test]
    fn enumeration_covers_all_locations() {
        let code = catalog::steane();
        let prep = synthesize_prep(&code, &PrepOptions::default());
        let prep_len = prep.circuit.len();
        let protocol = DeterministicProtocol {
            context: ZeroStateContext::new(code),
            prep,
            layers: Vec::new(),
        };
        let records = enumerate_single_fault_records(&protocol);
        let locations: std::collections::HashSet<usize> =
            records.iter().map(|r| r.location).collect();
        assert_eq!(locations.len(), prep_len);
        // Two-qubit gates contribute 15 faults, single-qubit gates 3.
        assert!(records.len() > prep_len * 3);
    }

    /// The order-1 path must agree bit-for-bit with an independent
    /// re-derivation of the legacy single-fault check from the raw records.
    #[test]
    fn order_one_matches_single_fault_records() {
        let code = catalog::steane();
        let prep = synthesize_prep(&code, &PrepOptions::default());
        let protocol = DeterministicProtocol {
            context: ZeroStateContext::new(code),
            prep,
            layers: Vec::new(),
        };
        let report = check_fault_tolerance(&protocol);
        let records = enumerate_single_fault_records(&protocol);
        assert_eq!(report.faults_checked, records.len());
        let expected: Vec<(usize, usize, usize)> = records
            .iter()
            .filter_map(|record| {
                let x = protocol.context.reduced_weight(
                    dftsp_pauli::PauliKind::X,
                    record.execution.residual.x_part(),
                );
                let z = protocol.context.reduced_weight(
                    dftsp_pauli::PauliKind::Z,
                    record.execution.residual.z_part(),
                );
                (x > 1 || z > 1).then_some((record.location, x, z))
            })
            .collect();
        let got: Vec<(usize, usize, usize)> = report
            .violations
            .iter()
            .map(|v| (v.location, v.x_weight, v.z_weight))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn violation_cap_bounds_the_report_but_not_the_count() {
        let code = catalog::steane();
        let prep = synthesize_prep(&code, &PrepOptions::default());
        let protocol = DeterministicProtocol {
            context: ZeroStateContext::new(code),
            prep,
            layers: Vec::new(),
        };
        let uncapped = check_fault_tolerance(&protocol);
        let capped = check_fault_tolerance_with(
            &protocol,
            &FtCheckOptions {
                max_violations: 3,
                threads: 1,
            },
        );
        assert_eq!(capped.violations.len(), 3);
        assert_eq!(capped.violations_found, uncapped.violations_found);
        // The capped list is the prefix of the uncapped one.
        for (a, b) in capped.violations.iter().zip(&uncapped.violations) {
            assert_eq!(a.location, b.location);
            assert_eq!(format!("{:?}", a.effect), format!("{:?}", b.effect));
        }
    }

    #[test]
    fn order_check_is_thread_count_invariant() {
        let code = catalog::surface3();
        let prep = synthesize_prep(&code, &PrepOptions::default());
        let protocol = DeterministicProtocol {
            context: ZeroStateContext::new(code),
            prep,
            layers: Vec::new(),
        };
        let serial = check_fault_tolerance_order_with(
            &protocol,
            2,
            &FtCheckOptions {
                max_violations: 50,
                threads: 1,
            },
        );
        let parallel = check_fault_tolerance_order_with(
            &protocol,
            2,
            &FtCheckOptions {
                max_violations: 50,
                threads: 4,
            },
        );
        assert_eq!(serial.sets_checked, parallel.sets_checked);
        assert_eq!(serial.violations_found, parallel.violations_found);
        assert_eq!(serial.violations.len(), parallel.violations.len());
        for (a, b) in serial.violations.iter().zip(&parallel.violations) {
            assert_eq!(format!("{:?}", a), format!("{:?}", b));
        }
    }

    /// On *every* distance-3 catalog code, the order-1 fault-set check must
    /// agree bit-for-bit with the legacy single-fault check: same counts,
    /// same violations in the same order, field by field.
    #[test]
    fn order_one_agrees_with_legacy_on_every_distance3_code() {
        for code in catalog::all() {
            if code.parameters().2 != 3 {
                continue;
            }
            let name = code.name().to_string();
            let prep = rref_fanout_prep(&code);
            let protocol = DeterministicProtocol {
                context: ZeroStateContext::new(code),
                prep,
                layers: Vec::new(),
            };
            let options = FtCheckOptions {
                max_violations: usize::MAX,
                threads: 1,
            };
            let legacy = check_fault_tolerance_with(&protocol, &options);
            let order = check_fault_tolerance_order_with(&protocol, 1, &options);
            assert_eq!(order.order, 1);
            assert_eq!(legacy.locations, order.locations, "{name}");
            assert_eq!(legacy.faults_checked, order.sets_checked, "{name}");
            assert_eq!(legacy.violations_found, order.violations_found, "{name}");
            assert_eq!(legacy.violations.len(), order.violations.len(), "{name}");
            for (single, set) in legacy.violations.iter().zip(&order.violations) {
                assert_eq!(set.faults.len(), 1, "{name}: order-1 sets are singletons");
                let fault = &set.faults[0];
                assert_eq!(single.location, fault.location, "{name}");
                assert_eq!(single.segment, fault.segment, "{name}");
                assert_eq!(
                    format!("{:?}", single.effect),
                    format!("{:?}", fault.effect),
                    "{name}"
                );
                assert_eq!(single.x_weight, set.x_weight, "{name}");
                assert_eq!(single.z_weight, set.z_weight, "{name}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Property over the cat-code family and arbitrary violation caps:
        /// the order-1 check agrees with the legacy check bit-for-bit, and a
        /// capped report is the prefix of the uncapped one with the full
        /// count preserved.
        fn order_one_matches_legacy_on_cat_codes(size in 3usize..9, cap in 1usize..40) {
            let code = catalog::cat_state(size);
            let prep = synthesize_prep(&code, &PrepOptions::default());
            let protocol = DeterministicProtocol {
                context: ZeroStateContext::new(code),
                prep,
                layers: Vec::new(),
            };
            let uncapped = FtCheckOptions { max_violations: usize::MAX, threads: 1 };
            let capped = FtCheckOptions { max_violations: cap, threads: 1 };
            let legacy = check_fault_tolerance_with(&protocol, &capped);
            let order = check_fault_tolerance_order_with(&protocol, 1, &capped);
            let full = check_fault_tolerance_order_with(&protocol, 1, &uncapped);

            prop_assert_eq!(legacy.faults_checked, order.sets_checked);
            prop_assert_eq!(legacy.violations_found, order.violations_found);
            prop_assert_eq!(order.violations_found, full.violations_found);
            prop_assert_eq!(order.violations.len(), full.violations.len().min(cap));
            for (single, set) in legacy.violations.iter().zip(&order.violations) {
                prop_assert_eq!(single.location, set.faults[0].location);
                prop_assert_eq!(single.x_weight, set.x_weight);
                prop_assert_eq!(single.z_weight, set.z_weight);
            }
            // The capped list is a prefix of the uncapped one.
            for (capped_v, full_v) in order.violations.iter().zip(&full.violations) {
                prop_assert_eq!(format!("{capped_v:?}"), format!("{full_v:?}"));
            }
        }
    }

    #[test]
    #[should_panic(expected = "order must be at least 1")]
    fn order_zero_panics() {
        let code = catalog::steane();
        let prep = synthesize_prep(&code, &PrepOptions::default());
        let protocol = DeterministicProtocol {
            context: ZeroStateContext::new(code),
            prep,
            layers: Vec::new(),
        };
        check_fault_tolerance_order(&protocol, 0);
    }
}
