//! End-to-end synthesis of the deterministic fault-tolerant state-preparation
//! protocol (Fig. 3 of the paper).
//!
//! [`synthesize_protocol`] chains all steps:
//!
//! 1. synthesize the (non-fault-tolerant) preparation circuit (step (a)),
//! 2. synthesize the X-verification layer covering the dangerous X errors
//!    that single preparation faults can produce (step (b)),
//! 3. decide which verification measurements need flag qubits (step (c)),
//! 4. synthesize, per verification outcome, the optimal correction circuit
//!    with the SAT encoding of Sec. IV (steps (d)/(e)),
//! 5. repeat for the Z sector if dangerous Z errors remain (step (f)).
//!
//! Every step that involves an error set is driven by exhaustive single-fault
//! enumeration through the *partial protocol built so far*, executed on the
//! shared Pauli-frame executor. This keeps the synthesis honest: hook errors,
//! measurement errors and errors that occur between verification measurements
//! are all included in the correction problems automatically.

use std::collections::{BTreeMap, HashMap};

use dftsp_code::CssCode;
use dftsp_f2::BitVec;
use dftsp_pauli::PauliKind;

use crate::cache::FaultCache;
use crate::correct::{
    synthesize_corrections_batch, CorrectionError, CorrectionOptions, CorrectionProblem,
};
use crate::engine::{SatSession, SynthesisEngine};
use crate::ftcheck::{
    enumerate_single_fault_records, for_fault_sets_from, record_fault_path, SingleFaultRecord,
};
use crate::gadget::MeasurementGadget;
use crate::perm::HeapPermutations;
use crate::prep::{PrepCircuit, PrepOptions};
use crate::protocol::{BranchKey, CorrectionBranch, DeterministicProtocol, VerificationLayer};
use crate::verify::{VerificationError, VerificationOptions, VerificationSolution};
use crate::ZeroStateContext;

/// Controls whether verification measurements are flagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlagPolicy {
    /// Flag a measurement only when its hook errors are dangerous and cannot
    /// be deferred to a later verification layer (the paper's strategy).
    #[default]
    Auto,
    /// Flag every verification measurement.
    Always,
    /// Never flag (only sound if all hook errors are harmless or caught by a
    /// later layer; the synthesis fails otherwise).
    Never,
}

/// Options for the full protocol synthesis.
#[derive(Debug, Clone, Default)]
pub struct SynthesisOptions {
    /// State-preparation synthesis options (step (a)).
    pub prep: PrepOptions,
    /// Verification synthesis options (step (b)).
    pub verification: VerificationOptions,
    /// Correction synthesis options (step (d)).
    pub correction: CorrectionOptions,
    /// Flagging strategy (step (c)).
    pub flag_policy: FlagPolicy,
    /// The fault-tolerance order the synthesized protocol must reach: every
    /// set of `s ≤ t` faults must leave a residual of reduced weight at most
    /// `s` per CSS sector. `None` (the default) targets order 1, keeping
    /// the classic single-fault pipeline unchanged on every code. Orders
    /// above 1 are opt-in and run additional verification/correction
    /// repair rounds after the standard two-layer pipeline (see
    /// [`crate::check_fault_tolerance_order`]).
    pub target_order: Option<usize>,
}

impl SynthesisOptions {
    /// Options using the given preparation method and defaults elsewhere.
    pub fn with_prep_method(method: crate::prep::PrepMethod) -> Self {
        SynthesisOptions {
            prep: PrepOptions::with_method(method),
            ..SynthesisOptions::default()
        }
    }
}

/// Errors reported by protocol synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthesisError {
    /// Verification synthesis failed for the given error sector.
    Verification {
        /// The sector whose verification failed.
        error_kind: PauliKind,
        /// The underlying failure.
        source: VerificationError,
    },
    /// Correction synthesis failed for one verification outcome.
    Correction {
        /// The sector whose correction failed.
        error_kind: PauliKind,
        /// The verification outcome whose branch could not be synthesized.
        key: BranchKey,
        /// The underlying failure.
        source: CorrectionError,
    },
    /// The repair rounds exhausted without reaching the requested
    /// fault-tolerance order. The protocol is still order-1 fault-tolerant
    /// (all single faults are handled); the count reports how many fault
    /// sets of size ≤ `order` still violate the order-`order` criterion.
    OrderNotReached {
        /// The requested fault-tolerance order.
        order: usize,
        /// How many repair rounds ran before giving up.
        rounds: usize,
        /// Number of violating fault sets remaining after the last round.
        violations: usize,
    },
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::Verification { error_kind, source } => {
                write!(f, "{error_kind}-verification synthesis failed: {source}")
            }
            SynthesisError::Correction {
                error_kind,
                key,
                source,
            } => write!(
                f,
                "{error_kind}-correction synthesis failed for outcome {key}: {source}"
            ),
            SynthesisError::OrderNotReached {
                order,
                rounds,
                violations,
            } => write!(
                f,
                "order-{order} fault tolerance not reached after {rounds} repair \
                 round(s): {violations} violating fault set(s) remain"
            ),
        }
    }
}

impl std::error::Error for SynthesisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthesisError::Verification { source, .. } => Some(source),
            SynthesisError::Correction { source, .. } => Some(source),
            SynthesisError::OrderNotReached { .. } => None,
        }
    }
}

/// Synthesizes the complete deterministic fault-tolerant preparation protocol
/// for `|0…0⟩_L` of the given CSS code.
///
/// # Errors
///
/// Returns a [`SynthesisError`] if verification or correction synthesis fails
/// (e.g. a dangerous error is undetectable, or a branch exceeds the
/// measurement budget).
///
/// # Examples
///
/// ```
/// use dftsp::{synthesize_protocol, SynthesisOptions};
/// use dftsp_code::catalog;
///
/// let protocol = synthesize_protocol(&catalog::steane(), &SynthesisOptions::default()).unwrap();
/// // The Steane code needs a single verification layer with one measurement.
/// assert_eq!(protocol.layers.len(), 1);
/// assert_eq!(protocol.layers[0].verifications.len(), 1);
/// ```
pub fn synthesize_protocol(
    code: &CssCode,
    options: &SynthesisOptions,
) -> Result<DeterministicProtocol, SynthesisError> {
    SynthesisEngine::with_options(options.clone())
        .synthesize(code)
        .map(|report| report.protocol)
}

/// Synthesizes the protocol around an already-chosen preparation circuit.
///
/// This is the entry point used by the global optimization procedure, which
/// explores several preparation/verification combinations.
///
/// # Errors
///
/// Same failure modes as [`synthesize_protocol`].
pub fn synthesize_protocol_with_prep(
    code: &CssCode,
    prep: PrepCircuit,
    options: &SynthesisOptions,
) -> Result<DeterministicProtocol, SynthesisError> {
    SynthesisEngine::with_options(options.clone())
        .synthesize_with_prep(code, prep)
        .map(|report| report.protocol)
}

/// Collects the dangerous residual errors of one sector that single faults in
/// the protocol built so far can leave behind (deduplicated). These are the
/// errors the next verification layer must detect.
pub fn dangerous_errors_for_layer(
    protocol: &DeterministicProtocol,
    error_kind: PauliKind,
) -> Vec<BitVec> {
    let records = enumerate_single_fault_records(protocol);
    dangerous_errors_from_records(&protocol.context, &records, error_kind)
}

/// [`dangerous_errors_for_layer`] over pre-enumerated (typically cached)
/// single-fault records.
pub(crate) fn dangerous_errors_from_records(
    context: &ZeroStateContext,
    records: &[SingleFaultRecord],
    error_kind: PauliKind,
) -> Vec<BitVec> {
    let mut dangerous = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for record in records {
        if record.execution.terminated_early {
            continue;
        }
        let residual = record.execution.residual.part(error_kind).clone();
        if context.is_dangerous(error_kind, &residual) && seen.insert(residual.to_bits()) {
            dangerous.push(residual);
        }
    }
    dangerous
}

/// [`dangerous_errors_from_records`] over records of a *branch-less* protocol
/// whose last layer has not received its correction branches yet, skipping
/// records whose outcome at `flag_layer` raised a flag.
///
/// This computes the dangerous set the *next* sector's verification layer
/// must detect without re-enumerating the protocol after branch attachment:
/// on the fault-free path the branch-less and branched protocols have
/// identical fault locations and identical per-fault execution up to branch
/// application, and the only branches that change a record's *dual*-sector
/// residual are flag branches (same-sector recoveries act on the layer's own
/// sector, and branch measurement gadgets never touch the residual). A flag
/// branch corrects the dual-sector hook error below the danger threshold, so
/// its records contribute nothing dangerous — exactly the records this
/// filter skips. The equivalence is pinned by a test against the
/// re-enumerated branched protocol.
pub(crate) fn dangerous_errors_excluding_flagged(
    context: &ZeroStateContext,
    records: &[SingleFaultRecord],
    error_kind: PauliKind,
    flag_layer: usize,
) -> Vec<BitVec> {
    let mut dangerous = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for record in records {
        if record.execution.terminated_early {
            continue;
        }
        if record
            .execution
            .layer_outcomes
            .get(flag_layer)
            .is_some_and(|key| key.has_flag())
        {
            continue;
        }
        let residual = record.execution.residual.part(error_kind).clone();
        if context.is_dangerous(error_kind, &residual) && seen.insert(residual.to_bits()) {
            dangerous.push(residual);
        }
    }
    dangerous
}

/// Turns a verification solution into a [`VerificationLayer`] (gadget
/// construction, CNOT ordering and flag decisions), without branches.
pub(crate) fn build_layer_from_verification(
    protocol: &DeterministicProtocol,
    error_kind: PauliKind,
    verification: &VerificationSolution,
    later_layer_available: bool,
    options: &SynthesisOptions,
) -> Result<VerificationLayer, SynthesisError> {
    let measured_basis = error_kind.dual();
    let hook_kind = measured_basis; // hook errors have the measured operator's type
    let mut gadgets = Vec::with_capacity(verification.measurements.len());
    for support in &verification.measurements {
        let (order, hooks_dangerous) = choose_cnot_order(protocol, hook_kind, support);
        let flag = match options.flag_policy {
            FlagPolicy::Always => true,
            FlagPolicy::Never => false,
            FlagPolicy::Auto => hooks_dangerous && !later_layer_available,
        };
        gadgets.push(
            MeasurementGadget::with_order(support.clone(), measured_basis, order).flagged(flag),
        );
    }
    Ok(VerificationLayer::new(error_kind, gadgets))
}

/// Chooses a data-coupling order for a stabilizer measurement, preferring
/// orders whose hook errors are all harmless. Returns the order and whether
/// dangerous hooks remain.
fn choose_cnot_order(
    protocol: &DeterministicProtocol,
    hook_kind: PauliKind,
    support: &BitVec,
) -> (Vec<usize>, bool) {
    let qubits = support.support();
    let n = support.len();
    let hook_danger = |order: &[usize]| -> bool {
        // A fault on the syndrome ancilla after the i-th data CNOT propagates
        // onto the data qubits coupled afterwards.
        (1..order.len()).any(|i| {
            let suffix = BitVec::from_indices(n, &order[i..]);
            protocol.context.is_dangerous(hook_kind, &suffix)
        })
    };
    if !hook_danger(&qubits) {
        return (qubits, false);
    }
    // Try all cyclic rotations and reversals first (cheap), then stream full
    // permutations lazily (Heap's algorithm) for small supports — the search
    // stops at the first hook-safe order instead of materializing all n!
    // candidates.
    let rotations = (0..qubits.len()).flat_map(|rotation| {
        let mut rotated = qubits.clone();
        rotated.rotate_left(rotation);
        let mut reversed = rotated.clone();
        reversed.reverse();
        [rotated, reversed]
    });
    let full = if qubits.len() <= 6 {
        Some(HeapPermutations::new(qubits.clone()))
    } else {
        None
    };
    for candidate in rotations.chain(full.into_iter().flatten()) {
        if !hook_danger(&candidate) {
            return (candidate, false);
        }
    }
    (qubits, true)
}

/// (Re)synthesizes the correction branches of the protocol's *last* layer by
/// exhaustive single-fault enumeration through everything built so far,
/// fanning the per-branch correction solves across up to `threads` worker
/// threads (the branches are independent SAT problems). Results are joined
/// in deterministic branch order, so the synthesized protocol and the
/// statistics recorded on `session` are bit-identical for every thread
/// count. Returns the number of synthesized branches.
pub(crate) fn attach_correction_branches_with(
    protocol: &mut DeterministicProtocol,
    options: &SynthesisOptions,
    session: &mut SatSession,
    cache: &mut FaultCache,
    threads: usize,
) -> Result<usize, SynthesisError> {
    let layer_index = protocol.layers.len() - 1;
    let error_kind = protocol.layers[layer_index].error_kind;

    // Bucket the single-fault residuals by the last layer's observed outcome.
    // Records live in the corrected sector's cache slot, so a concurrent
    // other-sector stage never evicts them.
    let records = cache.records_for(error_kind, protocol);
    let mut buckets: BTreeMap<BranchKey, (Vec<BitVec>, Vec<BitVec>)> = BTreeMap::new();
    for record in records {
        let Some(&key) = record.execution.layer_outcomes.get(layer_index) else {
            continue; // fault terminated the protocol in an earlier layer
        };
        if key.is_trivial() {
            continue;
        }
        let entry = buckets.entry(key).or_default();
        entry
            .0
            .push(record.execution.residual.part(error_kind).clone());
        entry
            .1
            .push(record.execution.residual.part(error_kind.dual()).clone());
    }

    // Materialize one correction problem per branch, in branch order.
    let mut keys = Vec::with_capacity(buckets.len());
    let mut problems = Vec::with_capacity(buckets.len());
    for (key, (same_sector, dual_sector)) in buckets {
        // Flag-triggered branches correct hook errors, which live in the dual
        // sector of the layer's verified errors; syndrome-only branches
        // correct the verified sector itself.
        let corrected_kind = if key.has_flag() {
            error_kind.dual()
        } else {
            error_kind
        };
        let errors = if key.has_flag() {
            dual_sector
        } else {
            same_sector
        };
        keys.push((key, corrected_kind));
        problems.push(CorrectionProblem {
            errors,
            target_weights: Vec::new(),
            measurable: protocol.context.measurable_group(corrected_kind).clone(),
            reduction: protocol.context.reduction_group(corrected_kind).clone(),
        });
    }

    let solutions = synthesize_corrections_batch(session, &problems, &options.correction, threads)
        .map_err(|(index, source)| {
            let (key, corrected_kind) = keys[index];
            SynthesisError::Correction {
                error_kind: corrected_kind,
                key,
                source,
            }
        })?;

    let mut branches = BTreeMap::new();
    for (&(key, corrected_kind), solution) in keys.iter().zip(solutions) {
        let measurements = solution
            .measurements
            .iter()
            .map(|support| MeasurementGadget::new(support.clone(), corrected_kind.dual()))
            .collect();
        branches.insert(
            key,
            CorrectionBranch {
                error_kind: corrected_kind,
                measurements,
                recoveries: solution.recoveries,
                // A detected hook implies the single fault happened inside
                // this layer's measurements, so no further layer is needed
                // (step (e) of Fig. 3).
                terminates: key.has_flag(),
            },
        );
    }
    let count = branches.len();
    protocol.layers[layer_index].branches = branches;
    Ok(count)
}

/// Attaches correction branches to the protocol's last layer under the
/// order-`order` criterion of [`crate::check_fault_tolerance_order`].
///
/// The order-aware sibling of [`attach_correction_branches_with`]: instead of
/// the single-fault records it enumerates every fault set of size
/// `1..=order` on the fault-free execution path (fanned out over `threads`
/// workers with a deterministic index-order merge), buckets the residuals by
/// the last layer's observed outcome, and gives each error its set size as
/// the per-error correction target weight — a set of `s` faults only has to
/// be corrected back to reduced weight ≤ `s`.
pub(crate) fn attach_order_corrections(
    protocol: &mut DeterministicProtocol,
    order: usize,
    options: &SynthesisOptions,
    session: &mut SatSession,
    threads: usize,
) -> Result<usize, SynthesisError> {
    let layer_index = protocol.layers.len() - 1;
    let error_kind = protocol.layers[layer_index].error_kind;

    let shared: &DeterministicProtocol = protocol;
    let path = record_fault_path(shared);
    let indices: Vec<usize> = (0..path.len()).collect();
    let per_outer = crate::par::parallel_map_indexed(
        &indices,
        threads.max(1),
        |_, &outer| {
            let mut sets: Vec<(BranchKey, BitVec, BitVec, usize)> = Vec::new();
            for_fault_sets_from(shared, &path, outer, order, &mut |set, record| {
                let Some(&key) = record.layer_outcomes.get(layer_index) else {
                    return; // the set terminated the protocol in an earlier layer
                };
                if key.is_trivial() {
                    return;
                }
                sets.push((
                    key,
                    record.residual.part(error_kind).clone(),
                    record.residual.part(error_kind.dual()).clone(),
                    set.len(),
                ));
            });
            sets
        },
        |_| false,
    );

    // Merge in index order (= serial enumeration order) and dedupe equal
    // residual pairs per branch, keeping the smallest set size: the tightest
    // correction target wins, and the representative order is deterministic.
    type Bucket = (Vec<BitVec>, Vec<BitVec>, Vec<usize>);
    type SeenIndex = HashMap<(Vec<u8>, Vec<u8>), usize>;
    let mut buckets: BTreeMap<BranchKey, Bucket> = BTreeMap::new();
    let mut seen: BTreeMap<BranchKey, SeenIndex> = BTreeMap::new();
    for (key, same, dual, size) in per_outer.into_iter().flatten().flatten() {
        let bucket = buckets.entry(key).or_default();
        match seen
            .entry(key)
            .or_default()
            .entry((same.to_bits(), dual.to_bits()))
        {
            std::collections::hash_map::Entry::Occupied(slot) => {
                let index = *slot.get();
                bucket.2[index] = bucket.2[index].min(size);
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(bucket.0.len());
                bucket.0.push(same);
                bucket.1.push(dual);
                bucket.2.push(size);
            }
        }
    }

    let mut keys = Vec::with_capacity(buckets.len());
    let mut problems = Vec::with_capacity(buckets.len());
    for (key, (same_sector, dual_sector, sizes)) in buckets {
        let corrected_kind = if key.has_flag() {
            error_kind.dual()
        } else {
            error_kind
        };
        let errors = if key.has_flag() {
            dual_sector
        } else {
            same_sector
        };
        keys.push((key, corrected_kind));
        problems.push(CorrectionProblem {
            errors,
            target_weights: sizes,
            measurable: protocol.context.measurable_group(corrected_kind).clone(),
            reduction: protocol.context.reduction_group(corrected_kind).clone(),
        });
    }

    let solutions = synthesize_corrections_batch(session, &problems, &options.correction, threads)
        .map_err(|(index, source)| {
            let (key, corrected_kind) = keys[index];
            SynthesisError::Correction {
                error_kind: corrected_kind,
                key,
                source,
            }
        })?;

    let mut branches = BTreeMap::new();
    for (&(key, corrected_kind), solution) in keys.iter().zip(solutions) {
        let measurements = solution
            .measurements
            .iter()
            .map(|support| MeasurementGadget::new(support.clone(), corrected_kind.dual()))
            .collect();
        branches.insert(
            key,
            CorrectionBranch {
                error_kind: corrected_kind,
                measurements,
                recoveries: solution.recoveries,
                terminates: key.has_flag(),
            },
        );
    }
    let count = branches.len();
    protocol.layers[layer_index].branches = branches;
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftcheck::check_fault_tolerance;
    use dftsp_code::catalog;

    #[test]
    fn steane_protocol_has_single_unflagged_layer() {
        let protocol =
            synthesize_protocol(&catalog::steane(), &SynthesisOptions::default()).unwrap();
        assert_eq!(protocol.layers.len(), 1);
        let layer = &protocol.layers[0];
        assert_eq!(layer.error_kind, PauliKind::X);
        assert_eq!(layer.verification_ancillas(), 1);
        assert_eq!(layer.flag_ancillas(), 0);
        // The single verification measurement has weight 3 (the logical Z).
        assert_eq!(layer.verification_cnots(), (3, 0));
        // Exactly one non-trivial verification outcome, with a correction
        // branch of at most one additional measurement.
        assert_eq!(layer.branches.len(), 1);
        let branch = layer.branches.values().next().unwrap();
        assert!(branch.ancilla_count() <= 1);
    }

    #[test]
    fn steane_protocol_is_fault_tolerant() {
        let protocol =
            synthesize_protocol(&catalog::steane(), &SynthesisOptions::default()).unwrap();
        let report = check_fault_tolerance(&protocol);
        assert!(
            report.is_fault_tolerant(),
            "violations: {:?}",
            report.violations
        );
    }

    #[test]
    fn surface_protocol_is_fault_tolerant() {
        let protocol =
            synthesize_protocol(&catalog::surface3(), &SynthesisOptions::default()).unwrap();
        let report = check_fault_tolerance(&protocol);
        assert!(
            report.is_fault_tolerant(),
            "violations: {:?}",
            report.violations
        );
    }

    #[test]
    fn always_flag_policy_flags_every_measurement() {
        let options = SynthesisOptions {
            flag_policy: FlagPolicy::Always,
            ..SynthesisOptions::default()
        };
        let protocol = synthesize_protocol(&catalog::steane(), &options).unwrap();
        for layer in &protocol.layers {
            assert_eq!(layer.flag_ancillas(), layer.verification_ancillas());
        }
    }

    #[test]
    fn flag_filtered_branchless_dangerous_set_matches_reenumeration() {
        // The pipeline derives the Z sector's dangerous set from the
        // *branch-less* X-layer records (skipping flagged outcomes) instead
        // of re-enumerating after branch attachment. Pin the equivalence
        // against the re-enumerated branched protocol, under both the
        // default flag policy and `Always` (which exercises the flag
        // filter for real).
        for flag_policy in [FlagPolicy::Auto, FlagPolicy::Always] {
            for code in [catalog::steane(), catalog::shor(), catalog::surface3()] {
                let options = SynthesisOptions {
                    flag_policy,
                    ..SynthesisOptions::default()
                };
                let prep = crate::prep::synthesize_prep(&code, &options.prep);
                let mut protocol = DeterministicProtocol {
                    context: ZeroStateContext::new(code.clone()),
                    prep,
                    layers: Vec::new(),
                };
                let records = enumerate_single_fault_records(&protocol);
                let second_layer_expected = records.iter().any(|record| {
                    protocol
                        .context
                        .is_dangerous(PauliKind::Z, record.execution.residual.z_part())
                });
                let dangerous_x =
                    dangerous_errors_from_records(&protocol.context, &records, PauliKind::X);
                if dangerous_x.is_empty() {
                    continue;
                }
                let mut session = SatSession::default();
                let verification = crate::verify::synthesize_verification_with(
                    &mut session,
                    protocol.context.measurable_group(PauliKind::X),
                    &dangerous_x,
                    &options.verification,
                )
                .unwrap();
                let layer = build_layer_from_verification(
                    &protocol,
                    PauliKind::X,
                    &verification,
                    second_layer_expected,
                    &options,
                )
                .unwrap();
                protocol.layers.push(layer);

                let branchless_records = enumerate_single_fault_records(&protocol);
                let filtered = dangerous_errors_excluding_flagged(
                    &protocol.context,
                    &branchless_records,
                    PauliKind::Z,
                    protocol.layers.len() - 1,
                );

                let mut cache = FaultCache::new();
                attach_correction_branches_with(
                    &mut protocol,
                    &options,
                    &mut session,
                    &mut cache,
                    1,
                )
                .unwrap();
                let reenumerated = dangerous_errors_for_layer(&protocol, PauliKind::Z);
                assert_eq!(
                    filtered,
                    reenumerated,
                    "{} ({flag_policy:?}): branch-less + flag filter must equal \
                     the re-enumerated branched dangerous set",
                    code.name()
                );
            }
        }
    }

    #[test]
    fn branch_recoveries_have_consistent_sizes() {
        let protocol =
            synthesize_protocol(&catalog::surface3(), &SynthesisOptions::default()).unwrap();
        for layer in &protocol.layers {
            for branch in layer.branches.values() {
                assert_eq!(branch.recoveries.len(), 1 << branch.measurements.len());
                for gadget in &branch.measurements {
                    assert!(
                        !gadget.is_flagged(),
                        "correction measurements are unflagged"
                    );
                    assert_eq!(gadget.detects(), branch.error_kind);
                }
            }
        }
    }
}
