//! Synthesis of (non-fault-tolerant) logical-zero state-preparation circuits.
//!
//! Step (a) of the protocol in Fig. 3 of the paper: a unitary circuit that
//! maps `|0…0⟩` to the logical all-zero state `|0…0⟩_L` of a CSS code. The
//! paper reuses the synthesis tool of Ref. \[22\] for this step; this module
//! re-implements both a *heuristic* and an *optimal* (exhaustive search with
//! admissible pruning) variant so the workspace is self-contained.
//!
//! The synthesized circuits have the canonical CSS structure: a layer of
//! Hadamards on one "seed" qubit per X-type stabilizer generator followed by a
//! CNOT network among the data qubits. Such a circuit prepares
//! `Σ_{c ∈ rowspace(H_X)} |c⟩ = |0…0⟩_L` exactly when the seed rows of the
//! CNOT network's GF(2) transfer matrix span `rowspace(H_X)`.

use std::collections::HashMap;

use rand::prelude::*;
use rand::rngs::StdRng;

use dftsp_circuit::{enumerate_fault_sites, propagate_fault, Circuit, Gate};
use dftsp_code::CssCode;
use dftsp_f2::{BitMatrix, BitVec};
use dftsp_pauli::PauliKind;
use dftsp_stabsim::{is_logical_zero_state, run_circuit, Tableau};

use crate::ZeroStateContext;

/// Which state-preparation synthesis method to use.
///
/// These correspond to the "Opt" and "Heu" columns of Table I in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrepMethod {
    /// Greedy Gaussian-elimination synthesis (fast, not CNOT-optimal).
    #[default]
    Heuristic,
    /// CNOT-count-optimal synthesis by iterative-deepening A* over the
    /// reachable subspaces, with a node budget. Falls back to the heuristic
    /// circuit when the budget is exhausted.
    Optimal,
}

impl std::fmt::Display for PrepMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrepMethod::Heuristic => write!(f, "Heu"),
            PrepMethod::Optimal => write!(f, "Opt"),
        }
    }
}

/// Options controlling state-preparation synthesis.
#[derive(Debug, Clone)]
pub struct PrepOptions {
    /// The synthesis method.
    pub method: PrepMethod,
    /// Node budget for the optimal search before falling back to the
    /// heuristic result.
    pub search_node_budget: usize,
}

impl Default for PrepOptions {
    fn default() -> Self {
        PrepOptions {
            method: PrepMethod::Heuristic,
            search_node_budget: 2_000_000,
        }
    }
}

impl PrepOptions {
    /// Options selecting the given method with the default node budget.
    pub fn with_method(method: PrepMethod) -> Self {
        PrepOptions {
            method,
            ..PrepOptions::default()
        }
    }
}

/// A synthesized state-preparation circuit together with its provenance.
#[derive(Debug, Clone)]
pub struct PrepCircuit {
    /// The circuit acting on the code's data qubits.
    pub circuit: Circuit,
    /// Seed qubits that receive the initial Hadamard layer.
    pub seeds: Vec<usize>,
    /// Method that produced this circuit.
    pub method: PrepMethod,
    /// Whether the optimal search proved CNOT optimality (always `false` for
    /// the heuristic and for budget-exhausted optimal runs).
    pub proven_optimal: bool,
}

impl PrepCircuit {
    /// Number of CNOT gates in the circuit.
    pub fn cnot_count(&self) -> usize {
        self.circuit.stats().cnot_count
    }
}

/// Synthesizes a `|0…0⟩_L` preparation circuit for `code`.
///
/// The returned circuit is validated against a stabilizer simulation of the
/// target state; synthesis bugs therefore surface as panics rather than as
/// silently wrong downstream results.
///
/// # Panics
///
/// Panics if the synthesized circuit fails validation (this would indicate an
/// internal bug, not a user error).
///
/// # Examples
///
/// ```
/// use dftsp::prep::{synthesize_prep, PrepOptions};
/// use dftsp_code::catalog;
///
/// let prep = synthesize_prep(&catalog::steane(), &PrepOptions::default());
/// assert_eq!(prep.circuit.num_qubits(), 7);
/// assert!(prep.cnot_count() <= 9);
/// ```
pub fn synthesize_prep(code: &CssCode, options: &PrepOptions) -> PrepCircuit {
    let heuristic = heuristic_prep(code);
    let result = match options.method {
        PrepMethod::Heuristic => heuristic,
        PrepMethod::Optimal => match optimal_prep(code, options.search_node_budget) {
            Some(optimal) if optimal.cnot_count() <= heuristic.cnot_count() => optimal,
            _ => PrepCircuit {
                method: PrepMethod::Optimal,
                proven_optimal: false,
                ..heuristic
            },
        },
    };
    assert!(
        validate_prep(code, &result.circuit),
        "synthesized preparation circuit does not prepare |0…0⟩_L of {code}"
    );
    result
}

/// Checks (by stabilizer simulation) that `circuit` prepares `|0…0⟩_L` of
/// `code` from the all-zero input state.
pub fn validate_prep(code: &CssCode, circuit: &Circuit) -> bool {
    if circuit.num_qubits() != code.num_qubits() {
        return false;
    }
    let mut state = Tableau::new(code.num_qubits());
    run_circuit(&mut state, circuit, || false);
    is_logical_zero_state(&state, code)
}

/// Greedy Gaussian-elimination synthesis with fault-aware post-processing.
///
/// The X-generator matrix is brought into systematic form for several pivot
/// choices (greedy weight-minimizing plus randomized restarts), each is
/// lowered to the Hadamard-plus-fan-out circuit, and the CNOT order of every
/// candidate is then locally optimized to minimize the number of *dangerous*
/// residual errors a single circuit fault can cause. Fewer dangerous errors
/// translate directly into smaller verification and correction circuits (and
/// often remove the need for a whole verification layer), which is what the
/// heuristic of Ref. \[22\] achieves for the codes of Table I.
fn heuristic_prep(code: &CssCode) -> PrepCircuit {
    let context = ZeroStateContext::new(code.clone());
    let hx = code.stabilizers(PauliKind::X);
    // The restart seed is tuned (like any seeded heuristic) so the randomized
    // restarts reproduce the Table I Steane preparation under the workspace
    // RNG: the correction branch then needs only 3 CNOTs.
    let mut rng = StdRng::seed_from_u64(0x5EED_0003);

    let mut bases = vec![greedy_systematic_basis(hx)];
    let (rref, pivots) = hx.row_basis().rref();
    bases.push(
        pivots
            .iter()
            .enumerate()
            .map(|(row, &pivot)| (pivot, rref.row(row).clone()))
            .collect(),
    );
    for _ in 0..2 {
        bases.push(random_systematic_basis(hx, &mut rng));
    }

    let mut best: Option<((usize, usize, usize), PrepCircuit)> = None;
    for basis in bases {
        let candidate =
            build_fanout_circuit(code.num_qubits(), &basis, PrepMethod::Heuristic, false);
        let optimized = optimize_cnot_order(&context, candidate, &mut rng);
        let cost = danger_cost(&context, &optimized.circuit);
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, optimized));
        }
    }
    best.expect("at least one candidate basis exists").1
}

/// A systematic basis obtained by eliminating columns in a random order.
fn random_systematic_basis(m: &BitMatrix, rng: &mut StdRng) -> Vec<(usize, BitVec)> {
    let mut work = m.row_basis();
    let rank = work.num_rows();
    let n = work.num_cols();
    let mut columns: Vec<usize> = (0..n).collect();
    columns.shuffle(rng);
    let mut pivots: Vec<(usize, usize)> = Vec::new(); // (row, column)
    let mut used_rows = vec![false; rank];
    for &col in &columns {
        if pivots.len() == rank {
            break;
        }
        let Some(row) = (0..rank).find(|&r| !used_rows[r] && work.get(r, col)) else {
            continue;
        };
        used_rows[row] = true;
        let pivot_row = work.row(row).clone();
        for other in 0..rank {
            if other != row && work.get(other, col) {
                work.row_mut(other).xor_with(&pivot_row);
            }
        }
        pivots.push((row, col));
    }
    pivots
        .into_iter()
        .map(|(row, col)| (col, work.row(row).clone()))
        .collect()
}

/// Cost of a preparation circuit for the purpose of the heuristic: number of
/// distinct dangerous Z residuals, number of distinct dangerous X residuals,
/// CNOT count (lexicographic).
///
/// Because CNOTs propagate X and Z components independently, it suffices to
/// enumerate the pure-X and pure-Z faults at every location: the X (Z)
/// residual of any mixed fault equals that of its X (Z) component.
fn danger_cost(context: &ZeroStateContext, circuit: &Circuit) -> (usize, usize, usize) {
    use dftsp_circuit::FaultEffect;
    use dftsp_pauli::{Pauli, PauliString};

    let n = circuit.num_qubits();
    let mut dangerous_x = std::collections::HashSet::new();
    let mut dangerous_z = std::collections::HashSet::new();
    for site in enumerate_fault_sites(circuit) {
        for pauli in [Pauli::X, Pauli::Z] {
            let mut faults: Vec<PauliString> = site
                .qubits
                .iter()
                .map(|&q| PauliString::single(n, q, pauli))
                .collect();
            if site.qubits.len() == 2 {
                let mut both = PauliString::identity(n);
                both.set(site.qubits[0], pauli);
                both.set(site.qubits[1], pauli);
                faults.push(both);
            }
            for fault in faults {
                let (residual, _) = propagate_fault(circuit, &site, &FaultEffect::Pauli(fault));
                if context.is_dangerous(PauliKind::X, residual.x_part()) {
                    dangerous_x.insert(residual.x_part().to_bits());
                }
                if context.is_dangerous(PauliKind::Z, residual.z_part()) {
                    dangerous_z.insert(residual.z_part().to_bits());
                }
            }
        }
    }
    (
        dangerous_z.len(),
        dangerous_x.len(),
        circuit.stats().cnot_count,
    )
}

/// Local search over the CNOT order of a fan-out preparation circuit.
///
/// Any permutation of the fan-out CNOTs prepares the same state (every CNOT
/// control is a seed and every target a non-seed, so the GF(2) transfer
/// matrix is order-independent), but the propagated single-fault errors — and
/// hence the verification cost — depend strongly on the order.
fn optimize_cnot_order(
    context: &ZeroStateContext,
    prep: PrepCircuit,
    rng: &mut StdRng,
) -> PrepCircuit {
    let hadamards: Vec<Gate> = prep
        .circuit
        .gates()
        .iter()
        .copied()
        .filter(|g| matches!(g, Gate::H { .. }))
        .collect();
    let mut cnots: Vec<Gate> = prep
        .circuit
        .gates()
        .iter()
        .copied()
        .filter(|g| matches!(g, Gate::Cnot { .. }))
        .collect();
    let n = prep.circuit.num_qubits();
    let rebuild = |cnots: &[Gate]| {
        let mut c = Circuit::new(n);
        for &g in &hadamards {
            c.push(g);
        }
        for &g in cnots {
            c.push(g);
        }
        c
    };

    let mut best_circuit = rebuild(&cnots);
    let mut best_cost = danger_cost(context, &best_circuit);
    let iterations = 30 * cnots.len().max(1);
    for _ in 0..iterations {
        if cnots.len() < 2 || best_cost.0 == 0 && best_cost.1 == 0 {
            break;
        }
        let i = rng.gen_range(0..cnots.len());
        let j = rng.gen_range(0..cnots.len());
        if i == j {
            continue;
        }
        cnots.swap(i, j);
        let candidate = rebuild(&cnots);
        let cost = danger_cost(context, &candidate);
        if cost <= best_cost {
            best_cost = cost;
            best_circuit = candidate;
        } else {
            cnots.swap(i, j);
        }
    }
    PrepCircuit {
        circuit: best_circuit,
        ..prep
    }
}

/// Systematic basis `(rows, pivots)` of the row space of `m` with greedily
/// minimized total weight.
#[allow(clippy::needless_range_loop)]
fn greedy_systematic_basis(m: &BitMatrix) -> Vec<(usize, BitVec)> {
    let mut work = m.row_basis();
    let rank = work.num_rows();
    let n = work.num_cols();
    let mut pivots: Vec<Option<usize>> = vec![None; rank];
    let mut used_cols = vec![false; n];
    for step in 0..rank {
        // Choose (row, col) among unpivoted rows / unused columns minimizing
        // the total weight after elimination.
        let mut best: Option<(usize, usize, usize)> = None;
        for row in 0..rank {
            if pivots[row].is_some() {
                continue;
            }
            for col in work.row(row).support() {
                if used_cols[col] {
                    continue;
                }
                let mut total = 0usize;
                for other in 0..rank {
                    if other == row {
                        total += work.row(other).weight();
                    } else if work.get(other, col) {
                        total += (&work.row(other).clone() ^ work.row(row)).weight();
                    } else {
                        total += work.row(other).weight();
                    }
                }
                if best.is_none_or(|(_, _, t)| total < t) {
                    best = Some((row, col, total));
                }
            }
        }
        let (row, col, _) = best.expect("full-rank matrix always has a pivot");
        pivots[row] = Some(col);
        used_cols[col] = true;
        let pivot_row = work.row(row).clone();
        for other in 0..rank {
            if other != row && work.get(other, col) {
                work.row_mut(other).xor_with(&pivot_row);
            }
        }
        let _ = step;
    }
    (0..rank)
        .map(|row| {
            (
                pivots[row].expect("every row received a pivot"),
                work.row(row).clone(),
            )
        })
        .collect()
}

/// Builds the Hadamard-plus-fan-out circuit for a systematic basis.
fn build_fanout_circuit(
    n: usize,
    basis: &[(usize, BitVec)],
    method: PrepMethod,
    proven_optimal: bool,
) -> PrepCircuit {
    let mut circuit = Circuit::new(n);
    let mut seeds = Vec::with_capacity(basis.len());
    for &(pivot, _) in basis {
        circuit.h(pivot);
        seeds.push(pivot);
    }
    for &(pivot, ref row) in basis {
        for q in row.iter_ones() {
            if q != pivot {
                circuit.cnot(pivot, q);
            }
        }
    }
    PrepCircuit {
        circuit,
        seeds,
        method,
        proven_optimal,
    }
}

/// CNOT-count-optimal synthesis via A* search over subspaces.
///
/// The search runs backwards: starting from `rowspace(H_X)` it applies column
/// operations (the inverse action of a CNOT on the spanned subspace) until the
/// subspace is spanned by unit vectors, which corresponds to the state right
/// after the Hadamard layer. Returns `None` if the node budget is exhausted.
fn optimal_prep(code: &CssCode, node_budget: usize) -> Option<PrepCircuit> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = code.num_qubits();
    let target = code.stabilizers(PauliKind::X).row_basis();
    let rank = target.num_rows();

    // States are canonical (RREF) bases of subspaces; edges are column
    // operations. `parents` records how each state was first reached so the
    // path can be reconstructed.
    let (start_canonical, _) = target.rref();
    let start_key = canonical_key(&start_canonical);
    let mut best_g: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut parents: ParentMap = HashMap::new();
    let mut open: BinaryHeap<Reverse<(usize, usize, Vec<u8>)>> = BinaryHeap::new();

    best_g.insert(start_key.clone(), 0);
    open.push(Reverse((
        subspace_heuristic(&start_canonical, rank),
        0,
        start_key.clone(),
    )));
    let mut nodes = 0usize;

    while let Some(Reverse((_, g, key))) = open.pop() {
        nodes += 1;
        if nodes > node_budget {
            return None;
        }
        if best_g.get(&key).copied().unwrap_or(usize::MAX) < g {
            continue; // stale heap entry
        }
        let basis = key_to_matrix(&key, rank, n);
        if is_goal(&basis) {
            let path = reconstruct_path(&parents, &start_key, &key);
            return Some(reconstruct_circuit(code, &path));
        }
        for control in 0..n {
            for target_col in 0..n {
                if control == target_col {
                    continue;
                }
                let mut next = basis.clone();
                let mut changed = false;
                for row in 0..rank {
                    if next.get(row, control) {
                        let v = next.get(row, target_col);
                        next.set(row, target_col, !v);
                        changed = true;
                    }
                }
                if !changed {
                    continue;
                }
                let (next_canonical, _) = next.rref();
                let next_key = canonical_key(&next_canonical);
                let next_g = g + 1;
                if best_g.get(&next_key).copied().unwrap_or(usize::MAX) <= next_g {
                    continue;
                }
                best_g.insert(next_key.clone(), next_g);
                parents.insert(next_key.clone(), (key.clone(), (control, target_col)));
                let f = next_g + subspace_heuristic(&next_canonical, rank);
                open.push(Reverse((f, next_g, next_key)));
            }
        }
    }
    None
}

/// Admissible lower bound on the number of remaining CNOTs for a subspace
/// with the given basis: every CNOT changes one column of the basis matrix,
/// so it can reduce the number of distinct nonzero columns by at most one and
/// the total weight by at most `rank`.
fn subspace_heuristic(basis: &BitMatrix, rank: usize) -> usize {
    let n = basis.num_cols();
    let mut nonzero_cols = 0usize;
    let mut total_weight = 0usize;
    for col in 0..n {
        let w = basis.iter().filter(|row| row.get(col)).count();
        if w > 0 {
            nonzero_cols += 1;
        }
        total_weight += w;
    }
    let by_cols = nonzero_cols.saturating_sub(rank);
    let by_weight = total_weight.saturating_sub(rank).div_ceil(rank.max(1));
    by_cols.max(by_weight)
}

/// Reverse-search parent map: canonical state key to (predecessor key,
/// column operation).
type ParentMap = HashMap<Vec<u8>, (Vec<u8>, (usize, usize))>;

fn canonical_key(rref_basis: &BitMatrix) -> Vec<u8> {
    let mut key = Vec::new();
    for row in rref_basis.iter() {
        key.extend(row.to_bits());
    }
    key
}

fn key_to_matrix(key: &[u8], rank: usize, n: usize) -> BitMatrix {
    BitMatrix::from_rows((0..rank).map(|r| BitVec::from_bits(&key[r * n..(r + 1) * n])))
}

fn reconstruct_path(parents: &ParentMap, start_key: &[u8], goal_key: &[u8]) -> Vec<(usize, usize)> {
    let mut path = Vec::new();
    let mut current = goal_key.to_vec();
    while current != start_key {
        let (prev, op) = parents
            .get(&current)
            .expect("every reached state has a parent")
            .clone();
        path.push(op);
        current = prev;
    }
    path.reverse();
    path
}

fn is_goal(basis: &BitMatrix) -> bool {
    basis.iter().all(|row| row.weight() == 1)
}

/// Replays the reverse-search path to produce the forward circuit.
fn reconstruct_circuit(code: &CssCode, reverse_path: &[(usize, usize)]) -> PrepCircuit {
    let n = code.num_qubits();
    // Apply the reverse path to the target basis to recover the seed columns.
    let mut basis = code.stabilizers(PauliKind::X).row_basis();
    for &(control, target) in reverse_path {
        for row in 0..basis.num_rows() {
            if basis.get(row, control) {
                let v = basis.get(row, target);
                basis.set(row, target, !v);
            }
        }
    }
    let (seed_basis, _) = basis.rref();
    let seeds: Vec<usize> = seed_basis
        .iter()
        .map(|row| row.first_one().expect("goal rows are unit vectors"))
        .collect();

    let mut circuit = Circuit::new(n);
    for &s in &seeds {
        circuit.h(s);
    }
    // The forward CNOT sequence is the reverse path in reverse order.
    for &(control, target) in reverse_path.iter().rev() {
        circuit.cnot(control, target);
    }
    PrepCircuit {
        circuit,
        seeds,
        method: PrepMethod::Optimal,
        proven_optimal: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftsp_code::catalog;

    #[test]
    fn heuristic_prepares_all_catalog_distance3_codes() {
        for code in [
            catalog::steane(),
            catalog::shor(),
            catalog::surface3(),
            catalog::hamming_15_7(),
        ] {
            let prep = synthesize_prep(&code, &PrepOptions::default());
            assert!(validate_prep(&code, &prep.circuit), "{}", code.name());
            assert_eq!(prep.seeds.len(), code.stabilizers(PauliKind::X).num_rows());
        }
    }

    #[test]
    fn heuristic_steane_cnot_count_is_reasonable() {
        let prep = synthesize_prep(&catalog::steane(), &PrepOptions::default());
        // The plain RREF fan-out needs 9 CNOTs; the greedy pivot selection must
        // not do worse.
        assert!(prep.cnot_count() <= 9, "got {}", prep.cnot_count());
        assert_eq!(prep.method, PrepMethod::Heuristic);
        assert!(!prep.proven_optimal);
    }

    #[test]
    fn optimal_steane_is_at_most_eight_cnots() {
        let options = PrepOptions::with_method(PrepMethod::Optimal);
        let prep = synthesize_prep(&catalog::steane(), &options);
        assert!(validate_prep(&catalog::steane(), &prep.circuit));
        // The known CNOT-optimal Steane |0⟩_L encoder uses 8 CNOTs.
        assert!(prep.cnot_count() <= 8, "got {}", prep.cnot_count());
    }

    #[test]
    fn optimal_never_worse_than_heuristic() {
        for code in [catalog::steane(), catalog::surface3()] {
            let heu = synthesize_prep(&code, &PrepOptions::default());
            let opt = synthesize_prep(&code, &PrepOptions::with_method(PrepMethod::Optimal));
            assert!(opt.cnot_count() <= heu.cnot_count(), "{}", code.name());
        }
    }

    #[test]
    fn optimal_falls_back_gracefully_on_tiny_budget() {
        let options = PrepOptions {
            method: PrepMethod::Optimal,
            search_node_budget: 1,
        };
        let prep = synthesize_prep(&catalog::steane(), &options);
        assert!(validate_prep(&catalog::steane(), &prep.circuit));
        assert!(!prep.proven_optimal);
    }

    #[test]
    fn validate_rejects_wrong_circuit() {
        let code = catalog::steane();
        let empty = Circuit::new(7);
        assert!(!validate_prep(&code, &empty));
        let narrow = Circuit::new(5);
        assert!(!validate_prep(&code, &narrow));
    }

    #[test]
    fn seeds_match_hadamard_gates() {
        let prep = synthesize_prep(&catalog::shor(), &PrepOptions::default());
        let hadamards = prep
            .circuit
            .gates()
            .iter()
            .filter(|g| matches!(g, dftsp_circuit::Gate::H { .. }))
            .count();
        assert_eq!(hadamards, prep.seeds.len());
    }
}
