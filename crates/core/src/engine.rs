//! The synthesis engine: a configured session object around the full
//! pipeline of Fig. 3.
//!
//! [`SynthesisEngine`] (built via [`EngineBuilder`]) owns the synthesis
//! configuration — preparation method, flag policy, verification/correction
//! budgets, SAT-backend choice and worker-thread count — and exposes
//!
//! * [`SynthesisEngine::synthesize`] — one code to a [`SynthesisReport`]
//!   (protocol plus per-stage SAT statistics, timings and branch counts),
//! * [`SynthesisEngine::synthesize_all`] — a whole code catalog, fanned out
//!   over worker threads,
//! * [`SynthesisEngine::globally_optimize`] — the paper's global
//!   optimization over all minimal verification circuits.
//!
//! All SAT-driven steps run through a [`SatSession`], which selects the
//! [`BackendChoice`] and the [`LadderMode`] and accumulates [`SatStats`].
//! With the default incremental mode each optimization ladder keeps one live
//! solver (see [`IncrementalSession`]) so learned clauses survive between
//! cardinality bounds; per-ladder reuse shows up as
//! [`SatStats::warm_queries`] and [`SatStats::retained_clauses`] in the
//! report. The steps share a [`FaultCache`] so the exhaustive single-fault
//! enumeration is not repeated for unchanged partial protocols, and an
//! optional [`ReportStore`] ([`EngineBuilder::report_store`]) serves repeat
//! catalog requests without any solving at all.
//!
//! Every fan-out draws from the one [`EngineBuilder::threads`] budget:
//! [`SynthesisEngine::synthesize_all`] fans codes out over worker threads;
//! within one code the per-`u` verification ladders (each speculatively
//! probing a second bound on a sibling session), the per-branch correction
//! solves and the X-correction/Z-verification stage overlap run
//! concurrently; [`SynthesisEngine::globally_optimize`] evaluates all
//! candidate verification circuits of a layer in parallel. Nested levels
//! receive a budget divided by `par::divide_threads` so they never multiply
//! past `threads`. Results are joined in deterministic order and per-worker
//! [`SatStats`] merged in input order, so reports are bit-identical for
//! every thread count — see the crate-level "Parallelism" section of
//! [`crate`] for the full contract.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dftsp_code::CssCode;
use dftsp_f2::BitVec;
use dftsp_pauli::PauliKind;
use dftsp_sat::{
    BackendChoice, IncrementalSession, LadderMode, PortfolioStats, SatBackend, SolveResult,
};

use crate::cache::FaultCache;
use crate::ftcheck::{check_fault_tolerance_order_with, FtCheckOptions, FtOrderReport};
use crate::global::GlobalResult;
use crate::metrics::ProtocolMetrics;
use crate::par::{divide_threads, parallel_map_indexed};
use crate::prep::{synthesize_prep, PrepCircuit, PrepMethod, PrepOptions};
use crate::protocol::DeterministicProtocol;
use crate::service::{SynthesisRequest, SynthesisService};
use crate::store::{ReportKey, ReportStore};
use crate::synthesis::{
    attach_correction_branches_with, attach_order_corrections, build_layer_from_verification,
    dangerous_errors_excluding_flagged, dangerous_errors_from_records, FlagPolicy, SynthesisError,
    SynthesisOptions,
};
use crate::verify::{enumerate_minimal_verifications_threaded, synthesize_verification_threaded};
use crate::workload::WorkloadKind;
use crate::ZeroStateContext;

/// Accumulated SAT statistics of one synthesis stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SatStats {
    /// Number of SAT queries issued.
    pub calls: u64,
    /// Queries answered satisfiable.
    pub sat: u64,
    /// Queries answered unsatisfiable.
    pub unsat: u64,
    /// Queries interrupted by the conflict budget.
    pub interrupted: u64,
    /// Total decisions across all queries.
    pub decisions: u64,
    /// Total unit propagations across all queries.
    pub propagations: u64,
    /// Total conflicts across all queries.
    pub conflicts: u64,
    /// Total learned clauses across all queries.
    pub learned_clauses: u64,
    /// Total restarts across all queries.
    pub restarts: u64,
    /// Total variables across all query formulas. Incremental ladders count
    /// each variable once; the fresh-backend path re-counts the full formula
    /// per query.
    pub variables: u64,
    /// Total clauses across all query formulas (same counting convention as
    /// [`SatStats::variables`]).
    pub clauses: u64,
    /// Queries answered on a warm solver, i.e. on an incremental session that
    /// had already solved at least once (always 0 on the fresh-backend path).
    pub warm_queries: u64,
    /// Clauses (original + learned) already present when warm queries
    /// started — the encoding and learning work the ladder did not redo.
    pub retained_clauses: u64,
    /// Learned clauses deleted by the solver's LBD-driven clause-database
    /// reduction across all queries.
    pub reduced_clauses: u64,
    /// Largest clause database (original + learned) any single query's
    /// solver ever held. Combined by maximum, not by sum.
    pub peak_clause_db: u64,
    /// Literals stripped from learned clauses by recursive minimization
    /// across all queries.
    pub minimized_literals: u64,
    /// Per-lane portfolio attribution (races, solo runs, wins, losses,
    /// cancelled work and per-backend time). All-zero unless a
    /// [`BackendChoice::Portfolio`] backend answered at least one query.
    pub portfolio: PortfolioStats,
}

impl SatStats {
    /// Adds the counters of `other` into `self`.
    pub fn absorb(&mut self, other: &SatStats) {
        self.calls += other.calls;
        self.sat += other.sat;
        self.unsat += other.unsat;
        self.interrupted += other.interrupted;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.learned_clauses += other.learned_clauses;
        self.restarts += other.restarts;
        self.variables += other.variables;
        self.clauses += other.clauses;
        self.warm_queries += other.warm_queries;
        self.retained_clauses += other.retained_clauses;
        self.reduced_clauses += other.reduced_clauses;
        self.peak_clause_db = self.peak_clause_db.max(other.peak_clause_db);
        self.minimized_literals += other.minimized_literals;
        self.portfolio.absorb(&other.portfolio);
    }

    /// Unit propagations per decision across all recorded queries — the
    /// classic measure of how much work each branch triggers. Returns 0 when
    /// no decision was made.
    pub fn propagations_per_decision(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.propagations as f64 / self.decisions as f64
        }
    }
}

impl std::fmt::Display for SatStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "calls={} (sat={} unsat={} interrupted={} warm={}) vars={} clauses={} retained={} reduced={} peak_db={} conflicts={} decisions={} propagations={} ({:.1}/decision) minimized={}",
            self.calls,
            self.sat,
            self.unsat,
            self.interrupted,
            self.warm_queries,
            self.variables,
            self.clauses,
            self.retained_clauses,
            self.reduced_clauses,
            self.peak_clause_db,
            self.conflicts,
            self.decisions,
            self.propagations,
            self.propagations_per_decision(),
            self.minimized_literals,
        )?;
        if !self.portfolio.is_empty() {
            write!(f, " portfolio[{}]", self.portfolio)?;
        }
        Ok(())
    }
}

/// A SAT-solving session: selects the backend and ladder mode for the
/// SAT-driven synthesis steps and accumulates statistics across queries.
///
/// The SAT-driven synthesis steps ([`crate::verify`], [`crate::correct`])
/// take a session instead of constructing a hard-wired solver, which is what
/// makes the solver pluggable end to end. With the default
/// [`LadderMode::Incremental`], each optimization ladder opens one
/// [`IncrementalSession`] ([`SatSession::incremental`]) and answers its
/// bound-tightening queries on the warm solver; with [`LadderMode::Fresh`]
/// every query instantiates its own backend ([`SatSession::instance`]).
#[derive(Debug, Clone, Default)]
pub struct SatSession {
    choice: BackendChoice,
    mode: LadderMode,
    stats: SatStats,
}

impl SatSession {
    /// A session using the given backend and the default (incremental)
    /// ladder mode.
    pub fn new(choice: BackendChoice) -> Self {
        SatSession::with_mode(choice, LadderMode::default())
    }

    /// A session using the given backend and ladder mode.
    pub fn with_mode(choice: BackendChoice, mode: LadderMode) -> Self {
        SatSession {
            choice,
            mode,
            stats: SatStats::default(),
        }
    }

    /// The configured backend choice.
    pub fn choice(&self) -> BackendChoice {
        self.choice
    }

    /// The configured ladder mode.
    pub fn mode(&self) -> LadderMode {
        self.mode
    }

    /// Instantiates a fresh backend for one encoding/query round.
    ///
    /// This allocates a new boxed solver; ladders should call it once per
    /// ladder (via [`SatSession::incremental`]) rather than once per query —
    /// the fresh-backend path only keeps per-query instantiation because full
    /// query independence is its purpose.
    pub fn instance(&self) -> Box<dyn SatBackend> {
        self.choice.instantiate()
    }

    /// Opens an incremental session on one freshly instantiated backend, to
    /// be reused for a whole optimization ladder.
    pub fn incremental(&self) -> IncrementalSession<Box<dyn SatBackend>> {
        IncrementalSession::new(self.instance())
    }

    /// Instantiates a fresh backend on the *canonical* choice: for a racing
    /// portfolio this is the portfolio's primary lane alone, for every other
    /// choice it is the choice itself ([`BackendChoice::canonical`]).
    ///
    /// Racing portfolios return the model of whichever engine happened to
    /// finish first, so ladders that race intermediate bound probes must
    /// re-extract their *final* solution on this backend to keep reports
    /// bit-identical regardless of race winners. The optimum bound itself is
    /// winner-independent (feasibility is monotone in the bound), so the
    /// canonical extraction solves exactly one deterministic query.
    pub fn canonical_instance(&self) -> Box<dyn SatBackend> {
        self.choice.canonical().instantiate()
    }

    /// Opens an incremental session on a canonical backend
    /// (see [`SatSession::canonical_instance`]).
    pub fn canonical_incremental(&self) -> IncrementalSession<Box<dyn SatBackend>> {
        IncrementalSession::new(self.canonical_instance())
    }

    /// Solves an incremental session under its active guards, recording the
    /// query (with warm/cold attribution and per-query statistics deltas) in
    /// the session statistics. Returns `None` when the budget was exhausted.
    pub fn solve_incremental(
        &mut self,
        incremental: &mut IncrementalSession<Box<dyn SatBackend>>,
        max_conflicts: Option<u64>,
    ) -> Option<SolveResult> {
        let warm = incremental.queries() > 0;
        let before = incremental.stats();
        let portfolio_before = incremental.portfolio_stats().unwrap_or_default();
        let clauses_before = incremental.num_clauses();
        let result = incremental.solve(max_conflicts);
        let after = incremental.stats();

        self.stats.calls += 1;
        match result {
            Some(SolveResult::Sat) => self.stats.sat += 1,
            Some(SolveResult::Unsat) => self.stats.unsat += 1,
            None => self.stats.interrupted += 1,
        }
        self.stats.decisions += after.decisions - before.decisions;
        self.stats.propagations += after.propagations - before.propagations;
        self.stats.conflicts += after.conflicts - before.conflicts;
        self.stats.learned_clauses += after.learned_clauses - before.learned_clauses;
        self.stats.restarts += after.restarts - before.restarts;
        self.stats.reduced_clauses += after.reduced_clauses - before.reduced_clauses;
        self.stats.minimized_literals += after.minimized_literals - before.minimized_literals;
        self.stats.peak_clause_db = self.stats.peak_clause_db.max(after.peak_clause_db);
        // Count each variable and clause of the live session exactly once;
        // warm queries additionally credit the clauses they did not rebuild.
        let (new_vars, new_clauses) = incremental.formula_growth();
        self.stats.variables += new_vars as u64;
        self.stats.clauses += new_clauses as u64;
        if warm {
            self.stats.warm_queries += 1;
            self.stats.retained_clauses += clauses_before as u64;
        }
        if let Some(portfolio_after) = incremental.portfolio_stats() {
            self.stats
                .portfolio
                .absorb(&portfolio_after.since(&portfolio_before));
        }
        result
    }

    /// Solves `backend` (optionally under a conflict budget), recording the
    /// query in the session statistics. Returns `None` when the budget was
    /// exhausted.
    pub fn solve(
        &mut self,
        backend: &mut dyn SatBackend,
        max_conflicts: Option<u64>,
    ) -> Option<SolveResult> {
        let result = match max_conflicts {
            None => Some(backend.solve()),
            Some(budget) => backend.solve_limited(&[], budget),
        };
        let stats = backend.stats();
        self.stats.calls += 1;
        match result {
            Some(SolveResult::Sat) => self.stats.sat += 1,
            Some(SolveResult::Unsat) => self.stats.unsat += 1,
            None => self.stats.interrupted += 1,
        }
        self.stats.decisions += stats.decisions;
        self.stats.propagations += stats.propagations;
        self.stats.conflicts += stats.conflicts;
        self.stats.learned_clauses += stats.learned_clauses;
        self.stats.restarts += stats.restarts;
        self.stats.reduced_clauses += stats.reduced_clauses;
        self.stats.minimized_literals += stats.minimized_literals;
        self.stats.peak_clause_db = self.stats.peak_clause_db.max(stats.peak_clause_db);
        self.stats.variables += backend.num_vars() as u64;
        self.stats.clauses += backend.num_clauses() as u64;
        if let Some(portfolio) = backend.portfolio_stats() {
            self.stats.portfolio.absorb(&portfolio);
        }
        result
    }

    /// Merges the accumulated statistics of another session into this one.
    ///
    /// Used when per-branch correction solves fan out over worker threads:
    /// each worker runs its own session and the workers' statistics are
    /// absorbed back in deterministic branch order, so the totals are
    /// bit-identical to a serial run.
    pub fn absorb(&mut self, stats: &SatStats) {
        self.stats.absorb(stats);
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> SatStats {
        self.stats
    }

    /// Returns the accumulated statistics and resets the counters (used for
    /// per-stage attribution).
    pub fn take_stats(&mut self) -> SatStats {
        std::mem::take(&mut self.stats)
    }
}

/// Identifies a synthesis stage in a [`SynthesisReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// State-preparation synthesis (step (a); no SAT involved).
    Prep,
    /// Verification synthesis for one error sector (step (b)).
    Verification(PauliKind),
    /// Correction synthesis for one layer (steps (d)/(e)).
    Correction(PauliKind),
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stage::Prep => write!(f, "prep"),
            Stage::Verification(kind) => write!(f, "{kind}-verification"),
            Stage::Correction(kind) => write!(f, "{kind}-correction"),
        }
    }
}

/// Timing, SAT statistics and branch count of one synthesis stage.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Which stage this is.
    pub stage: Stage,
    /// Wall-clock time spent in the stage.
    pub time: Duration,
    /// SAT statistics of the stage (all-zero for SAT-free stages).
    pub sat: SatStats,
    /// Number of correction branches synthesized in the stage (0 for
    /// non-correction stages).
    pub branches: usize,
}

/// Result of [`SynthesisEngine::synthesize`]: the protocol plus structured
/// per-stage statistics.
#[derive(Debug, Clone)]
pub struct SynthesisReport {
    /// Name of the synthesized code (the effective code for cat-state
    /// workloads, e.g. `Cat-4`).
    pub code_name: String,
    /// The workload this protocol prepares.
    pub workload: WorkloadKind,
    /// The synthesized deterministic protocol.
    pub protocol: DeterministicProtocol,
    /// Per-stage timings, SAT statistics and branch counts.
    pub stages: Vec<StageReport>,
    /// Fault-enumeration cache hits (enumerations avoided).
    pub fault_cache_hits: u64,
    /// Fault-enumeration cache misses (enumerations performed).
    pub fault_cache_misses: u64,
    /// Total wall-clock synthesis time.
    pub total_time: Duration,
}

impl SynthesisReport {
    /// Total number of correction branches across all layers.
    pub fn branch_count(&self) -> usize {
        self.protocol.layers.iter().map(|l| l.branches.len()).sum()
    }

    /// SAT statistics summed over all stages.
    pub fn sat_totals(&self) -> SatStats {
        let mut totals = SatStats::default();
        for stage in &self.stages {
            totals.absorb(&stage.sat);
        }
        totals
    }

    /// The report of one stage, if that stage ran.
    pub fn stage(&self, stage: Stage) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// Table-I metrics of the synthesized protocol.
    pub fn metrics(&self) -> ProtocolMetrics {
        ProtocolMetrics::from_protocol(&self.protocol)
    }
}

impl std::fmt::Display for SynthesisReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} layers, {} branches in {:.1?} (sat: {})",
            self.code_name,
            self.protocol.layers.len(),
            self.branch_count(),
            self.total_time,
            self.sat_totals(),
        )
    }
}

/// Result of [`SynthesisEngine::globally_optimize`]: the best protocol plus
/// the same structured statistics as [`SynthesisReport`].
#[derive(Debug, Clone)]
pub struct GlobalReport {
    /// Name of the synthesized code.
    pub code_name: String,
    /// The protocol with the lowest expected cost.
    pub protocol: DeterministicProtocol,
    /// Number of candidate verification circuits explored per layer.
    pub candidates_per_layer: Vec<usize>,
    /// Per-stage timings, SAT statistics and branch counts. Correction
    /// stages carry only the *winning* candidate's statistics; the work
    /// spent on losing and failed candidates is aggregated in
    /// [`Self::explored`].
    pub stages: Vec<StageReport>,
    /// Aggregate SAT statistics of every candidate correction synthesis
    /// (winner included), absorbed in layer order then candidate order —
    /// bit-identical at every thread count.
    pub explored: SatStats,
    /// Total wall-clock synthesis time.
    pub total_time: Duration,
}

impl GlobalReport {
    /// Converts into the classic [`GlobalResult`] shape.
    pub fn into_result(self) -> GlobalResult {
        GlobalResult {
            protocol: self.protocol,
            candidates_per_layer: self.candidates_per_layer,
        }
    }
}

/// Builder for a [`SynthesisEngine`].
///
/// # Examples
///
/// ```
/// use dftsp::{BackendChoice, FlagPolicy, PrepMethod, SynthesisEngine};
///
/// let engine = SynthesisEngine::builder()
///     .prep_method(PrepMethod::Heuristic)
///     .flag_policy(FlagPolicy::Auto)
///     .max_verification_measurements(4)
///     .conflict_budget(1_000_000)
///     .solver(BackendChoice::Cdcl)
///     .threads(2)
///     .build();
/// assert_eq!(engine.threads(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    options: SynthesisOptions,
    workload: WorkloadKind,
    solver: BackendChoice,
    ladder: LadderMode,
    store: Option<Arc<dyn ReportStore>>,
    threads: Option<usize>,
}

impl EngineBuilder {
    /// A builder with all defaults (heuristic prep, automatic flags,
    /// unlimited conflict budgets, the CDCL backend, hardware parallelism).
    pub fn new() -> Self {
        EngineBuilder::default()
    }

    /// Replaces the complete per-step option set.
    pub fn options(mut self, options: SynthesisOptions) -> Self {
        self.options = options;
        self
    }

    /// Selects the state-preparation method (step (a)).
    pub fn prep_method(mut self, method: PrepMethod) -> Self {
        self.options.prep.method = method;
        self
    }

    /// Replaces the state-preparation options.
    pub fn prep(mut self, prep: PrepOptions) -> Self {
        self.options.prep = prep;
        self
    }

    /// Selects the flagging strategy (step (c)).
    pub fn flag_policy(mut self, policy: FlagPolicy) -> Self {
        self.options.flag_policy = policy;
        self
    }

    /// Selects the synthesis workload: zero-state preparation of the
    /// requested code (the default) or cat-state preparation, which runs the
    /// same pipeline against the GHZ stabilizer group regardless of the
    /// requested code (see [`WorkloadKind`]).
    pub fn workload(mut self, workload: WorkloadKind) -> Self {
        self.workload = workload;
        self
    }

    /// Requests a fault-tolerance order: every set of `s ≤ t` faults must
    /// leave reduced residual weight ≤ `s` per CSS sector. The default
    /// (`None`) targets order 1 — the classic single-fault pipeline;
    /// orders above 1 run verification/correction repair rounds after the
    /// standard pipeline and fail with
    /// [`SynthesisError::OrderNotReached`] if they do not converge.
    pub fn target_order(mut self, order: usize) -> Self {
        self.options.target_order = Some(order.max(1));
        self
    }

    /// Bounds the number of verification measurements per layer (step (b)).
    pub fn max_verification_measurements(mut self, max: usize) -> Self {
        self.options.verification.max_measurements = max;
        self
    }

    /// Bounds the number of additional measurements per correction branch
    /// (step (d)).
    pub fn max_correction_measurements(mut self, max: usize) -> Self {
        self.options.correction.max_measurements = max;
        self
    }

    /// Caps how many equivalent minimal verifications the global optimization
    /// explores per layer.
    pub fn enumeration_cap(mut self, cap: usize) -> Self {
        self.options.verification.enumeration_cap = cap;
        self
    }

    /// Sets the per-query SAT conflict budget for both verification and
    /// correction synthesis. Exceeding it yields the typed
    /// `ConflictBudgetExceeded` errors instead of an unbounded solve.
    pub fn conflict_budget(mut self, max_conflicts: u64) -> Self {
        self.options.verification.max_conflicts = Some(max_conflicts);
        self.options.correction.max_conflicts = Some(max_conflicts);
        self
    }

    /// Sets the per-query conflict budget of verification synthesis only.
    pub fn verification_conflict_budget(mut self, max_conflicts: u64) -> Self {
        self.options.verification.max_conflicts = Some(max_conflicts);
        self
    }

    /// Sets the per-query conflict budget of correction synthesis only.
    pub fn correction_conflict_budget(mut self, max_conflicts: u64) -> Self {
        self.options.correction.max_conflicts = Some(max_conflicts);
        self
    }

    /// Selects the SAT backend all synthesis queries run on.
    pub fn solver(mut self, choice: BackendChoice) -> Self {
        self.solver = choice;
        self
    }

    /// Selects how the optimization ladders drive the solver: incremental
    /// sessions with guarded, retractable bounds (the default), or a fresh
    /// backend per query for cross-checking.
    pub fn ladder_mode(mut self, mode: LadderMode) -> Self {
        self.ladder = mode;
        self
    }

    /// Attaches a persistent [`ReportStore`]: `synthesize`/`synthesize_all`
    /// consult it (keyed by code + configuration fingerprint) before solving
    /// and persist fresh reports after, so repeat catalog requests are served
    /// without SAT work.
    pub fn report_store(mut self, store: Arc<dyn ReportStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Sets the worker-thread count used by
    /// [`SynthesisEngine::synthesize_all`] (one code per worker) and by the
    /// per-branch correction fan-out inside a single code's synthesis
    /// (defaults to the available hardware parallelism). Results are joined
    /// in deterministic order, so reports are bit-identical for every thread
    /// count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Finalizes the engine.
    pub fn build(self) -> SynthesisEngine {
        let threads = self
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()));
        SynthesisEngine {
            options: self.options,
            workload: self.workload,
            solver: self.solver,
            ladder: self.ladder,
            store: self.store,
            threads,
        }
    }
}

/// A configured synthesis session for the deterministic fault-tolerant
/// state-preparation pipeline (Fig. 3 of the paper).
///
/// # Examples
///
/// ```
/// use dftsp::SynthesisEngine;
/// use dftsp_code::catalog;
///
/// let engine = SynthesisEngine::default();
/// let report = engine.synthesize(&catalog::steane())?;
/// assert_eq!(report.protocol.layers.len(), 1);
/// assert!(report.sat_totals().calls > 0);
/// # Ok::<(), dftsp::SynthesisError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SynthesisEngine {
    options: SynthesisOptions,
    workload: WorkloadKind,
    solver: BackendChoice,
    ladder: LadderMode,
    store: Option<Arc<dyn ReportStore>>,
    threads: usize,
}

impl Default for SynthesisEngine {
    fn default() -> Self {
        SynthesisEngine::builder().build()
    }
}

impl SynthesisEngine {
    /// Starts building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// An engine with the given per-step options and defaults elsewhere.
    pub fn with_options(options: SynthesisOptions) -> Self {
        SynthesisEngine::builder().options(options).build()
    }

    /// The per-step synthesis options.
    pub fn options(&self) -> &SynthesisOptions {
        &self.options
    }

    /// The configured synthesis workload.
    pub fn workload(&self) -> WorkloadKind {
        self.workload
    }

    /// The configured SAT backend.
    pub fn solver(&self) -> BackendChoice {
        self.solver
    }

    /// The configured ladder mode.
    pub fn ladder_mode(&self) -> LadderMode {
        self.ladder
    }

    /// The attached report store, if any.
    pub fn report_store(&self) -> Option<&Arc<dyn ReportStore>> {
        self.store.as_ref()
    }

    /// The store key identifying `code` under this engine's configuration
    /// (workload, synthesis options, backend and ladder mode). For cat-state
    /// workloads the key fingerprints the effective (GHZ) code, so cached
    /// cat-state reports are shared across requested codes but never
    /// confused with zero-state reports.
    pub fn report_key(&self, code: &CssCode) -> ReportKey {
        let effective = self.workload.effective_code(code);
        ReportKey::new(
            &effective,
            self.workload,
            &self.options,
            self.solver,
            self.ladder,
        )
    }

    /// The worker-thread count used by [`SynthesisEngine::synthesize_all`]
    /// and by the per-branch correction fan-out within one code's synthesis.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A copy of this engine with the given overrides applied — the seam
    /// [`crate::SynthesisService`] uses to honor per-request configuration.
    pub(crate) fn configured(
        &self,
        options: Option<SynthesisOptions>,
        workload: Option<WorkloadKind>,
        solver: Option<BackendChoice>,
        ladder: Option<LadderMode>,
        threads: Option<usize>,
    ) -> SynthesisEngine {
        let mut engine = self.clone();
        if let Some(options) = options {
            engine.options = options;
        }
        if let Some(workload) = workload {
            engine.workload = workload;
        }
        if let Some(solver) = solver {
            engine.solver = solver;
        }
        if let Some(ladder) = ladder {
            engine.ladder = ladder;
        }
        if let Some(threads) = threads {
            engine.threads = threads.max(1);
        }
        engine
    }

    /// Synthesizes the complete deterministic protocol for `|0…0⟩_L` of the
    /// given code.
    ///
    /// This is a thin wrapper over a single-request [`SynthesisService`]:
    /// with a [`ReportStore`] attached, the store is consulted first (a hit
    /// returns the persisted report without any SAT work) and fresh reports
    /// are persisted after synthesis — exactly the serving code path.
    ///
    /// # Errors
    ///
    /// Returns a [`SynthesisError`] if verification or correction synthesis
    /// fails (undetectable error, measurement budget, or conflict budget).
    pub fn synthesize(&self, code: &CssCode) -> Result<SynthesisReport, SynthesisError> {
        SynthesisService::from_engine(self)
            .submit(SynthesisRequest::new(code.clone()))
            .map(|response| response.report)
            .map_err(|e| {
                e.into_synthesis()
                    .expect("no cancellation token was attached")
            })
    }

    /// [`SynthesisEngine::synthesize`] without consulting or updating the
    /// attached [`ReportStore`].
    pub fn synthesize_uncached(&self, code: &CssCode) -> Result<SynthesisReport, SynthesisError> {
        let start = Instant::now();
        let code = self.workload.effective_code(code);
        let (prep, prep_stage) = self.prep_stage(&code);
        self.run_pipeline(&code, prep, start, vec![prep_stage])
    }

    /// Synthesizes the protocol around an already-chosen preparation circuit.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`SynthesisEngine::synthesize`].
    pub fn synthesize_with_prep(
        &self,
        code: &CssCode,
        prep: PrepCircuit,
    ) -> Result<SynthesisReport, SynthesisError> {
        self.run_pipeline(code, prep, Instant::now(), Vec::new())
    }

    /// Runs the state-preparation stage (step (a), no SAT involved).
    fn prep_stage(&self, code: &CssCode) -> (PrepCircuit, StageReport) {
        let prep_start = Instant::now();
        let prep = synthesize_prep(code, &self.options.prep);
        let stage = StageReport {
            stage: Stage::Prep,
            time: prep_start.elapsed(),
            sat: SatStats::default(),
            branches: 0,
        };
        (prep, stage)
    }

    /// Pipeline state shared by [`Self::run_pipeline`] and
    /// [`Self::globally_optimize`]: the layer-less protocol, its fault cache,
    /// and whether a second (Z) layer is expected. Dangerous Z errors caused
    /// by preparation faults alone decide the latter regardless of the first
    /// layer's flag choices.
    fn pipeline_setup(
        &self,
        code: &CssCode,
        prep: PrepCircuit,
    ) -> (DeterministicProtocol, FaultCache, bool) {
        let protocol = DeterministicProtocol {
            context: ZeroStateContext::new(code.clone()),
            prep,
            layers: Vec::new(),
        };
        let mut cache = FaultCache::new();
        let second_layer_expected = cache.records(&protocol).iter().any(|record| {
            protocol
                .context
                .is_dangerous(PauliKind::Z, record.execution.residual.z_part())
        });
        (protocol, cache, second_layer_expected)
    }

    /// Synthesizes one sector's verification layer and correction branches
    /// back to back with the engine's whole thread budget. Used when only a
    /// single sector needs a layer, so there is nothing to overlap with.
    fn synthesize_sector(
        &self,
        protocol: &mut DeterministicProtocol,
        cache: &mut FaultCache,
        error_kind: PauliKind,
        dangerous: &[BitVec],
        later_layer_available: bool,
        stages: &mut Vec<StageReport>,
    ) -> Result<(), SynthesisError> {
        let verify_start = Instant::now();
        let mut verify_session = SatSession::with_mode(self.solver, self.ladder);
        let verification = synthesize_verification_threaded(
            &mut verify_session,
            protocol.context.measurable_group(error_kind),
            dangerous,
            &self.options.verification,
            self.threads,
        )
        .map_err(|source| SynthesisError::Verification { error_kind, source })?;
        let layer = build_layer_from_verification(
            protocol,
            error_kind,
            &verification,
            later_layer_available,
            &self.options,
        )?;
        protocol.layers.push(layer);
        stages.push(StageReport {
            stage: Stage::Verification(error_kind),
            time: verify_start.elapsed(),
            sat: verify_session.take_stats(),
            branches: 0,
        });

        let correct_start = Instant::now();
        let mut correct_session = SatSession::with_mode(self.solver, self.ladder);
        let branches = attach_correction_branches_with(
            protocol,
            &self.options,
            &mut correct_session,
            cache,
            self.threads,
        )?;
        stages.push(StageReport {
            stage: Stage::Correction(error_kind),
            time: correct_start.elapsed(),
            sat: correct_session.take_stats(),
            branches,
        });
        Ok(())
    }

    fn run_pipeline(
        &self,
        code: &CssCode,
        prep: PrepCircuit,
        start: Instant,
        mut stages: Vec<StageReport>,
    ) -> Result<SynthesisReport, SynthesisError> {
        let (mut protocol, mut cache, second_layer_expected) = self.pipeline_setup(code, prep);

        let dangerous_x = {
            let records = cache.records(&protocol);
            dangerous_errors_from_records(&protocol.context, records, PauliKind::X)
        };
        if dangerous_x.is_empty() {
            // No X layer: the Z sector (if it exists) runs with the whole
            // budget.
            let dangerous_z = {
                let records = cache.records(&protocol);
                dangerous_errors_from_records(&protocol.context, records, PauliKind::Z)
            };
            if !dangerous_z.is_empty() {
                self.synthesize_sector(
                    &mut protocol,
                    &mut cache,
                    PauliKind::Z,
                    &dangerous_z,
                    false,
                    &mut stages,
                )?;
            }
        } else {
            let verify_start = Instant::now();
            let mut verify_session = SatSession::with_mode(self.solver, self.ladder);
            let verification = synthesize_verification_threaded(
                &mut verify_session,
                protocol.context.measurable_group(PauliKind::X),
                &dangerous_x,
                &self.options.verification,
                self.threads,
            )
            .map_err(|source| SynthesisError::Verification {
                error_kind: PauliKind::X,
                source,
            })?;
            let layer = build_layer_from_verification(
                &protocol,
                PauliKind::X,
                &verification,
                second_layer_expected,
                &self.options,
            )?;
            protocol.layers.push(layer);
            stages.push(StageReport {
                stage: Stage::Verification(PauliKind::X),
                time: verify_start.elapsed(),
                sat: verify_session.take_stats(),
                branches: 0,
            });

            // One enumeration of the branch-less protocol serves both the X
            // correction buckets (via the X-sector cache slot) and the Z
            // sector's dangerous set: records whose X-layer outcome raises a
            // flag are excluded instead of re-enumerating after branch
            // attachment (their flag branches correct the dual-sector hook
            // error below the danger threshold — see
            // [`dangerous_errors_excluding_flagged`]).
            let flag_layer = protocol.layers.len() - 1;
            let dangerous_z = {
                let records = cache.records(&protocol);
                dangerous_errors_excluding_flagged(
                    &protocol.context,
                    records,
                    PauliKind::Z,
                    flag_layer,
                )
            };
            if dangerous_z.is_empty() {
                // No Z layer follows: X corrections keep the whole budget.
                let correct_start = Instant::now();
                let mut correct_session = SatSession::with_mode(self.solver, self.ladder);
                let branches = attach_correction_branches_with(
                    &mut protocol,
                    &self.options,
                    &mut correct_session,
                    &mut cache,
                    self.threads,
                )?;
                stages.push(StageReport {
                    stage: Stage::Correction(PauliKind::X),
                    time: correct_start.elapsed(),
                    sat: correct_session.take_stats(),
                    branches,
                });
            } else {
                // The X correction branches and the Z verification ladder are
                // independent SAT workloads: overlap them under a divided
                // budget (each side's inner fan-out is bit-identical at any
                // thread count, so the overlap never changes results). X
                // errors surface first, matching the serial stage order.
                let x_threads = divide_threads(self.threads, 2);
                let z_threads = (self.threads - x_threads).max(1);
                let mut x_session = SatSession::with_mode(self.solver, self.ladder);
                let mut z_session = SatSession::with_mode(self.solver, self.ladder);
                let measurable_z = protocol.context.measurable_group(PauliKind::Z).clone();
                let run_x = |protocol: &mut DeterministicProtocol,
                             cache: &mut FaultCache,
                             session: &mut SatSession| {
                    let started = Instant::now();
                    let result = attach_correction_branches_with(
                        protocol,
                        &self.options,
                        session,
                        cache,
                        x_threads,
                    );
                    (result, started.elapsed())
                };
                let run_z = |session: &mut SatSession| {
                    let started = Instant::now();
                    let result = synthesize_verification_threaded(
                        session,
                        &measurable_z,
                        &dangerous_z,
                        &self.options.verification,
                        z_threads,
                    );
                    (result, started.elapsed())
                };
                let ((x_result, x_time), (z_result, z_time)) = if self.threads >= 2 {
                    let z_session = &mut z_session;
                    std::thread::scope(|scope| {
                        let z_task = scope.spawn(move || run_z(z_session));
                        let x_outcome = run_x(&mut protocol, &mut cache, &mut x_session);
                        let z_outcome = z_task.join().expect("Z verification thread panicked");
                        (x_outcome, z_outcome)
                    })
                } else {
                    let x_outcome = run_x(&mut protocol, &mut cache, &mut x_session);
                    let z_outcome = run_z(&mut z_session);
                    (x_outcome, z_outcome)
                };
                let branches = x_result?;
                stages.push(StageReport {
                    stage: Stage::Correction(PauliKind::X),
                    time: x_time,
                    sat: x_session.take_stats(),
                    branches,
                });
                let verification = z_result.map_err(|source| SynthesisError::Verification {
                    error_kind: PauliKind::Z,
                    source,
                })?;
                let layer = build_layer_from_verification(
                    &protocol,
                    PauliKind::Z,
                    &verification,
                    false,
                    &self.options,
                )?;
                protocol.layers.push(layer);
                stages.push(StageReport {
                    stage: Stage::Verification(PauliKind::Z),
                    time: z_time,
                    sat: z_session.take_stats(),
                    branches: 0,
                });

                // Z corrections close the pipeline with the whole budget.
                let correct_start = Instant::now();
                let mut correct_session = SatSession::with_mode(self.solver, self.ladder);
                let branches = attach_correction_branches_with(
                    &mut protocol,
                    &self.options,
                    &mut correct_session,
                    &mut cache,
                    self.threads,
                )?;
                stages.push(StageReport {
                    stage: Stage::Correction(PauliKind::Z),
                    time: correct_start.elapsed(),
                    sat: correct_session.take_stats(),
                    branches,
                });
            }
        }

        let target = self.effective_order();
        if target >= 2 {
            self.raise_to_order(&mut protocol, &mut stages, target)?;
        }

        Ok(SynthesisReport {
            code_name: code.name().to_string(),
            workload: self.workload,
            protocol,
            stages,
            fault_cache_hits: cache.hits(),
            fault_cache_misses: cache.misses(),
            total_time: start.elapsed(),
        })
    }

    /// The fault-tolerance order [`Self::run_pipeline`] must reach:
    /// [`SynthesisOptions::target_order`] when set, otherwise 1 — the
    /// classic single-fault pipeline, bit-identical to the pre-order
    /// engine on every code. Orders ≥ 2 are strictly opt-in: the repair
    /// loop's exhaustive fault-*set* passes grow combinatorially with the
    /// protocol size, which is affordable for cat states and other small
    /// codes but runs to CPU-hours on the distance-5 catalog entries (see
    /// ROADMAP), so a distance-based default would make plain
    /// `synthesize` calls on those codes unusable.
    fn effective_order(&self) -> usize {
        self.options.target_order.unwrap_or(1)
    }

    /// Repair rounds raising the pipeline's output to order-`target` fault
    /// tolerance: exhaustively check the order-`target` criterion, and while
    /// violating fault sets remain, append one verification layer per
    /// affected CSS sector (detecting one representative per measurable
    /// syndrome class of the violating residuals) with order-aware correction
    /// branches.
    ///
    /// Fails honestly with [`SynthesisError::OrderNotReached`] when the
    /// rounds exhaust without converging; the protocol passed in stays
    /// order-1 fault-tolerant throughout.
    fn raise_to_order(
        &self,
        protocol: &mut DeterministicProtocol,
        stages: &mut Vec<StageReport>,
        target: usize,
    ) -> Result<(), SynthesisError> {
        const MAX_ROUNDS: usize = 3;
        // Repairs need every violation, not a capped sample: an uncovered
        // violating class would survive the round and stall convergence.
        let check_options = FtCheckOptions {
            max_violations: usize::MAX,
            threads: self.threads,
        };
        let mut rounds = 0;
        loop {
            let report = check_fault_tolerance_order_with(protocol, target, &check_options);
            if report.violations_found == 0 {
                return Ok(());
            }
            if rounds == MAX_ROUNDS {
                return Err(SynthesisError::OrderNotReached {
                    order: target,
                    rounds,
                    violations: report.violations_found,
                });
            }
            rounds += 1;

            for error_kind in [PauliKind::X, PauliKind::Z] {
                let dangerous = violating_class_representatives(protocol, &report, error_kind);
                if dangerous.is_empty() {
                    continue;
                }

                let verify_start = Instant::now();
                let mut verify_session = SatSession::with_mode(self.solver, self.ladder);
                let verification = synthesize_verification_threaded(
                    &mut verify_session,
                    protocol.context.measurable_group(error_kind),
                    &dangerous,
                    &self.options.verification,
                    self.threads,
                )
                .map_err(|source| SynthesisError::Verification { error_kind, source })?;
                let layer = build_layer_from_verification(
                    protocol,
                    error_kind,
                    &verification,
                    false,
                    &self.options,
                )?;
                protocol.layers.push(layer);
                stages.push(StageReport {
                    stage: Stage::Verification(error_kind),
                    time: verify_start.elapsed(),
                    sat: verify_session.take_stats(),
                    branches: 0,
                });

                let correct_start = Instant::now();
                let mut correct_session = SatSession::with_mode(self.solver, self.ladder);
                let branches = attach_order_corrections(
                    protocol,
                    target,
                    &self.options,
                    &mut correct_session,
                    self.threads,
                )?;
                stages.push(StageReport {
                    stage: Stage::Correction(error_kind),
                    time: correct_start.elapsed(),
                    sat: correct_session.take_stats(),
                    branches,
                });
            }
        }
    }

    /// Synthesizes every code of a catalog, fanning the work out over the
    /// engine's worker threads. Results are returned in input order.
    ///
    /// This is a thin wrapper over [`SynthesisService::submit_all`] on a
    /// service with this engine's configuration: duplicate catalog entries
    /// coalesce onto one solve, and the thread budget is divided between the
    /// two fan-out levels — with `w` code workers active, each worker's
    /// per-branch correction fan-out gets `threads / w` threads, so the total
    /// never exceeds [`EngineBuilder::threads`].
    pub fn synthesize_all(
        &self,
        codes: &[CssCode],
    ) -> Vec<Result<SynthesisReport, SynthesisError>> {
        SynthesisService::from_engine(self)
            .submit_all(
                codes
                    .iter()
                    .map(|code| SynthesisRequest::new(code.clone()))
                    .collect(),
            )
            .into_iter()
            .map(|result| {
                result.map(|response| response.report).map_err(|e| {
                    e.into_synthesis()
                        .expect("no cancellation token was attached")
                })
            })
            .collect()
    }

    /// Runs the paper's global optimization: enumerate all minimal
    /// verification circuits per layer, synthesize the corrections for each,
    /// and keep the combination with the lowest expected cost.
    ///
    /// # Errors
    ///
    /// Forwards the synthesis failures of the underlying steps.
    pub fn globally_optimize(&self, code: &CssCode) -> Result<GlobalReport, SynthesisError> {
        let start = Instant::now();
        let (prep, prep_stage) = self.prep_stage(code);
        let mut stages = vec![prep_stage];
        let (mut protocol, mut cache, second_layer_expected) = self.pipeline_setup(code, prep);

        let mut candidates_per_layer = Vec::new();
        let mut explored = SatStats::default();
        for error_kind in [PauliKind::X, PauliKind::Z] {
            let later_layer_available = error_kind == PauliKind::X && second_layer_expected;

            let verify_start = Instant::now();
            let mut verify_session = SatSession::with_mode(self.solver, self.ladder);
            let dangerous = {
                let records = cache.records(&protocol);
                dangerous_errors_from_records(&protocol.context, records, error_kind)
            };
            if dangerous.is_empty() {
                continue;
            }
            let candidates = enumerate_minimal_verifications_threaded(
                &mut verify_session,
                protocol.context.measurable_group(error_kind),
                &dangerous,
                &self.options.verification,
                self.threads,
            )
            .map_err(|source| SynthesisError::Verification { error_kind, source })?;
            candidates_per_layer.push(candidates.len());
            stages.push(StageReport {
                stage: Stage::Verification(error_kind),
                time: verify_start.elapsed(),
                sat: verify_session.take_stats(),
                branches: 0,
            });

            // Every candidate is evaluated on a private session, cache and
            // trial protocol, fanned out like the per-branch correction
            // batch; the inner branch fan-out gets the divided budget so the
            // two levels never multiply past `self.threads`. No candidate is
            // skipped (`stop_on` never fires), so the explored aggregate and
            // the deterministic `(cost, candidate_index)` winner rule see
            // identical inputs at every thread count.
            let correct_start = Instant::now();
            let choice = self.solver;
            let mode = self.ladder;
            let workers = self.threads.min(candidates.len()).max(1);
            let branch_threads = divide_threads(self.threads, workers);
            let protocol_ref = &protocol;
            let slots = parallel_map_indexed(
                &candidates,
                workers,
                |_, candidate| {
                    let mut worker_session = SatSession::with_mode(choice, mode);
                    let mut worker_cache = FaultCache::new();
                    let result = self.evaluate_global_candidate(
                        protocol_ref,
                        error_kind,
                        candidate,
                        later_layer_available,
                        &mut worker_session,
                        &mut worker_cache,
                        branch_threads,
                    );
                    (result, worker_session.take_stats())
                },
                |_| false,
            );
            let mut best: Option<(f64, DeterministicProtocol, SatStats)> = None;
            let mut last_error = None;
            for slot in slots {
                let (result, stats) = slot.expect("no early stop was requested");
                explored.absorb(&stats);
                match result {
                    // Strict `<` keeps the earliest candidate among
                    // equal-cost winners — the serial tie-breaking rule.
                    Ok((cost, trial)) => {
                        if best.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                            best = Some((cost, trial, stats));
                        }
                    }
                    Err(error) => last_error = Some(error),
                }
            }
            let Some((_, winner, winner_stats)) = best else {
                // Every candidate failed during correction synthesis:
                // surface the last real correction error with its stage
                // attribution instead of inventing a verification failure.
                return Err(last_error.expect("at least one candidate was evaluated"));
            };
            protocol = winner;
            stages.push(StageReport {
                stage: Stage::Correction(error_kind),
                time: correct_start.elapsed(),
                sat: winner_stats,
                branches: protocol
                    .layers
                    .last()
                    .map_or(0, |layer| layer.branches.len()),
            });
        }

        Ok(GlobalReport {
            code_name: code.name().to_string(),
            protocol,
            candidates_per_layer,
            stages,
            explored,
            total_time: start.elapsed(),
        })
    }

    /// Evaluates one global-optimization candidate: builds its verification
    /// layer on a cloned protocol, attaches correction branches (fanning out
    /// over `branch_threads`) and prices the result. Runs on a private
    /// session and fault cache so concurrent candidates never share solver
    /// state.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_global_candidate(
        &self,
        protocol: &DeterministicProtocol,
        error_kind: PauliKind,
        candidate: &crate::verify::VerificationSolution,
        later_layer_available: bool,
        session: &mut SatSession,
        cache: &mut FaultCache,
        branch_threads: usize,
    ) -> Result<(f64, DeterministicProtocol), SynthesisError> {
        let mut trial = protocol.clone();
        let layer = build_layer_from_verification(
            &trial,
            error_kind,
            candidate,
            later_layer_available,
            &self.options,
        )?;
        trial.layers.push(layer);
        attach_correction_branches_with(&mut trial, &self.options, session, cache, branch_threads)?;
        let cost = ProtocolMetrics::from_protocol(&trial).expected_cost();
        Ok((cost, trial))
    }
}

/// One representative per measurable-syndrome class of the `error_kind`-sector
/// residuals that violate their set's weight bound, in violation order.
///
/// Every violating residual has a nonzero syndrome under the full measurable
/// group (a zero syndrome would put it in the state stabilizer group, i.e.
/// reduced weight 0), and residuals with equal syndromes are detected
/// identically by any choice of verification measurements, so one
/// representative per class suffices for verification synthesis.
fn violating_class_representatives(
    protocol: &DeterministicProtocol,
    report: &FtOrderReport,
    error_kind: PauliKind,
) -> Vec<BitVec> {
    let mut seen = HashSet::new();
    let mut representatives = Vec::new();
    for violation in &report.violations {
        let weight = match error_kind {
            PauliKind::X => violation.x_weight,
            PauliKind::Z => violation.z_weight,
        };
        if weight <= violation.faults.len() {
            continue;
        }
        let part = violation.residual.part(error_kind);
        let syndrome = protocol.context.state_syndrome(error_kind, part);
        if seen.insert(syndrome.to_bits()) {
            representatives.push(part.clone());
        }
    }
    representatives
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftsp_code::catalog;

    #[test]
    fn default_engine_matches_default_options() {
        let engine = SynthesisEngine::default();
        assert_eq!(engine.solver(), BackendChoice::Cdcl);
        assert!(engine.threads() >= 1);
        assert!(engine.options().verification.max_conflicts.is_none());
    }

    #[test]
    fn builder_wires_every_knob() {
        let engine = SynthesisEngine::builder()
            .prep_method(PrepMethod::Optimal)
            .flag_policy(FlagPolicy::Always)
            .max_verification_measurements(5)
            .max_correction_measurements(2)
            .enumeration_cap(8)
            .conflict_budget(123)
            .solver(BackendChoice::DimacsLogging)
            .threads(3)
            .build();
        assert_eq!(engine.options().prep.method, PrepMethod::Optimal);
        assert_eq!(engine.options().flag_policy, FlagPolicy::Always);
        assert_eq!(engine.options().verification.max_measurements, 5);
        assert_eq!(engine.options().correction.max_measurements, 2);
        assert_eq!(engine.options().verification.enumeration_cap, 8);
        assert_eq!(engine.options().verification.max_conflicts, Some(123));
        assert_eq!(engine.options().correction.max_conflicts, Some(123));
        assert_eq!(engine.solver(), BackendChoice::DimacsLogging);
        assert_eq!(engine.threads(), 3);
    }

    #[test]
    fn report_carries_stage_statistics() {
        let engine = SynthesisEngine::default();
        let report = engine.synthesize(&catalog::steane()).unwrap();
        assert_eq!(report.code_name, "Steane");
        assert!(report.stage(Stage::Prep).is_some());
        let verify = report.stage(Stage::Verification(PauliKind::X)).unwrap();
        assert!(
            verify.sat.calls > 0,
            "verification synthesis issues SAT queries"
        );
        assert_eq!(verify.sat.interrupted, 0);
        let correct = report.stage(Stage::Correction(PauliKind::X)).unwrap();
        assert!(correct.sat.calls > 0);
        assert_eq!(correct.branches, 1, "the Steane layer has one branch");
        assert_eq!(report.branch_count(), 1);
        assert!(report.sat_totals().calls >= verify.sat.calls + correct.sat.calls);
        assert!(
            report.fault_cache_hits > 0,
            "the prep enumeration is reused"
        );
        assert!(!report.to_string().is_empty());
    }

    #[test]
    fn dimacs_backend_reproduces_the_cdcl_protocol() {
        let cdcl = SynthesisEngine::default()
            .synthesize(&catalog::steane())
            .unwrap();
        let logged = SynthesisEngine::builder()
            .solver(BackendChoice::DimacsLogging)
            .build()
            .synthesize(&catalog::steane())
            .unwrap();
        // Same deterministic search, same protocol — the wrapper only records.
        assert_eq!(
            format!("{:?}", cdcl.protocol.layers),
            format!("{:?}", logged.protocol.layers)
        );
    }

    #[test]
    fn tiny_conflict_budget_yields_typed_error() {
        let engine = SynthesisEngine::builder().conflict_budget(0).build();
        // The Steane verification instance needs conflicts to solve; a zero
        // budget must surface as the typed error, not a hang or a panic.
        let err = engine.synthesize(&catalog::steane()).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("budget"), "unexpected error: {text}");
    }

    #[test]
    fn synthesize_all_preserves_input_order() {
        let engine = SynthesisEngine::builder().threads(4).build();
        let codes = vec![catalog::surface3(), catalog::steane(), catalog::shor()];
        let reports = engine.synthesize_all(&codes);
        assert_eq!(reports.len(), 3);
        let names: Vec<String> = reports
            .iter()
            .map(|r| r.as_ref().unwrap().code_name.clone())
            .collect();
        assert_eq!(names, vec!["Surface-3", "Steane", "Shor"]);
    }
}
