//! Lazy permutation generation (Heap's algorithm).
//!
//! The CNOT-order search and the verification-enumeration blocking clauses
//! both need the permutations of a small set. Generating them lazily lets
//! callers early-exit on the first acceptable permutation instead of
//! materializing all `n!` candidates up front.

/// Iterator over all permutations of a vector, by Heap's algorithm.
///
/// The first yielded permutation is the input order itself; each subsequent
/// permutation differs from its predecessor by a single swap, so producing
/// the next candidate is O(1) plus the clone of the output vector.
#[derive(Debug, Clone)]
pub(crate) struct HeapPermutations<T> {
    items: Vec<T>,
    counters: Vec<usize>,
    index: usize,
    started: bool,
    exhausted: bool,
}

impl<T: Clone> HeapPermutations<T> {
    /// Permutations of the given items, starting with their current order.
    pub(crate) fn new(items: Vec<T>) -> Self {
        let n = items.len();
        HeapPermutations {
            items,
            counters: vec![0; n],
            index: 1,
            started: false,
            exhausted: false,
        }
    }
}

impl HeapPermutations<usize> {
    /// Permutations of the index set `0..len`.
    pub(crate) fn of_indices(len: usize) -> Self {
        HeapPermutations::new((0..len).collect())
    }
}

impl<T: Clone> Iterator for HeapPermutations<T> {
    type Item = Vec<T>;

    fn next(&mut self) -> Option<Vec<T>> {
        if self.exhausted {
            return None;
        }
        if !self.started {
            self.started = true;
            if self.items.len() <= 1 {
                self.exhausted = true;
            }
            return Some(self.items.clone());
        }
        while self.index < self.items.len() {
            if self.counters[self.index] < self.index {
                if self.index.is_multiple_of(2) {
                    self.items.swap(0, self.index);
                } else {
                    self.items.swap(self.counters[self.index], self.index);
                }
                self.counters[self.index] += 1;
                self.index = 1;
                return Some(self.items.clone());
            }
            self.counters[self.index] = 0;
            self.index += 1;
        }
        self.exhausted = true;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn factorial(n: usize) -> usize {
        (1..=n).product::<usize>().max(1)
    }

    #[test]
    fn yields_exactly_n_factorial_distinct_permutations() {
        for n in 0..=6 {
            let perms: Vec<Vec<usize>> = HeapPermutations::of_indices(n).collect();
            assert_eq!(perms.len(), factorial(n), "n={n}");
            let distinct: std::collections::HashSet<_> = perms.iter().cloned().collect();
            assert_eq!(distinct.len(), perms.len(), "n={n}");
            for p in &perms {
                let mut sorted = p.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..n).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn first_permutation_is_the_input_order() {
        let input = vec![4usize, 2, 9];
        let first = HeapPermutations::new(input.clone()).next().unwrap();
        assert_eq!(first, input);
    }

    #[test]
    fn lazy_early_exit_touches_only_a_prefix() {
        // Finding a permutation with a fixed property must not require
        // generating all n! candidates: take() bounds the work.
        let found = HeapPermutations::of_indices(10).take(3).find(|p| p[0] == 0);
        assert!(found.is_some());
    }
}
