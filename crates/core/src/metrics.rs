//! Circuit metrics in the format of Table I of the paper.

use dftsp_pauli::PauliKind;

use crate::prep::PrepMethod;
use crate::protocol::DeterministicProtocol;

/// Metrics of one verification/correction layer, matching one "layer" block
/// of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerMetrics {
    /// The sector of data errors the layer verifies.
    pub error_kind: PauliKind,
    /// Number of verification measurements (`a_m`).
    pub verification_ancillas: usize,
    /// Number of flag ancillas (`a_f`).
    pub flag_ancillas: usize,
    /// Summed verification CNOTs excluding flag couplings (`w_m`).
    pub verification_cnots: usize,
    /// Flag-coupling CNOTs (`w_f`, two per flag).
    pub flag_cnots: usize,
    /// Additional ancillas of each syndrome-triggered correction branch.
    pub correction_ancillas: Vec<usize>,
    /// Additional CNOTs of each syndrome-triggered correction branch.
    pub correction_cnots: Vec<usize>,
    /// Additional ancillas of each flag-triggered (hook) correction branch.
    pub hook_correction_ancillas: Vec<usize>,
    /// Additional CNOTs of each flag-triggered (hook) correction branch.
    pub hook_correction_cnots: Vec<usize>,
}

impl LayerMetrics {
    /// All branch ancilla counts (syndrome branches first, then hook branches).
    pub fn all_branch_ancillas(&self) -> Vec<usize> {
        let mut v = self.correction_ancillas.clone();
        v.extend(&self.hook_correction_ancillas);
        v
    }

    /// All branch CNOT counts (syndrome branches first, then hook branches).
    pub fn all_branch_cnots(&self) -> Vec<usize> {
        let mut v = self.correction_cnots.clone();
        v.extend(&self.hook_correction_cnots);
        v
    }
}

/// Metrics of a complete protocol: one row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolMetrics {
    /// Code name.
    pub code_name: String,
    /// `[[n, k, d]]` parameters.
    pub parameters: (usize, usize, usize),
    /// Preparation-circuit synthesis method.
    pub prep_method: PrepMethod,
    /// CNOT count of the preparation circuit (not reported in Table I but
    /// useful context).
    pub prep_cnots: usize,
    /// Per-layer metrics, in execution order.
    pub layers: Vec<LayerMetrics>,
    /// Total verification ancillas over all layers (`Σ ANC`).
    pub total_verification_ancillas: usize,
    /// Total verification CNOTs over all layers, including flag couplings
    /// (`Σ CNOT`).
    pub total_verification_cnots: usize,
    /// Average correction ancillas over all branches (`∅ ANC`).
    pub avg_correction_ancillas: f64,
    /// Average correction CNOTs over all branches (`∅ CNOT`).
    pub avg_correction_cnots: f64,
}

impl ProtocolMetrics {
    /// Extracts the Table-I metrics of a synthesized protocol.
    pub fn from_protocol(protocol: &DeterministicProtocol) -> Self {
        let mut layers = Vec::with_capacity(protocol.layers.len());
        let mut branch_ancillas = Vec::new();
        let mut branch_cnots = Vec::new();
        for layer in &protocol.layers {
            let (verification_cnots, flag_cnots) = layer.verification_cnots();
            let mut metrics = LayerMetrics {
                error_kind: layer.error_kind,
                verification_ancillas: layer.verification_ancillas(),
                flag_ancillas: layer.flag_ancillas(),
                verification_cnots,
                flag_cnots,
                correction_ancillas: Vec::new(),
                correction_cnots: Vec::new(),
                hook_correction_ancillas: Vec::new(),
                hook_correction_cnots: Vec::new(),
            };
            for (key, branch) in &layer.branches {
                if key.has_flag() {
                    metrics
                        .hook_correction_ancillas
                        .push(branch.ancilla_count());
                    metrics.hook_correction_cnots.push(branch.cnot_count());
                } else {
                    metrics.correction_ancillas.push(branch.ancilla_count());
                    metrics.correction_cnots.push(branch.cnot_count());
                }
                branch_ancillas.push(branch.ancilla_count());
                branch_cnots.push(branch.cnot_count());
            }
            layers.push(metrics);
        }
        let total_verification_ancillas = layers
            .iter()
            .map(|l| l.verification_ancillas + l.flag_ancillas)
            .sum();
        let total_verification_cnots = layers
            .iter()
            .map(|l| l.verification_cnots + l.flag_cnots)
            .sum();
        let branches = branch_ancillas.len().max(1) as f64;
        let (n, k, d) = protocol.context.code().parameters();
        ProtocolMetrics {
            code_name: protocol.context.code().name().to_string(),
            parameters: (n, k, d),
            prep_method: protocol.prep.method,
            prep_cnots: protocol.prep.cnot_count(),
            layers,
            total_verification_ancillas,
            total_verification_cnots,
            avg_correction_ancillas: branch_ancillas.iter().sum::<usize>() as f64 / branches,
            avg_correction_cnots: branch_cnots.iter().sum::<usize>() as f64 / branches,
        }
    }

    /// A scalar cost used to rank equivalent protocols during global
    /// optimization: verification cost (paid every run) plus the expected
    /// conditional correction cost.
    pub fn expected_cost(&self) -> f64 {
        self.total_verification_cnots as f64
            + self.total_verification_ancillas as f64
            + self.avg_correction_cnots
            + self.avg_correction_ancillas
    }
}

impl std::fmt::Display for ProtocolMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (n, k, d) = self.parameters;
        write!(
            f,
            "{} [[{n},{k},{d}]] ({}): ΣANC={} ΣCNOT={} ∅ANC={:.2} ∅CNOT={:.2}",
            self.code_name,
            self.prep_method,
            self.total_verification_ancillas,
            self.total_verification_cnots,
            self.avg_correction_ancillas,
            self.avg_correction_cnots
        )?;
        for layer in &self.layers {
            write!(
                f,
                " | {}-layer: a_m={} a_f={} w_m={} w_f={} corr={:?}/{:?} hook={:?}/{:?}",
                layer.error_kind,
                layer.verification_ancillas,
                layer.flag_ancillas,
                layer.verification_cnots,
                layer.flag_cnots,
                layer.correction_ancillas,
                layer.correction_cnots,
                layer.hook_correction_ancillas,
                layer.hook_correction_cnots,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::{synthesize_protocol, SynthesisOptions};
    use dftsp_code::catalog;

    #[test]
    fn steane_metrics_match_table_one() {
        let protocol =
            synthesize_protocol(&catalog::steane(), &SynthesisOptions::default()).unwrap();
        let metrics = ProtocolMetrics::from_protocol(&protocol);
        assert_eq!(metrics.code_name, "Steane");
        assert_eq!(metrics.parameters, (7, 1, 3));
        // Table I (Steane row): 1 verification ancilla, 3 verification CNOTs,
        // a single correction branch with 1 ancilla and 3 CNOTs.
        assert_eq!(metrics.total_verification_ancillas, 1);
        assert_eq!(metrics.total_verification_cnots, 3);
        assert_eq!(metrics.layers.len(), 1);
        assert_eq!(metrics.layers[0].correction_ancillas.len(), 1);
        assert!(metrics.avg_correction_cnots <= 3.0 + f64::EPSILON);
        assert!(metrics.expected_cost() > 0.0);
        assert!(!metrics.to_string().is_empty());
    }

    #[test]
    fn totals_are_sums_over_layers() {
        let protocol =
            synthesize_protocol(&catalog::surface3(), &SynthesisOptions::default()).unwrap();
        let metrics = ProtocolMetrics::from_protocol(&protocol);
        let anc: usize = metrics
            .layers
            .iter()
            .map(|l| l.verification_ancillas + l.flag_ancillas)
            .sum();
        let cnot: usize = metrics
            .layers
            .iter()
            .map(|l| l.verification_cnots + l.flag_cnots)
            .sum();
        assert_eq!(metrics.total_verification_ancillas, anc);
        assert_eq!(metrics.total_verification_cnots, cnot);
    }
}
