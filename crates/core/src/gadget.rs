//! Stabilizer-measurement gadgets: bare and flag-fault-tolerant.
//!
//! A verification or correction measurement of the protocol measures a single
//! X- or Z-type Pauli operator with one syndrome ancilla and, optionally, one
//! flag ancilla that heralds dangerous hook errors (Sec. IV of the paper,
//! following the flag scheme of Chamberland & Beverland).
//!
//! The gadget is described abstractly by [`MeasurementGadget`] (operator
//! support, basis, CNOT order, flag placement) and lowered to a
//! [`dftsp_circuit::Circuit`] on `n + 2` qubits (data qubits `0..n`, syndrome
//! ancilla `n`, flag ancilla `n + 1`) by [`MeasurementGadget::to_circuit`].

use dftsp_circuit::Circuit;
use dftsp_f2::BitVec;
use dftsp_pauli::PauliKind;

/// Index of the syndrome ancilla in a lowered gadget circuit on `n + 2`
/// qubits.
pub fn ancilla_index(num_data: usize) -> usize {
    num_data
}

/// Index of the flag ancilla in a lowered gadget circuit on `n + 2` qubits.
pub fn flag_index(num_data: usize) -> usize {
    num_data + 1
}

/// A single stabilizer measurement used in verification or correction.
///
/// # Examples
///
/// ```
/// use dftsp::gadget::MeasurementGadget;
/// use dftsp_f2::BitVec;
/// use dftsp_pauli::PauliKind;
///
/// // Measure the Z-type operator Z0 Z1 Z2 Z3 without a flag.
/// let gadget = MeasurementGadget::new(BitVec::from_indices(7, &[0, 1, 2, 3]), PauliKind::Z);
/// let circuit = gadget.to_circuit();
/// assert_eq!(circuit.stats().cnot_count, 4);
/// assert_eq!(circuit.num_qubits(), 9); // 7 data + ancilla + flag slot
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasurementGadget {
    /// Support of the measured operator on the data qubits.
    support: BitVec,
    /// Pauli type of the measured operator (`Z` detects X errors and vice
    /// versa).
    basis: PauliKind,
    /// Whether a flag ancilla is attached.
    flagged: bool,
    /// Order in which the data qubits of the support are coupled to the
    /// syndrome ancilla.
    cnot_order: Vec<usize>,
}

impl MeasurementGadget {
    /// Creates an unflagged gadget measuring the operator of the given basis
    /// and support, coupling data qubits in increasing index order.
    ///
    /// # Panics
    ///
    /// Panics if the support is empty.
    pub fn new(support: BitVec, basis: PauliKind) -> Self {
        let cnot_order = support.support();
        assert!(!cnot_order.is_empty(), "cannot measure an empty operator");
        MeasurementGadget {
            support,
            basis,
            flagged: false,
            cnot_order,
        }
    }

    /// Creates a gadget with an explicit data-coupling order.
    ///
    /// # Panics
    ///
    /// Panics if `cnot_order` is not a permutation of the support.
    pub fn with_order(support: BitVec, basis: PauliKind, cnot_order: Vec<usize>) -> Self {
        let mut sorted = cnot_order.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            support.support(),
            "cnot_order must be a permutation of the operator support"
        );
        MeasurementGadget {
            support,
            basis,
            flagged: false,
            cnot_order,
        }
    }

    /// Returns a copy of the gadget with the flag ancilla enabled or disabled.
    pub fn flagged(mut self, flagged: bool) -> Self {
        self.flagged = flagged;
        self
    }

    /// Support of the measured operator.
    pub fn support(&self) -> &BitVec {
        &self.support
    }

    /// Pauli type of the measured operator.
    pub fn basis(&self) -> PauliKind {
        self.basis
    }

    /// The kind of data error this measurement detects (the dual of the
    /// measured operator's type).
    pub fn detects(&self) -> PauliKind {
        self.basis.dual()
    }

    /// Whether the gadget carries a flag ancilla.
    pub fn is_flagged(&self) -> bool {
        self.flagged
    }

    /// The data-coupling order.
    pub fn cnot_order(&self) -> &[usize] {
        &self.cnot_order
    }

    /// Number of data qubits the gadget acts on.
    pub fn num_data_qubits(&self) -> usize {
        self.support.len()
    }

    /// Weight of the measured operator (= number of data CNOTs).
    pub fn weight(&self) -> usize {
        self.support.weight()
    }

    /// Total CNOT count of the lowered circuit (data CNOTs plus two flag
    /// CNOTs if flagged).
    pub fn cnot_count(&self) -> usize {
        self.weight() + if self.flagged { 2 } else { 0 }
    }

    /// Number of ancilla qubits used (1, or 2 if flagged).
    pub fn ancilla_count(&self) -> usize {
        1 + usize::from(self.flagged)
    }

    /// Lowers the gadget to a circuit on `num_data_qubits() + 2` qubits.
    ///
    /// Classical bit 0 of the returned circuit is the syndrome outcome and,
    /// if the gadget is flagged, bit 1 is the flag outcome.
    ///
    /// The syndrome ancilla sits at index [`ancilla_index`], the flag ancilla
    /// at [`flag_index`]; the flag qubit is idle for unflagged gadgets so all
    /// gadget circuits of one protocol share the same width.
    pub fn to_circuit(&self) -> Circuit {
        let n = self.num_data_qubits();
        let anc = ancilla_index(n);
        let flag = flag_index(n);
        let mut circuit = Circuit::new(n + 2);
        let order = &self.cnot_order;
        match self.basis {
            // Z-type operator: ancilla |0⟩ is the target of data-controlled
            // CNOTs; hook errors are Z errors on the ancilla, caught by a |+⟩
            // flag coupled with CNOT(flag → ancilla).
            PauliKind::Z => {
                circuit.prep_z(anc);
                if self.flagged {
                    circuit.prep_x(flag);
                }
                for (i, &q) in order.iter().enumerate() {
                    if self.flagged && i == 1 {
                        circuit.cnot(flag, anc);
                    }
                    circuit.cnot(q, anc);
                    if self.flagged && i + 2 == order.len() {
                        circuit.cnot(flag, anc);
                    }
                }
                circuit.measure_z(anc);
                if self.flagged {
                    circuit.measure_x(flag);
                }
            }
            // X-type operator: ancilla |+⟩ controls CNOTs onto the data; hook
            // errors are X errors on the ancilla, caught by a |0⟩ flag coupled
            // with CNOT(ancilla → flag).
            PauliKind::X => {
                circuit.prep_x(anc);
                if self.flagged {
                    circuit.prep_z(flag);
                }
                for (i, &q) in order.iter().enumerate() {
                    if self.flagged && i == 1 {
                        circuit.cnot(anc, flag);
                    }
                    circuit.cnot(anc, q);
                    if self.flagged && i + 2 == order.len() {
                        circuit.cnot(anc, flag);
                    }
                }
                circuit.measure_x(anc);
                if self.flagged {
                    circuit.measure_z(flag);
                }
            }
        }
        circuit
    }
}

impl std::fmt::Display for MeasurementGadget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let qubits: Vec<String> = self.cnot_order.iter().map(|q| q.to_string()).collect();
        write!(
            f,
            "{}[{}]{}",
            self.basis,
            qubits.join(","),
            if self.flagged { " (flagged)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftsp_circuit::PauliTracker;
    use dftsp_code::catalog;
    use dftsp_pauli::{Pauli, PauliString};
    use dftsp_stabsim::{run_circuit, Tableau};

    fn weight4_z_gadget(flagged: bool) -> MeasurementGadget {
        MeasurementGadget::new(BitVec::from_indices(4, &[0, 1, 2, 3]), PauliKind::Z)
            .flagged(flagged)
    }

    #[test]
    fn bare_gadget_counts() {
        let g = weight4_z_gadget(false);
        assert_eq!(g.cnot_count(), 4);
        assert_eq!(g.ancilla_count(), 1);
        assert_eq!(g.detects(), PauliKind::X);
        assert_eq!(g.to_circuit().num_bits(), 1);
        assert_eq!(g.to_string(), "Z[0,1,2,3]");
    }

    #[test]
    fn flagged_gadget_counts() {
        let g = weight4_z_gadget(true);
        assert_eq!(g.cnot_count(), 6);
        assert_eq!(g.ancilla_count(), 2);
        assert_eq!(g.to_circuit().num_bits(), 2);
        assert!(g.to_string().contains("flagged"));
    }

    #[test]
    fn z_gadget_detects_single_x_error() {
        // An X error on any support qubit before the gadget flips the syndrome
        // bit; a stabilizer-sized (even-overlap) error does not.
        let g = weight4_z_gadget(false);
        let circuit = g.to_circuit();
        for q in 0..4 {
            let mut t = PauliTracker::new(&circuit);
            t.inject(&PauliString::single(6, q, Pauli::X));
            t.run(..);
            assert!(t.measurement_flipped(0), "qubit {q}");
        }
        let mut t = PauliTracker::new(&circuit);
        t.inject(&PauliString::from_x(BitVec::from_indices(6, &[0, 1])));
        t.run(..);
        assert!(!t.measurement_flipped(0));
    }

    #[test]
    fn x_gadget_detects_single_z_error() {
        let g = MeasurementGadget::new(BitVec::from_indices(4, &[0, 1, 2, 3]), PauliKind::X);
        let circuit = g.to_circuit();
        let mut t = PauliTracker::new(&circuit);
        t.inject(&PauliString::single(6, 2, Pauli::Z));
        t.run(..);
        assert!(t.measurement_flipped(0));
    }

    #[test]
    fn flag_fires_on_mid_gadget_ancilla_error() {
        // A Z error on the syndrome ancilla in the middle of a flagged Z-type
        // gadget must flip the flag outcome; the same error in an unflagged
        // gadget goes unnoticed while still spreading onto the data.
        let flagged = weight4_z_gadget(true).to_circuit();
        // Find the position after the second data CNOT.
        let mut data_cnots = 0;
        let mut inject_after = 0;
        for (i, gate) in flagged.gates().iter().enumerate() {
            if let dftsp_circuit::Gate::Cnot { control, .. } = gate {
                if *control < 4 {
                    data_cnots += 1;
                    if data_cnots == 2 {
                        inject_after = i + 1;
                    }
                }
            }
        }
        let mut t = PauliTracker::new(&flagged);
        t.run(0..inject_after);
        t.inject(&PauliString::single(6, ancilla_index(4), Pauli::Z));
        t.run(inject_after..flagged.len());
        assert!(t.measurement_flipped(1), "flag must herald the hook error");
    }

    #[test]
    fn ideal_flagged_gadget_has_deterministic_outcomes_on_stabilized_state() {
        // Measure a Steane Z stabilizer on |0⟩_L with a flagged gadget: both
        // outcomes must be deterministically 0 (no error, no flag).
        let code = catalog::steane();
        let prep = crate::prep::synthesize_prep(&code, &crate::prep::PrepOptions::default());
        let support = code.stabilizers(PauliKind::Z).row(0).clone();
        let gadget = MeasurementGadget::new(support, PauliKind::Z).flagged(true);
        let gadget_circuit = gadget.to_circuit();

        let mut state = Tableau::new(9);
        run_circuit(&mut state, &prep.circuit, || false);
        let outcomes = run_circuit(&mut state, &gadget_circuit, || {
            panic!("must be deterministic")
        });
        assert!(outcomes.is_zero());
        // The data state is undisturbed.
        assert!(dftsp_stabsim::is_logical_zero_state(&state, &code));
    }

    #[test]
    fn ideal_flagged_x_gadget_is_nondestructive() {
        let code = catalog::steane();
        let prep = crate::prep::synthesize_prep(&code, &crate::prep::PrepOptions::default());
        let support = code.stabilizers(PauliKind::X).row(1).clone();
        let gadget = MeasurementGadget::new(support, PauliKind::X).flagged(true);
        let mut state = Tableau::new(9);
        run_circuit(&mut state, &prep.circuit, || false);
        let outcomes = run_circuit(&mut state, &gadget.to_circuit(), || {
            panic!("must be deterministic")
        });
        assert!(outcomes.is_zero());
        assert!(dftsp_stabsim::is_logical_zero_state(&state, &code));
    }

    #[test]
    fn custom_cnot_order_is_respected() {
        let g = MeasurementGadget::with_order(
            BitVec::from_indices(5, &[0, 2, 4]),
            PauliKind::Z,
            vec![4, 0, 2],
        );
        let circuit = g.to_circuit();
        let controls: Vec<usize> = circuit
            .gates()
            .iter()
            .filter_map(|gate| match gate {
                dftsp_circuit::Gate::Cnot { control, .. } => Some(*control),
                _ => None,
            })
            .collect();
        assert_eq!(controls, vec![4, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn wrong_order_panics() {
        MeasurementGadget::with_order(
            BitVec::from_indices(5, &[0, 2, 4]),
            PauliKind::Z,
            vec![0, 1, 2],
        );
    }

    #[test]
    #[should_panic(expected = "empty operator")]
    fn empty_support_panics() {
        MeasurementGadget::new(BitVec::zeros(5), PauliKind::Z);
    }
}
