//! Synthesis workloads: what state a protocol prepares.
//!
//! The paper's pipeline synthesizes fault-tolerant preparation of the
//! logical zero state of a CSS code. Fault-tolerant *cat-state* preparation
//! (arXiv 2601.03343) has the same SAT shape: an `n`-qubit GHZ state is the
//! logical zero of the `[[n, 1, 1]]` repetition-style stabilizer code
//! ([`dftsp_code::catalog::cat_state`]), so the encoder, verification and
//! correction ladders run unchanged against the GHZ stabilizer group.
//!
//! [`WorkloadKind`] names the workload; it is threaded through
//! [`crate::SynthesisRequest`], the engine configuration, the synthesized
//! [`crate::SynthesisReport`] and the [`crate::ReportKey`] fingerprint, so
//! cached cat-state answers can never be confused with zero-state answers.

use dftsp_code::{catalog, CssCode};

/// What state a synthesis run prepares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WorkloadKind {
    /// Fault-tolerant preparation of the logical zero state of the requested
    /// code (the paper's workload; the default).
    #[default]
    ZeroStatePrep,
    /// Fault-tolerant preparation of an `size`-qubit cat (GHZ) state,
    /// realized as zero-state preparation of [`catalog::cat_state`]. The
    /// requested code is ignored; the effective code is the cat-state code.
    CatStatePrep {
        /// Number of qubits of the cat state (≥ 3).
        size: usize,
    },
}

impl WorkloadKind {
    /// The code the pipeline actually runs on: `code` itself for zero-state
    /// preparation, the GHZ stabilizer code for cat-state preparation.
    pub fn effective_code(&self, code: &CssCode) -> CssCode {
        match self {
            WorkloadKind::ZeroStatePrep => code.clone(),
            WorkloadKind::CatStatePrep { size } => catalog::cat_state(*size),
        }
    }

    /// A stable, human-readable label (also the on-disk JSON form).
    pub fn label(&self) -> String {
        match self {
            WorkloadKind::ZeroStatePrep => "zero-state".to_string(),
            WorkloadKind::CatStatePrep { size } => format!("cat-state-{size}"),
        }
    }

    /// Parses a [`WorkloadKind::label`] back. Returns `None` for unknown
    /// labels (e.g. from a future format).
    pub fn from_label(label: &str) -> Option<WorkloadKind> {
        if label == "zero-state" {
            return Some(WorkloadKind::ZeroStatePrep);
        }
        let size = label.strip_prefix("cat-state-")?.parse().ok()?;
        Some(WorkloadKind::CatStatePrep { size })
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for workload in [
            WorkloadKind::ZeroStatePrep,
            WorkloadKind::CatStatePrep { size: 4 },
            WorkloadKind::CatStatePrep { size: 17 },
        ] {
            assert_eq!(WorkloadKind::from_label(&workload.label()), Some(workload));
        }
        assert_eq!(WorkloadKind::from_label("cat-state-"), None);
        assert_eq!(WorkloadKind::from_label("bell-state"), None);
    }

    #[test]
    fn effective_code_substitutes_only_for_cat_states() {
        let steane = catalog::steane();
        let zero = WorkloadKind::ZeroStatePrep.effective_code(&steane);
        assert_eq!(zero.name(), "Steane");
        let cat = WorkloadKind::CatStatePrep { size: 5 }.effective_code(&steane);
        assert_eq!(cat.name(), "Cat-5");
        assert_eq!(cat.num_qubits(), 5);
    }
}
