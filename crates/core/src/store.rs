//! Persistent report stores: serve repeat synthesis requests from a cache.
//!
//! Synthesizing a protocol is expensive (SAT ladders plus exhaustive fault
//! enumeration) while the result is a pure function of the code and the
//! engine configuration. The [`ReportStore`] trait captures that seam: the
//! engine consults the store (keyed by a [`ReportKey`] — a structural
//! fingerprint of code, options, backend and ladder mode) before solving and
//! persists fresh reports after, turning [`crate::SynthesisEngine`] into a
//! cache-fronted service for repeat catalog traffic. This generalizes the
//! in-run [`crate::FaultCache`] fingerprinting to cross-run persistence.
//!
//! Two implementations ship in-tree:
//!
//! * [`MemoryReportStore`] — a thread-safe in-process map, for serving many
//!   requests from one long-lived engine;
//! * [`JsonReportStore`] — one JSON file per key in a directory, for warm
//!   starts across process restarts (the offline `serde` shim performs no
//!   serialization, so the codec is the hand-rolled [`crate::json`] module).
//!
//! A loaded report is bit-identical to the stored one: the protocol, the
//! per-stage statistics and the recorded timings all round-trip exactly.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use dftsp_circuit::{Circuit, Gate};
use dftsp_code::CssCode;
use dftsp_f2::BitVec;
use dftsp_pauli::PauliKind;
use dftsp_sat::{BackendChoice, LadderMode};

use crate::cache::debug_fingerprint;
use crate::engine::{SatStats, Stage, StageReport, SynthesisReport};
use crate::gadget::MeasurementGadget;
use crate::json::Json;
use crate::prep::{PrepCircuit, PrepMethod};
use crate::protocol::{BranchKey, CorrectionBranch, DeterministicProtocol, VerificationLayer};
use crate::synthesis::SynthesisOptions;
use crate::ZeroStateContext;

/// Bumped whenever the on-disk format or the meaning of a fingerprint
/// changes, so stale cache entries miss instead of deserializing wrongly.
const FORMAT_VERSION: u64 = 2;

/// Identifies one synthesis result: the code plus a fingerprint of
/// everything the result depends on (code structure, synthesis options, SAT
/// backend and ladder mode).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReportKey {
    /// Name of the code (kept readable for file names and diagnostics).
    pub code_name: String,
    /// Structural fingerprint of code + configuration.
    pub fingerprint: u64,
}

impl ReportKey {
    /// Builds the key for `code` under the given engine configuration.
    pub fn new(
        code: &CssCode,
        options: &SynthesisOptions,
        solver: BackendChoice,
        ladder: LadderMode,
    ) -> Self {
        let fingerprint = debug_fingerprint(&(
            FORMAT_VERSION,
            code.name(),
            code.parameters(),
            code.stabilizers(PauliKind::X),
            code.stabilizers(PauliKind::Z),
            code.logicals(PauliKind::X),
            code.logicals(PauliKind::Z),
            options,
            solver,
            ladder,
        ));
        ReportKey {
            code_name: code.name().to_string(),
            fingerprint,
        }
    }

    /// A file-system-safe name for this key.
    pub fn file_name(&self) -> String {
        let safe: String = self
            .code_name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        format!("{safe}-{:016x}.json", self.fingerprint)
    }
}

/// A persistent cache of [`SynthesisReport`]s keyed by [`ReportKey`].
///
/// Implementations must be thread-safe: [`crate::SynthesisEngine::synthesize_all`]
/// consults the store from its worker threads.
pub trait ReportStore: Send + Sync + std::fmt::Debug {
    /// Returns the stored report for `key`, if any. `code` is the code the
    /// key was built from; implementations that persist externally use it to
    /// reconstruct the parts of a report that are derivable from the code.
    fn load(&self, key: &ReportKey, code: &CssCode) -> Option<SynthesisReport>;

    /// Persists a freshly synthesized report under `key`.
    fn save(&self, key: &ReportKey, report: &SynthesisReport);

    /// Number of lookups answered from the store.
    fn hits(&self) -> u64;

    /// Number of lookups that missed.
    fn misses(&self) -> u64;
}

/// Thread-safe in-memory [`ReportStore`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use dftsp::{MemoryReportStore, ReportStore, SynthesisEngine};
/// use dftsp_code::catalog;
///
/// let store = Arc::new(MemoryReportStore::new());
/// let engine = SynthesisEngine::builder().report_store(store.clone()).build();
/// let first = engine.synthesize(&catalog::steane())?;
/// let second = engine.synthesize(&catalog::steane())?; // served from the store
/// assert_eq!(store.hits(), 1);
/// assert_eq!(format!("{:?}", first.protocol.layers), format!("{:?}", second.protocol.layers));
/// # Ok::<(), dftsp::SynthesisError>(())
/// ```
#[derive(Debug, Default)]
pub struct MemoryReportStore {
    reports: Mutex<HashMap<ReportKey, SynthesisReport>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MemoryReportStore {
    /// An empty store.
    pub fn new() -> Self {
        MemoryReportStore::default()
    }

    /// Number of stored reports.
    pub fn len(&self) -> usize {
        self.reports.lock().expect("store lock poisoned").len()
    }

    /// Returns `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ReportStore for MemoryReportStore {
    fn load(&self, key: &ReportKey, _code: &CssCode) -> Option<SynthesisReport> {
        let report = self
            .reports
            .lock()
            .expect("store lock poisoned")
            .get(key)
            .cloned();
        match &report {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        report
    }

    fn save(&self, key: &ReportKey, report: &SynthesisReport) {
        self.reports
            .lock()
            .expect("store lock poisoned")
            .insert(key.clone(), report.clone());
    }

    fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Directory-backed [`ReportStore`]: one JSON file per key.
///
/// Reports survive process restarts; a second run of the same catalog serves
/// every request from disk without SAT work. Unreadable or stale-format
/// files are treated as misses and overwritten on the next save.
#[derive(Debug)]
pub struct JsonReportStore {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl JsonReportStore {
    /// Opens (and creates if necessary) the store directory.
    ///
    /// # Errors
    ///
    /// Forwards the I/O error if the directory cannot be created.
    pub fn new(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(JsonReportStore {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The directory the store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, key: &ReportKey) -> PathBuf {
        self.dir.join(key.file_name())
    }
}

impl ReportStore for JsonReportStore {
    fn load(&self, key: &ReportKey, code: &CssCode) -> Option<SynthesisReport> {
        let report = std::fs::read_to_string(self.path(key))
            .ok()
            .and_then(|text| Json::parse(&text).ok())
            .and_then(|json| report_from_json(&json, code).ok());
        match &report {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        report
    }

    fn save(&self, key: &ReportKey, report: &SynthesisReport) {
        let text = report_to_json(report).to_text();
        if let Err(e) = std::fs::write(self.path(key), text) {
            eprintln!(
                "warning: report store failed to persist {}: {e}",
                self.path(key).display()
            );
        }
    }

    fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// JSON (de)serialization of reports.
// ---------------------------------------------------------------------------

fn kind_to_json(kind: PauliKind) -> Json {
    Json::Str(
        match kind {
            PauliKind::X => "X",
            PauliKind::Z => "Z",
        }
        .to_string(),
    )
}

fn kind_from_json(json: &Json) -> Result<PauliKind, String> {
    match json.as_str() {
        Some("X") => Ok(PauliKind::X),
        Some("Z") => Ok(PauliKind::Z),
        other => Err(format!("invalid Pauli kind {other:?}")),
    }
}

fn bitvec_to_json(bits: &BitVec) -> Json {
    Json::Str(
        (0..bits.len())
            .map(|i| if bits.get(i) { '1' } else { '0' })
            .collect(),
    )
}

fn bitvec_from_json(json: &Json) -> Result<BitVec, String> {
    let text = json.as_str().ok_or("bit vector must be a string")?;
    let bools: Vec<bool> = text
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("invalid bit character {other:?}")),
        })
        .collect::<Result<_, _>>()?;
    Ok(BitVec::from_bools(&bools))
}

fn num_field(json: &Json, key: &str) -> Result<u64, String> {
    json.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn str_field<'a>(json: &'a Json, key: &str) -> Result<&'a str, String> {
    json.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn bool_field(json: &Json, key: &str) -> Result<bool, String> {
    json.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing boolean field {key:?}"))
}

fn arr_field<'a>(json: &'a Json, key: &str) -> Result<&'a [Json], String> {
    json.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field {key:?}"))
}

fn stats_to_json(stats: &SatStats) -> Json {
    Json::obj(vec![
        ("calls", Json::Num(stats.calls)),
        ("sat", Json::Num(stats.sat)),
        ("unsat", Json::Num(stats.unsat)),
        ("interrupted", Json::Num(stats.interrupted)),
        ("decisions", Json::Num(stats.decisions)),
        ("propagations", Json::Num(stats.propagations)),
        ("conflicts", Json::Num(stats.conflicts)),
        ("learned_clauses", Json::Num(stats.learned_clauses)),
        ("restarts", Json::Num(stats.restarts)),
        ("variables", Json::Num(stats.variables)),
        ("clauses", Json::Num(stats.clauses)),
        ("warm_queries", Json::Num(stats.warm_queries)),
        ("retained_clauses", Json::Num(stats.retained_clauses)),
        ("reduced_clauses", Json::Num(stats.reduced_clauses)),
        ("peak_clause_db", Json::Num(stats.peak_clause_db)),
        ("minimized_literals", Json::Num(stats.minimized_literals)),
    ])
}

fn stats_from_json(json: &Json) -> Result<SatStats, String> {
    Ok(SatStats {
        calls: num_field(json, "calls")?,
        sat: num_field(json, "sat")?,
        unsat: num_field(json, "unsat")?,
        interrupted: num_field(json, "interrupted")?,
        decisions: num_field(json, "decisions")?,
        propagations: num_field(json, "propagations")?,
        conflicts: num_field(json, "conflicts")?,
        learned_clauses: num_field(json, "learned_clauses")?,
        restarts: num_field(json, "restarts")?,
        variables: num_field(json, "variables")?,
        clauses: num_field(json, "clauses")?,
        warm_queries: num_field(json, "warm_queries")?,
        retained_clauses: num_field(json, "retained_clauses")?,
        reduced_clauses: num_field(json, "reduced_clauses")?,
        peak_clause_db: num_field(json, "peak_clause_db")?,
        minimized_literals: num_field(json, "minimized_literals")?,
    })
}

fn stage_to_json(stage: Stage) -> Json {
    Json::Str(match stage {
        Stage::Prep => "prep".to_string(),
        Stage::Verification(kind) => format!("verification-{kind:?}"),
        Stage::Correction(kind) => format!("correction-{kind:?}"),
    })
}

fn stage_from_json(json: &Json) -> Result<Stage, String> {
    match json.as_str() {
        Some("prep") => Ok(Stage::Prep),
        Some("verification-X") => Ok(Stage::Verification(PauliKind::X)),
        Some("verification-Z") => Ok(Stage::Verification(PauliKind::Z)),
        Some("correction-X") => Ok(Stage::Correction(PauliKind::X)),
        Some("correction-Z") => Ok(Stage::Correction(PauliKind::Z)),
        other => Err(format!("invalid stage {other:?}")),
    }
}

fn duration_to_json(duration: Duration) -> Json {
    Json::Num(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX))
}

fn gate_to_json(gate: &Gate) -> Json {
    let tagged = |tag: &str, args: &[usize]| {
        let mut items = vec![Json::Str(tag.to_string())];
        items.extend(args.iter().map(|&a| Json::Num(a as u64)));
        Json::Arr(items)
    };
    match *gate {
        Gate::H { qubit } => tagged("h", &[qubit]),
        Gate::Cnot { control, target } => tagged("cx", &[control, target]),
        Gate::X { qubit } => tagged("x", &[qubit]),
        Gate::Z { qubit } => tagged("z", &[qubit]),
        Gate::PrepZ { qubit } => tagged("pz", &[qubit]),
        Gate::PrepX { qubit } => tagged("px", &[qubit]),
        Gate::MeasureZ { qubit, bit } => tagged("mz", &[qubit, bit]),
        Gate::MeasureX { qubit, bit } => tagged("mx", &[qubit, bit]),
    }
}

fn circuit_to_json(circuit: &Circuit) -> Json {
    Json::obj(vec![
        ("num_qubits", Json::Num(circuit.num_qubits() as u64)),
        (
            "gates",
            Json::Arr(circuit.gates().iter().map(gate_to_json).collect()),
        ),
    ])
}

fn circuit_from_json(json: &Json) -> Result<Circuit, String> {
    let num_qubits = num_field(json, "num_qubits")? as usize;
    let mut circuit = Circuit::new(num_qubits);
    for gate in arr_field(json, "gates")? {
        let items = gate.as_arr().ok_or("gate must be an array")?;
        let tag = items
            .first()
            .and_then(Json::as_str)
            .ok_or("gate tag must be a string")?;
        let arg = |i: usize| -> Result<usize, String> {
            items
                .get(i)
                .and_then(Json::as_num)
                .map(|n| n as usize)
                .ok_or_else(|| format!("gate {tag:?} is missing argument {i}"))
        };
        match tag {
            "h" => circuit.h(arg(1)?),
            "cx" => circuit.cnot(arg(1)?, arg(2)?),
            "x" => circuit.x(arg(1)?),
            "z" => circuit.z(arg(1)?),
            "pz" => circuit.prep_z(arg(1)?),
            "px" => circuit.prep_x(arg(1)?),
            "mz" | "mx" => {
                let bit = if tag == "mz" {
                    circuit.measure_z(arg(1)?)
                } else {
                    circuit.measure_x(arg(1)?)
                };
                if bit != arg(2)? {
                    return Err(format!(
                        "non-sequential measurement bit {} (expected {bit})",
                        arg(2)?
                    ));
                }
            }
            other => return Err(format!("unknown gate tag {other:?}")),
        }
    }
    Ok(circuit)
}

fn gadget_to_json(gadget: &MeasurementGadget) -> Json {
    Json::obj(vec![
        ("support", bitvec_to_json(gadget.support())),
        ("basis", kind_to_json(gadget.basis())),
        ("flagged", Json::Bool(gadget.is_flagged())),
        (
            "order",
            Json::Arr(
                gadget
                    .cnot_order()
                    .iter()
                    .map(|&q| Json::Num(q as u64))
                    .collect(),
            ),
        ),
    ])
}

fn gadget_from_json(json: &Json) -> Result<MeasurementGadget, String> {
    let support = bitvec_from_json(json.get("support").ok_or("missing gadget support")?)?;
    let basis = kind_from_json(json.get("basis").ok_or("missing gadget basis")?)?;
    let flagged = bool_field(json, "flagged")?;
    let order: Vec<usize> = arr_field(json, "order")?
        .iter()
        .map(|q| q.as_num().map(|n| n as usize).ok_or("invalid CNOT order"))
        .collect::<Result<_, _>>()?;
    Ok(MeasurementGadget::with_order(support, basis, order).flagged(flagged))
}

fn prep_to_json(prep: &PrepCircuit) -> Json {
    Json::obj(vec![
        ("circuit", circuit_to_json(&prep.circuit)),
        (
            "seeds",
            Json::Arr(prep.seeds.iter().map(|&s| Json::Num(s as u64)).collect()),
        ),
        (
            "method",
            Json::Str(
                match prep.method {
                    PrepMethod::Heuristic => "heuristic",
                    PrepMethod::Optimal => "optimal",
                }
                .to_string(),
            ),
        ),
        ("proven_optimal", Json::Bool(prep.proven_optimal)),
    ])
}

fn prep_from_json(json: &Json) -> Result<PrepCircuit, String> {
    let method = match str_field(json, "method")? {
        "heuristic" => PrepMethod::Heuristic,
        "optimal" => PrepMethod::Optimal,
        other => return Err(format!("invalid prep method {other:?}")),
    };
    Ok(PrepCircuit {
        circuit: circuit_from_json(json.get("circuit").ok_or("missing prep circuit")?)?,
        seeds: arr_field(json, "seeds")?
            .iter()
            .map(|s| s.as_num().map(|n| n as usize).ok_or("invalid seed"))
            .collect::<Result<_, _>>()?,
        method,
        proven_optimal: bool_field(json, "proven_optimal")?,
    })
}

fn branch_to_json(key: &BranchKey, branch: &CorrectionBranch) -> Json {
    Json::obj(vec![
        ("syndrome", Json::Num(key.syndrome)),
        ("flags", Json::Num(key.flags)),
        ("error_kind", kind_to_json(branch.error_kind)),
        (
            "measurements",
            Json::Arr(branch.measurements.iter().map(gadget_to_json).collect()),
        ),
        (
            "recoveries",
            Json::Arr(branch.recoveries.iter().map(bitvec_to_json).collect()),
        ),
        ("terminates", Json::Bool(branch.terminates)),
    ])
}

fn branch_from_json(json: &Json) -> Result<(BranchKey, CorrectionBranch), String> {
    let key = BranchKey {
        syndrome: num_field(json, "syndrome")?,
        flags: num_field(json, "flags")?,
    };
    let branch = CorrectionBranch {
        error_kind: kind_from_json(json.get("error_kind").ok_or("missing branch error kind")?)?,
        measurements: arr_field(json, "measurements")?
            .iter()
            .map(gadget_from_json)
            .collect::<Result<_, _>>()?,
        recoveries: arr_field(json, "recoveries")?
            .iter()
            .map(bitvec_from_json)
            .collect::<Result<_, _>>()?,
        terminates: bool_field(json, "terminates")?,
    };
    Ok((key, branch))
}

fn layer_to_json(layer: &VerificationLayer) -> Json {
    Json::obj(vec![
        ("error_kind", kind_to_json(layer.error_kind)),
        (
            "verifications",
            Json::Arr(layer.verifications.iter().map(gadget_to_json).collect()),
        ),
        (
            "branches",
            Json::Arr(
                layer
                    .branches
                    .iter()
                    .map(|(key, branch)| branch_to_json(key, branch))
                    .collect(),
            ),
        ),
    ])
}

fn layer_from_json(json: &Json) -> Result<VerificationLayer, String> {
    let error_kind = kind_from_json(json.get("error_kind").ok_or("missing layer error kind")?)?;
    let verifications = arr_field(json, "verifications")?
        .iter()
        .map(gadget_from_json)
        .collect::<Result<_, _>>()?;
    let mut layer = VerificationLayer::new(error_kind, verifications);
    for branch in arr_field(json, "branches")? {
        let (key, branch) = branch_from_json(branch)?;
        layer.branches.insert(key, branch);
    }
    Ok(layer)
}

fn stage_report_to_json(stage: &StageReport) -> Json {
    Json::obj(vec![
        ("stage", stage_to_json(stage.stage)),
        ("time_ns", duration_to_json(stage.time)),
        ("sat", stats_to_json(&stage.sat)),
        ("branches", Json::Num(stage.branches as u64)),
    ])
}

fn stage_report_from_json(json: &Json) -> Result<StageReport, String> {
    Ok(StageReport {
        stage: stage_from_json(json.get("stage").ok_or("missing stage tag")?)?,
        time: Duration::from_nanos(num_field(json, "time_ns")?),
        sat: stats_from_json(json.get("sat").ok_or("missing stage SAT stats")?)?,
        branches: num_field(json, "branches")? as usize,
    })
}

/// Serializes a full report into the on-disk JSON form.
pub(crate) fn report_to_json(report: &SynthesisReport) -> Json {
    Json::obj(vec![
        ("version", Json::Num(FORMAT_VERSION)),
        ("code_name", Json::Str(report.code_name.clone())),
        ("prep", prep_to_json(&report.protocol.prep)),
        (
            "layers",
            Json::Arr(report.protocol.layers.iter().map(layer_to_json).collect()),
        ),
        (
            "stages",
            Json::Arr(report.stages.iter().map(stage_report_to_json).collect()),
        ),
        ("fault_cache_hits", Json::Num(report.fault_cache_hits)),
        ("fault_cache_misses", Json::Num(report.fault_cache_misses)),
        ("total_time_ns", duration_to_json(report.total_time)),
    ])
}

/// Reconstructs a report from its JSON form. The stabilizer context is not
/// stored — it is rebuilt deterministically from `code`.
pub(crate) fn report_from_json(json: &Json, code: &CssCode) -> Result<SynthesisReport, String> {
    if num_field(json, "version")? != FORMAT_VERSION {
        return Err("unsupported report format version".to_string());
    }
    let code_name = str_field(json, "code_name")?.to_string();
    if code_name != code.name() {
        return Err(format!(
            "stored report is for code {code_name:?}, not {:?}",
            code.name()
        ));
    }
    let protocol = DeterministicProtocol {
        context: ZeroStateContext::new(code.clone()),
        prep: prep_from_json(json.get("prep").ok_or("missing prep")?)?,
        layers: arr_field(json, "layers")?
            .iter()
            .map(layer_from_json)
            .collect::<Result<_, _>>()?,
    };
    Ok(SynthesisReport {
        code_name,
        protocol,
        stages: arr_field(json, "stages")?
            .iter()
            .map(stage_report_from_json)
            .collect::<Result<_, _>>()?,
        fault_cache_hits: num_field(json, "fault_cache_hits")?,
        fault_cache_misses: num_field(json, "fault_cache_misses")?,
        total_time: Duration::from_nanos(num_field(json, "total_time_ns")?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthesisEngine;
    use dftsp_code::catalog;

    fn debug_rendering(report: &SynthesisReport) -> String {
        format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            report.code_name,
            report.protocol.prep,
            report.protocol.layers,
            report.stages,
            (report.fault_cache_hits, report.fault_cache_misses),
            report.total_time,
        )
    }

    #[test]
    fn report_json_round_trip_is_bit_identical() {
        let code = catalog::steane();
        let report = SynthesisEngine::default().synthesize(&code).unwrap();
        let json = report_to_json(&report);
        let text = json.to_text();
        let reparsed = Json::parse(&text).unwrap();
        let restored = report_from_json(&reparsed, &code).unwrap();
        assert_eq!(debug_rendering(&report), debug_rendering(&restored));
        // The rebuilt context matches the deterministic construction.
        assert_eq!(
            format!("{:?}", report.protocol.context),
            format!("{:?}", restored.protocol.context)
        );
    }

    #[test]
    fn report_key_separates_codes_and_configurations() {
        let options = SynthesisOptions::default();
        let steane = ReportKey::new(
            &catalog::steane(),
            &options,
            BackendChoice::Cdcl,
            LadderMode::Incremental,
        );
        let surface = ReportKey::new(
            &catalog::surface3(),
            &options,
            BackendChoice::Cdcl,
            LadderMode::Incremental,
        );
        assert_ne!(steane, surface);
        let fresh = ReportKey::new(
            &catalog::steane(),
            &options,
            BackendChoice::Cdcl,
            LadderMode::Fresh,
        );
        assert_ne!(steane.fingerprint, fresh.fingerprint);
        let mut tweaked = options.clone();
        tweaked.verification.max_measurements += 1;
        let other = ReportKey::new(
            &catalog::steane(),
            &tweaked,
            BackendChoice::Cdcl,
            LadderMode::Incremental,
        );
        assert_ne!(steane.fingerprint, other.fingerprint);
        // Same inputs, same key.
        let again = ReportKey::new(
            &catalog::steane(),
            &options,
            BackendChoice::Cdcl,
            LadderMode::Incremental,
        );
        assert_eq!(steane, again);
        assert!(steane.file_name().ends_with(".json"));
    }

    #[test]
    fn memory_store_round_trip() {
        let code = catalog::steane();
        let engine = SynthesisEngine::default();
        let report = engine.synthesize(&code).unwrap();
        let key = engine.report_key(&code);
        let store = MemoryReportStore::new();
        assert!(store.load(&key, &code).is_none());
        store.save(&key, &report);
        let loaded = store.load(&key, &code).expect("stored report is served");
        assert_eq!(debug_rendering(&report), debug_rendering(&loaded));
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn json_store_misses_on_corrupt_files() {
        let dir = std::env::temp_dir().join(format!(
            "dftsp-store-corrupt-{}-{:x}",
            std::process::id(),
            debug_fingerprint(&"corrupt")
        ));
        let store = JsonReportStore::new(&dir).unwrap();
        let code = catalog::steane();
        let engine = SynthesisEngine::default();
        let key = engine.report_key(&code);
        std::fs::write(store.dir().join(key.file_name()), "not json").unwrap();
        assert!(store.load(&key, &code).is_none());
        assert_eq!(store.misses(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
