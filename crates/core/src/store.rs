//! Persistent report stores: serve repeat synthesis requests from a cache.
//!
//! Synthesizing a protocol is expensive (SAT ladders plus exhaustive fault
//! enumeration) while the result is a pure function of the code and the
//! engine configuration. The [`ReportStore`] trait captures that seam: the
//! engine consults the store (keyed by a [`ReportKey`] — a structural
//! fingerprint of code, options, backend and ladder mode) before solving and
//! persists fresh reports after, turning [`crate::SynthesisEngine`] into a
//! cache-fronted service for repeat catalog traffic. This generalizes the
//! in-run [`crate::FaultCache`] fingerprinting to cross-run persistence.
//!
//! Two implementations ship in-tree:
//!
//! * [`MemoryReportStore`] — a thread-safe in-process map, for serving many
//!   requests from one long-lived engine;
//! * [`JsonReportStore`] — one JSON file per key in a directory, for warm
//!   starts across process restarts (the offline `serde` shim performs no
//!   serialization, so the codec is the crate's hand-rolled JSON module).
//!
//! A loaded report is bit-identical to the stored one: the protocol, the
//! per-stage statistics and the recorded timings all round-trip exactly.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dftsp_circuit::{Circuit, Gate};
use dftsp_code::CssCode;
use dftsp_f2::BitVec;
use dftsp_pauli::PauliKind;
use dftsp_sat::{BackendChoice, LadderMode, LaneStats, PortfolioLane, PortfolioStats};

use crate::cache::debug_fingerprint;
use crate::engine::{SatStats, Stage, StageReport, SynthesisReport};
use crate::gadget::MeasurementGadget;
use crate::json::Json;
use crate::prep::{PrepCircuit, PrepMethod};
use crate::protocol::{BranchKey, CorrectionBranch, DeterministicProtocol, VerificationLayer};
use crate::synthesis::SynthesisOptions;
use crate::workload::WorkloadKind;
use crate::ZeroStateContext;

/// Bumped whenever the on-disk format or the meaning of a fingerprint
/// changes, so stale cache entries miss instead of deserializing wrongly.
/// Version 3: [`ReportKey::file_name`] gained the collision-proof name-hash
/// infix, so pre-3 files are unreachable under the new naming and must not
/// resurface through a matching fingerprint.
/// Version 5: reports carry their [`WorkloadKind`] (and keys fingerprint
/// it), so zero-state and cat-state answers can never be confused.
const FORMAT_VERSION: u64 = 5;

/// Identifies one synthesis result: the code plus a fingerprint of
/// everything the result depends on (code structure, synthesis options, SAT
/// backend and ladder mode).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReportKey {
    /// Name of the code (kept readable for file names and diagnostics).
    pub code_name: String,
    /// Structural fingerprint of code + configuration.
    pub fingerprint: u64,
}

impl ReportKey {
    /// Builds the key for `code` under the given workload and engine
    /// configuration. `code` is the *effective* code the pipeline runs on
    /// (the GHZ code for cat-state workloads).
    pub fn new(
        code: &CssCode,
        workload: WorkloadKind,
        options: &SynthesisOptions,
        solver: BackendChoice,
        ladder: LadderMode,
    ) -> Self {
        let fingerprint = debug_fingerprint(&(
            FORMAT_VERSION,
            code.name(),
            code.parameters(),
            code.stabilizers(PauliKind::X),
            code.stabilizers(PauliKind::Z),
            code.logicals(PauliKind::X),
            code.logicals(PauliKind::Z),
            workload,
            options,
            solver,
            ladder,
        ));
        ReportKey {
            code_name: code.name().to_string(),
            fingerprint,
        }
    }

    /// A file-system-safe name for this key, unique per key.
    ///
    /// The readable prefix is the sanitized code name, which is lossy
    /// (distinct names can sanitize identically), so the name also carries
    /// the full 64-bit content hash of the *unsanitized* code name next to
    /// the configuration fingerprint — two distinct keys map to distinct
    /// files up to a 64-bit hash collision, the same standard the
    /// fingerprint itself is built on.
    pub fn file_name(&self) -> String {
        let safe: String = self
            .code_name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let name_hash = debug_fingerprint(self.code_name.as_str());
        format!("{safe}-{name_hash:016x}-{:016x}.json", self.fingerprint)
    }
}

/// A persistent cache of [`SynthesisReport`]s keyed by [`ReportKey`].
///
/// Implementations must be thread-safe: [`crate::SynthesisEngine::synthesize_all`]
/// consults the store from its worker threads.
pub trait ReportStore: Send + Sync + std::fmt::Debug {
    /// Returns the stored report for `key`, if any. `code` is the code the
    /// key was built from; implementations that persist externally use it to
    /// reconstruct the parts of a report that are derivable from the code.
    fn load(&self, key: &ReportKey, code: &CssCode) -> Option<SynthesisReport>;

    /// Persists a freshly synthesized report under `key`.
    fn save(&self, key: &ReportKey, report: &SynthesisReport);

    /// Number of lookups answered from the store.
    fn hits(&self) -> u64;

    /// Number of lookups that missed.
    fn misses(&self) -> u64;
}

/// Raw, text-level access to a store's persisted entries — the seam the
/// remote [`crate::StoreServer`] serves over.
///
/// A store server holds the *encoded* reports only: decoding a
/// [`SynthesisReport`] needs the [`CssCode`] it was synthesized for, which
/// lives with the clients, not the server. This trait therefore moves the
/// on-disk JSON text verbatim — whatever bytes a client `put`s are the bytes
/// every later `get` returns, which is what keeps remote round-trips
/// bit-identical to local store hits.
pub trait RawReportKv: Send + Sync + std::fmt::Debug {
    /// The stored entry's JSON text for `key`, if any.
    fn get_text(&self, key: &ReportKey) -> Option<String>;

    /// Persists already-encoded report text under `key`.
    fn put_text(&self, key: &ReportKey, text: &str);
}

/// Why a fallible store operation failed — the typed evidence behind a
/// degraded miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreFault {
    /// The backing wire transport failed (remote stores).
    Wire(crate::remote::WireError),
    /// A [`crate::FaultPlan`] scheduled this operation to fail (test
    /// injection via [`crate::FaultyStore`]).
    Injected(crate::remote::FaultError),
}

impl std::fmt::Display for StoreFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreFault::Wire(e) => write!(f, "store transport failed: {e}"),
            StoreFault::Injected(e) => write!(f, "store fault injected: {e}"),
        }
    }
}

impl std::error::Error for StoreFault {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreFault::Wire(e) => Some(e),
            StoreFault::Injected(e) => Some(e),
        }
    }
}

/// The fallible face of a report store.
///
/// [`ReportStore`] is deliberately infallible — a broken backend reads as a
/// miss so an outage never fails a synthesis — but that very contract makes
/// a dead replica indistinguishable from a cold one. `CheckedStore` is the
/// seam that preserves the distinction: `Ok(None)` is a genuine miss (the
/// backend answered and has nothing), `Err` is a *failure* (the backend is
/// unreachable or misbehaving). [`crate::ReplicatedStore`] consumes this
/// trait so its per-replica circuit breakers trip on failures, not on
/// misses.
///
/// Purely local stores ([`MemoryReportStore`], [`JsonReportStore`]) never
/// fail: their impls always return `Ok`. [`crate::RemoteReportStore`]
/// surfaces its wire errors; [`crate::FaultyStore`] surfaces injected ones.
pub trait CheckedStore: Send + Sync + std::fmt::Debug {
    /// Like [`ReportStore::load`], with failures distinguished from misses.
    ///
    /// # Errors
    ///
    /// [`StoreFault`] when the backend failed to answer (as opposed to
    /// answering "nothing stored").
    fn load_checked(
        &self,
        key: &ReportKey,
        code: &CssCode,
    ) -> Result<Option<SynthesisReport>, StoreFault>;

    /// Like [`ReportStore::save`], with failures surfaced.
    ///
    /// # Errors
    ///
    /// [`StoreFault`] when the write did not land.
    fn save_checked(&self, key: &ReportKey, report: &SynthesisReport) -> Result<(), StoreFault>;
}

/// Thread-safe in-memory [`ReportStore`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use dftsp::{MemoryReportStore, ReportStore, SynthesisEngine};
/// use dftsp_code::catalog;
///
/// let store = Arc::new(MemoryReportStore::new());
/// let engine = SynthesisEngine::builder().report_store(store.clone()).build();
/// let first = engine.synthesize(&catalog::steane())?;
/// let second = engine.synthesize(&catalog::steane())?; // served from the store
/// assert_eq!(store.hits(), 1);
/// assert_eq!(format!("{:?}", first.protocol.layers), format!("{:?}", second.protocol.layers));
/// # Ok::<(), dftsp::SynthesisError>(())
/// ```
#[derive(Debug, Default)]
pub struct MemoryReportStore {
    reports: Mutex<HashMap<ReportKey, SynthesisReport>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MemoryReportStore {
    /// An empty store.
    pub fn new() -> Self {
        MemoryReportStore::default()
    }

    /// Number of stored reports.
    pub fn len(&self) -> usize {
        self.reports.lock().expect("store lock poisoned").len()
    }

    /// Returns `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl CheckedStore for MemoryReportStore {
    fn load_checked(
        &self,
        key: &ReportKey,
        code: &CssCode,
    ) -> Result<Option<SynthesisReport>, StoreFault> {
        Ok(self.load(key, code))
    }

    fn save_checked(&self, key: &ReportKey, report: &SynthesisReport) -> Result<(), StoreFault> {
        self.save(key, report);
        Ok(())
    }
}

impl ReportStore for MemoryReportStore {
    fn load(&self, key: &ReportKey, _code: &CssCode) -> Option<SynthesisReport> {
        let report = self
            .reports
            .lock()
            .expect("store lock poisoned")
            .get(key)
            .cloned();
        match &report {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        report
    }

    fn save(&self, key: &ReportKey, report: &SynthesisReport) {
        self.reports
            .lock()
            .expect("store lock poisoned")
            .insert(key.clone(), report.clone());
    }

    fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Directory-backed [`ReportStore`]: one JSON file per key.
///
/// Reports survive process restarts; a second run of the same catalog serves
/// every request from disk without SAT work.
///
/// The store is hardened for service traffic:
///
/// * **Atomic writes** — a report is written to a uniquely named tempfile in
///   the store directory and atomically renamed into place, so a concurrent
///   reader (or a crash mid-write) never observes a half-written entry.
/// * **Corrupt-entry tolerance** — a present-but-undecodable file (truncated
///   write from an earlier unhardened version, disk corruption, stale
///   format) is *skipped with a warning* and counted in
///   [`JsonReportStore::corrupt_entries`]; it reads as a miss, never an
///   error or a panic, and the next save overwrites it.
#[derive(Debug)]
pub struct JsonReportStore {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
}

/// Discriminates concurrent tempfile writes process-wide, so two store
/// instances opened on the same directory can never pick the same tempfile
/// name for one key.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl JsonReportStore {
    /// Opens (and creates if necessary) the store directory.
    ///
    /// # Errors
    ///
    /// Forwards the I/O error if the directory cannot be created.
    pub fn new(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        // Sweep tempfiles orphaned by a crash between write and rename —
        // without this they would accumulate forever. A concurrent save from
        // another live process can in principle lose its tempfile to the
        // sweep; that costs one (re-solvable) cache write, never
        // correctness: the save only warns and the entry stays a miss.
        if let Ok(dir_entries) = std::fs::read_dir(&dir) {
            for entry in dir_entries.flatten() {
                if entry.file_name().to_string_lossy().contains(".tmp-") {
                    std::fs::remove_file(entry.path()).ok();
                }
            }
        }
        Ok(JsonReportStore {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
        })
    }

    /// The directory the store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of lookups that found a file but could not decode it (the
    /// entry was skipped with a warning and reported as a miss).
    pub fn corrupt_entries(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }

    fn path(&self, key: &ReportKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Decodes one stored entry; `Err` carries the reason the entry is
    /// unusable (for the skip-with-warning diagnostics).
    fn decode(text: &str, code: &CssCode) -> Result<SynthesisReport, String> {
        let json = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        report_from_json(&json, code)
    }
}

impl CheckedStore for JsonReportStore {
    // A local directory never "fails" in the replica sense: an unreadable or
    // corrupt entry is already absorbed as a (counted) miss by `load`, and a
    // failed write already warns and drops. Disk-level health is not a
    // breaker concern.
    fn load_checked(
        &self,
        key: &ReportKey,
        code: &CssCode,
    ) -> Result<Option<SynthesisReport>, StoreFault> {
        Ok(self.load(key, code))
    }

    fn save_checked(&self, key: &ReportKey, report: &SynthesisReport) -> Result<(), StoreFault> {
        self.save(key, report);
        Ok(())
    }
}

impl ReportStore for JsonReportStore {
    fn load(&self, key: &ReportKey, code: &CssCode) -> Option<SynthesisReport> {
        let path = self.path(key);
        let report = match std::fs::read_to_string(&path) {
            // A missing entry is the ordinary cold-cache miss: stay silent.
            Err(_) => None,
            Ok(text) => match JsonReportStore::decode(&text, code) {
                Ok(report) => Some(report),
                Err(reason) => {
                    // Present but undecodable: skip with a warning, never
                    // fail the request over a bad cache entry.
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "warning: report store skipping corrupt entry {}: {reason}",
                        path.display()
                    );
                    None
                }
            },
        };
        match &report {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        report
    }

    fn save(&self, key: &ReportKey, report: &SynthesisReport) {
        self.put_text(key, &report_to_json(report).to_text());
    }

    fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl RawReportKv for JsonReportStore {
    fn get_text(&self, key: &ReportKey) -> Option<String> {
        std::fs::read_to_string(self.path(key)).ok()
    }

    fn put_text(&self, key: &ReportKey, text: &str) {
        let path = self.path(key);
        // Tempfile + atomic rename: the process id separates processes and
        // the process-wide counter separates every call within one process
        // (including calls from different store instances on the same
        // directory), so concurrent saves of the same key never interleave
        // within one file and readers only ever see complete entries.
        let tmp = self.dir.join(format!(
            "{}.tmp-{}-{}",
            key.file_name(),
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        let written = std::fs::write(&tmp, text).and_then(|()| std::fs::rename(&tmp, &path));
        if let Err(e) = written {
            eprintln!(
                "warning: report store failed to persist {}: {e}",
                path.display()
            );
            std::fs::remove_file(&tmp).ok();
        }
    }
}

/// One resident entry of the [`TieredStore`] memory front.
///
/// The report is shared, not owned: a hit clones the `Arc` inside the front
/// lock and materializes the caller's copy outside it, so concurrent cache
/// hits are not serialized behind each other's deep clones.
#[derive(Debug)]
struct FrontEntry {
    report: Arc<SynthesisReport>,
    /// Logical LRU clock value of the last hit (or the insertion).
    last_used: u64,
    /// Wall-clock insertion time, for age-based expiry.
    inserted: Instant,
}

/// Outcome of a front-cache lookup.
enum Touch {
    /// Resident and fresh: the shared report, LRU position refreshed.
    Hit(Arc<SynthesisReport>),
    /// Resident but older than the store's max age: dropped on the spot.
    Expired,
    /// Not resident.
    Miss,
}

/// The bounded memory front of a [`TieredStore`].
#[derive(Debug, Default)]
struct FrontCache {
    entries: HashMap<ReportKey, FrontEntry>,
    /// `last_used` tick → key. Ticks are unique, so this is a total LRU
    /// order and its first entry is always the eviction victim — O(log n)
    /// to maintain instead of a full scan per eviction.
    order: BTreeMap<u64, ReportKey>,
    /// Monotonic logical clock: every insertion and hit advances it, so LRU
    /// order is a total order independent of wall-clock resolution.
    tick: u64,
}

impl FrontCache {
    /// Looks `key` up, refreshing its LRU position. The age check happens
    /// lazily here, so hot-path reads never sweep the whole cache.
    fn touch(&mut self, key: &ReportKey, max_age: Option<Duration>) -> Touch {
        self.tick += 1;
        let tick = self.tick;
        let Some(entry) = self.entries.get_mut(key) else {
            return Touch::Miss;
        };
        if max_age.is_some_and(|age| entry.inserted.elapsed() > age) {
            let stale = entry.last_used;
            self.entries.remove(key);
            self.order.remove(&stale);
            return Touch::Expired;
        }
        self.order.remove(&entry.last_used);
        entry.last_used = tick;
        self.order.insert(tick, key.clone());
        Touch::Hit(Arc::clone(&entry.report))
    }

    fn insert(&mut self, key: ReportKey, report: Arc<SynthesisReport>) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(replaced) = self.entries.insert(
            key.clone(),
            FrontEntry {
                report,
                last_used: tick,
                inserted: Instant::now(),
            },
        ) {
            self.order.remove(&replaced.last_used);
        }
        self.order.insert(tick, key);
    }

    /// Drops entries older than `max_age`; returns how many were dropped.
    /// Only the write path sweeps — reads expire lazily in
    /// [`FrontCache::touch`].
    fn expire(&mut self, max_age: Option<Duration>) -> u64 {
        let Some(max_age) = max_age else { return 0 };
        let stale: Vec<(u64, ReportKey)> = self
            .entries
            .iter()
            .filter(|(_, entry)| entry.inserted.elapsed() > max_age)
            .map(|(key, entry)| (entry.last_used, key.clone()))
            .collect();
        for (tick, key) in &stale {
            self.entries.remove(key);
            self.order.remove(tick);
        }
        stale.len() as u64
    }

    /// Evicts least-recently-used entries until at most `capacity` remain;
    /// returns how many were evicted. The logical clock makes the order
    /// deterministic: strictly ascending `last_used`, no ties possible.
    fn evict_to(&mut self, capacity: usize) -> u64 {
        let mut evicted = 0;
        while self.entries.len() > capacity {
            let (_, victim) = self.order.pop_first().expect("order tracks entries");
            self.entries.remove(&victim);
            evicted += 1;
        }
        evicted
    }
}

/// A two-tier [`ReportStore`]: a bounded in-memory front over an optional
/// persistent back (typically a [`JsonReportStore`]).
///
/// The front holds at most [`TieredStore::capacity`] reports and optionally
/// expires them by age; eviction is least-recently-used with a logical
/// clock, so the eviction order is deterministic for a given access history.
/// Every save is written through to the back, so an evicted entry is *not*
/// lost — the next lookup faults it back in from the back tier. Lookups that
/// hit either tier count as store hits.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use dftsp::{ReportStore, SynthesisEngine, TieredStore};
/// use dftsp_code::catalog;
///
/// // A front bounded to 8 resident reports, memory-only (no back tier).
/// let store = Arc::new(TieredStore::new(8));
/// let engine = SynthesisEngine::builder().report_store(store.clone()).build();
/// engine.synthesize(&catalog::steane())?;
/// engine.synthesize(&catalog::steane())?; // served from the front
/// assert_eq!(store.hits(), 1);
/// assert_eq!(store.evictions(), 0);
/// # Ok::<(), dftsp::SynthesisError>(())
/// ```
#[derive(Debug)]
pub struct TieredStore {
    front: Mutex<FrontCache>,
    back: Option<Arc<dyn ReportStore>>,
    capacity: usize,
    max_age: Option<Duration>,
    hits: AtomicU64,
    misses: AtomicU64,
    front_hits: AtomicU64,
    back_hits: AtomicU64,
    evictions: AtomicU64,
}

impl TieredStore {
    /// A memory-only tiered store whose front holds at most `capacity`
    /// reports. With `capacity` 0 the front is disabled and every lookup
    /// goes to the back tier (if any).
    pub fn new(capacity: usize) -> Self {
        TieredStore {
            front: Mutex::new(FrontCache::default()),
            back: None,
            capacity,
            max_age: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            front_hits: AtomicU64::new(0),
            back_hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Attaches a persistent back tier. Saves are written through to it and
    /// front evictions fault back in from it.
    pub fn with_back(mut self, back: Arc<dyn ReportStore>) -> Self {
        self.back = Some(back);
        self
    }

    /// Expires front entries older than `max_age` (checked on every access).
    /// Expired entries count as evictions.
    pub fn with_max_age(mut self, max_age: Duration) -> Self {
        self.max_age = Some(max_age);
        self
    }

    /// The front tier's capacity in resident reports.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of reports currently resident in the memory front.
    pub fn front_len(&self) -> usize {
        self.front
            .lock()
            .expect("front lock poisoned")
            .entries
            .len()
    }

    /// Lookups served by the memory front.
    pub fn front_hits(&self) -> u64 {
        self.front_hits.load(Ordering::Relaxed)
    }

    /// Lookups served by the back tier (and promoted into the front).
    pub fn back_hits(&self) -> u64 {
        self.back_hits.load(Ordering::Relaxed)
    }

    /// Front entries dropped by LRU eviction or age expiry.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Admits `report` into the locked front: write-path age sweep, the
    /// insertion itself, then the capacity bound — with every dropped entry
    /// accounted as an eviction.
    fn admit(&self, key: &ReportKey, report: Arc<SynthesisReport>) {
        let mut front = self.front.lock().expect("front lock poisoned");
        let expired = front.expire(self.max_age);
        front.insert(key.clone(), report);
        let evicted = front.evict_to(self.capacity);
        drop(front);
        self.evictions
            .fetch_add(expired + evicted, Ordering::Relaxed);
    }
}

impl ReportStore for TieredStore {
    fn load(&self, key: &ReportKey, code: &CssCode) -> Option<SynthesisReport> {
        let touched = self
            .front
            .lock()
            .expect("front lock poisoned")
            .touch(key, self.max_age);
        match touched {
            Touch::Hit(report) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.front_hits.fetch_add(1, Ordering::Relaxed);
                // Materialize the caller's copy outside the front lock.
                return Some(report.as_ref().clone());
            }
            Touch::Expired => {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            Touch::Miss => {}
        }
        if let Some(report) = self.back.as_ref().and_then(|back| back.load(key, code)) {
            if self.capacity > 0 {
                // The promotion copy is made outside the front lock.
                self.admit(key, Arc::new(report.clone()));
            }
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.back_hits.fetch_add(1, Ordering::Relaxed);
            return Some(report);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn save(&self, key: &ReportKey, report: &SynthesisReport) {
        if self.capacity > 0 {
            self.admit(key, Arc::new(report.clone()));
        }
        if let Some(back) = &self.back {
            back.save(key, report);
        }
    }

    fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// JSON (de)serialization of reports.
// ---------------------------------------------------------------------------

fn kind_to_json(kind: PauliKind) -> Json {
    Json::Str(
        match kind {
            PauliKind::X => "X",
            PauliKind::Z => "Z",
        }
        .to_string(),
    )
}

fn kind_from_json(json: &Json) -> Result<PauliKind, String> {
    match json.as_str() {
        Some("X") => Ok(PauliKind::X),
        Some("Z") => Ok(PauliKind::Z),
        other => Err(format!("invalid Pauli kind {other:?}")),
    }
}

fn bitvec_to_json(bits: &BitVec) -> Json {
    Json::Str(
        (0..bits.len())
            .map(|i| if bits.get(i) { '1' } else { '0' })
            .collect(),
    )
}

fn bitvec_from_json(json: &Json) -> Result<BitVec, String> {
    let text = json.as_str().ok_or("bit vector must be a string")?;
    let bools: Vec<bool> = text
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("invalid bit character {other:?}")),
        })
        .collect::<Result<_, _>>()?;
    Ok(BitVec::from_bools(&bools))
}

fn num_field(json: &Json, key: &str) -> Result<u64, String> {
    json.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn str_field<'a>(json: &'a Json, key: &str) -> Result<&'a str, String> {
    json.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn bool_field(json: &Json, key: &str) -> Result<bool, String> {
    json.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing boolean field {key:?}"))
}

fn arr_field<'a>(json: &'a Json, key: &str) -> Result<&'a [Json], String> {
    json.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field {key:?}"))
}

fn stats_to_json(stats: &SatStats) -> Json {
    Json::obj(vec![
        ("calls", Json::Num(stats.calls)),
        ("sat", Json::Num(stats.sat)),
        ("unsat", Json::Num(stats.unsat)),
        ("interrupted", Json::Num(stats.interrupted)),
        ("decisions", Json::Num(stats.decisions)),
        ("propagations", Json::Num(stats.propagations)),
        ("conflicts", Json::Num(stats.conflicts)),
        ("learned_clauses", Json::Num(stats.learned_clauses)),
        ("restarts", Json::Num(stats.restarts)),
        ("variables", Json::Num(stats.variables)),
        ("clauses", Json::Num(stats.clauses)),
        ("warm_queries", Json::Num(stats.warm_queries)),
        ("retained_clauses", Json::Num(stats.retained_clauses)),
        ("reduced_clauses", Json::Num(stats.reduced_clauses)),
        ("peak_clause_db", Json::Num(stats.peak_clause_db)),
        ("minimized_literals", Json::Num(stats.minimized_literals)),
        ("portfolio", portfolio_to_json(&stats.portfolio)),
    ])
}

fn portfolio_to_json(portfolio: &PortfolioStats) -> Json {
    Json::obj(vec![
        ("races", Json::Num(portfolio.races)),
        ("solo", Json::Num(portfolio.solo)),
        (
            "lanes",
            Json::Arr(
                portfolio
                    .lanes
                    .iter()
                    .map(|lane| {
                        Json::obj(vec![
                            ("wins", Json::Num(lane.wins)),
                            ("losses", Json::Num(lane.losses)),
                            ("cancelled_conflicts", Json::Num(lane.cancelled_conflicts)),
                            ("time_us", Json::Num(lane.time_us)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn portfolio_from_json(json: &Json) -> Result<PortfolioStats, String> {
    let lanes_json = arr_field(json, "lanes")?;
    if lanes_json.len() != PortfolioLane::ALL.len() {
        return Err(format!(
            "expected {} portfolio lanes, found {}",
            PortfolioLane::ALL.len(),
            lanes_json.len()
        ));
    }
    let mut lanes = [LaneStats::default(); PortfolioLane::ALL.len()];
    for (lane, json) in lanes.iter_mut().zip(lanes_json) {
        *lane = LaneStats {
            wins: num_field(json, "wins")?,
            losses: num_field(json, "losses")?,
            cancelled_conflicts: num_field(json, "cancelled_conflicts")?,
            time_us: num_field(json, "time_us")?,
        };
    }
    Ok(PortfolioStats {
        races: num_field(json, "races")?,
        solo: num_field(json, "solo")?,
        lanes,
    })
}

fn stats_from_json(json: &Json) -> Result<SatStats, String> {
    Ok(SatStats {
        calls: num_field(json, "calls")?,
        sat: num_field(json, "sat")?,
        unsat: num_field(json, "unsat")?,
        interrupted: num_field(json, "interrupted")?,
        decisions: num_field(json, "decisions")?,
        propagations: num_field(json, "propagations")?,
        conflicts: num_field(json, "conflicts")?,
        learned_clauses: num_field(json, "learned_clauses")?,
        restarts: num_field(json, "restarts")?,
        variables: num_field(json, "variables")?,
        clauses: num_field(json, "clauses")?,
        warm_queries: num_field(json, "warm_queries")?,
        retained_clauses: num_field(json, "retained_clauses")?,
        reduced_clauses: num_field(json, "reduced_clauses")?,
        peak_clause_db: num_field(json, "peak_clause_db")?,
        minimized_literals: num_field(json, "minimized_literals")?,
        portfolio: portfolio_from_json(
            json.get("portfolio")
                .ok_or_else(|| "missing object field \"portfolio\"".to_string())?,
        )?,
    })
}

fn stage_to_json(stage: Stage) -> Json {
    Json::Str(match stage {
        Stage::Prep => "prep".to_string(),
        Stage::Verification(kind) => format!("verification-{kind:?}"),
        Stage::Correction(kind) => format!("correction-{kind:?}"),
    })
}

fn stage_from_json(json: &Json) -> Result<Stage, String> {
    match json.as_str() {
        Some("prep") => Ok(Stage::Prep),
        Some("verification-X") => Ok(Stage::Verification(PauliKind::X)),
        Some("verification-Z") => Ok(Stage::Verification(PauliKind::Z)),
        Some("correction-X") => Ok(Stage::Correction(PauliKind::X)),
        Some("correction-Z") => Ok(Stage::Correction(PauliKind::Z)),
        other => Err(format!("invalid stage {other:?}")),
    }
}

fn duration_to_json(duration: Duration) -> Json {
    Json::Num(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX))
}

fn gate_to_json(gate: &Gate) -> Json {
    let tagged = |tag: &str, args: &[usize]| {
        let mut items = vec![Json::Str(tag.to_string())];
        items.extend(args.iter().map(|&a| Json::Num(a as u64)));
        Json::Arr(items)
    };
    match *gate {
        Gate::H { qubit } => tagged("h", &[qubit]),
        Gate::Cnot { control, target } => tagged("cx", &[control, target]),
        Gate::X { qubit } => tagged("x", &[qubit]),
        Gate::Z { qubit } => tagged("z", &[qubit]),
        Gate::PrepZ { qubit } => tagged("pz", &[qubit]),
        Gate::PrepX { qubit } => tagged("px", &[qubit]),
        Gate::MeasureZ { qubit, bit } => tagged("mz", &[qubit, bit]),
        Gate::MeasureX { qubit, bit } => tagged("mx", &[qubit, bit]),
    }
}

fn circuit_to_json(circuit: &Circuit) -> Json {
    Json::obj(vec![
        ("num_qubits", Json::Num(circuit.num_qubits() as u64)),
        (
            "gates",
            Json::Arr(circuit.gates().iter().map(gate_to_json).collect()),
        ),
    ])
}

fn circuit_from_json(json: &Json) -> Result<Circuit, String> {
    let num_qubits = num_field(json, "num_qubits")? as usize;
    let mut circuit = Circuit::new(num_qubits);
    for gate in arr_field(json, "gates")? {
        let items = gate.as_arr().ok_or("gate must be an array")?;
        let tag = items
            .first()
            .and_then(Json::as_str)
            .ok_or("gate tag must be a string")?;
        let arg = |i: usize| -> Result<usize, String> {
            items
                .get(i)
                .and_then(Json::as_num)
                .map(|n| n as usize)
                .ok_or_else(|| format!("gate {tag:?} is missing argument {i}"))
        };
        match tag {
            "h" => circuit.h(arg(1)?),
            "cx" => circuit.cnot(arg(1)?, arg(2)?),
            "x" => circuit.x(arg(1)?),
            "z" => circuit.z(arg(1)?),
            "pz" => circuit.prep_z(arg(1)?),
            "px" => circuit.prep_x(arg(1)?),
            "mz" | "mx" => {
                let bit = if tag == "mz" {
                    circuit.measure_z(arg(1)?)
                } else {
                    circuit.measure_x(arg(1)?)
                };
                if bit != arg(2)? {
                    return Err(format!(
                        "non-sequential measurement bit {} (expected {bit})",
                        arg(2)?
                    ));
                }
            }
            other => return Err(format!("unknown gate tag {other:?}")),
        }
    }
    Ok(circuit)
}

fn gadget_to_json(gadget: &MeasurementGadget) -> Json {
    Json::obj(vec![
        ("support", bitvec_to_json(gadget.support())),
        ("basis", kind_to_json(gadget.basis())),
        ("flagged", Json::Bool(gadget.is_flagged())),
        (
            "order",
            Json::Arr(
                gadget
                    .cnot_order()
                    .iter()
                    .map(|&q| Json::Num(q as u64))
                    .collect(),
            ),
        ),
    ])
}

fn gadget_from_json(json: &Json) -> Result<MeasurementGadget, String> {
    let support = bitvec_from_json(json.get("support").ok_or("missing gadget support")?)?;
    let basis = kind_from_json(json.get("basis").ok_or("missing gadget basis")?)?;
    let flagged = bool_field(json, "flagged")?;
    let order: Vec<usize> = arr_field(json, "order")?
        .iter()
        .map(|q| q.as_num().map(|n| n as usize).ok_or("invalid CNOT order"))
        .collect::<Result<_, _>>()?;
    Ok(MeasurementGadget::with_order(support, basis, order).flagged(flagged))
}

fn prep_to_json(prep: &PrepCircuit) -> Json {
    Json::obj(vec![
        ("circuit", circuit_to_json(&prep.circuit)),
        (
            "seeds",
            Json::Arr(prep.seeds.iter().map(|&s| Json::Num(s as u64)).collect()),
        ),
        (
            "method",
            Json::Str(
                match prep.method {
                    PrepMethod::Heuristic => "heuristic",
                    PrepMethod::Optimal => "optimal",
                }
                .to_string(),
            ),
        ),
        ("proven_optimal", Json::Bool(prep.proven_optimal)),
    ])
}

fn prep_from_json(json: &Json) -> Result<PrepCircuit, String> {
    let method = match str_field(json, "method")? {
        "heuristic" => PrepMethod::Heuristic,
        "optimal" => PrepMethod::Optimal,
        other => return Err(format!("invalid prep method {other:?}")),
    };
    Ok(PrepCircuit {
        circuit: circuit_from_json(json.get("circuit").ok_or("missing prep circuit")?)?,
        seeds: arr_field(json, "seeds")?
            .iter()
            .map(|s| s.as_num().map(|n| n as usize).ok_or("invalid seed"))
            .collect::<Result<_, _>>()?,
        method,
        proven_optimal: bool_field(json, "proven_optimal")?,
    })
}

fn branch_to_json(key: &BranchKey, branch: &CorrectionBranch) -> Json {
    Json::obj(vec![
        ("syndrome", Json::Num(key.syndrome)),
        ("flags", Json::Num(key.flags)),
        ("error_kind", kind_to_json(branch.error_kind)),
        (
            "measurements",
            Json::Arr(branch.measurements.iter().map(gadget_to_json).collect()),
        ),
        (
            "recoveries",
            Json::Arr(branch.recoveries.iter().map(bitvec_to_json).collect()),
        ),
        ("terminates", Json::Bool(branch.terminates)),
    ])
}

fn branch_from_json(json: &Json) -> Result<(BranchKey, CorrectionBranch), String> {
    let key = BranchKey {
        syndrome: num_field(json, "syndrome")?,
        flags: num_field(json, "flags")?,
    };
    let branch = CorrectionBranch {
        error_kind: kind_from_json(json.get("error_kind").ok_or("missing branch error kind")?)?,
        measurements: arr_field(json, "measurements")?
            .iter()
            .map(gadget_from_json)
            .collect::<Result<_, _>>()?,
        recoveries: arr_field(json, "recoveries")?
            .iter()
            .map(bitvec_from_json)
            .collect::<Result<_, _>>()?,
        terminates: bool_field(json, "terminates")?,
    };
    Ok((key, branch))
}

fn layer_to_json(layer: &VerificationLayer) -> Json {
    Json::obj(vec![
        ("error_kind", kind_to_json(layer.error_kind)),
        (
            "verifications",
            Json::Arr(layer.verifications.iter().map(gadget_to_json).collect()),
        ),
        (
            "branches",
            Json::Arr(
                layer
                    .branches
                    .iter()
                    .map(|(key, branch)| branch_to_json(key, branch))
                    .collect(),
            ),
        ),
    ])
}

fn layer_from_json(json: &Json) -> Result<VerificationLayer, String> {
    let error_kind = kind_from_json(json.get("error_kind").ok_or("missing layer error kind")?)?;
    let verifications = arr_field(json, "verifications")?
        .iter()
        .map(gadget_from_json)
        .collect::<Result<_, _>>()?;
    let mut layer = VerificationLayer::new(error_kind, verifications);
    for branch in arr_field(json, "branches")? {
        let (key, branch) = branch_from_json(branch)?;
        layer.branches.insert(key, branch);
    }
    Ok(layer)
}

fn stage_report_to_json(stage: &StageReport) -> Json {
    Json::obj(vec![
        ("stage", stage_to_json(stage.stage)),
        ("time_ns", duration_to_json(stage.time)),
        ("sat", stats_to_json(&stage.sat)),
        ("branches", Json::Num(stage.branches as u64)),
    ])
}

fn stage_report_from_json(json: &Json) -> Result<StageReport, String> {
    Ok(StageReport {
        stage: stage_from_json(json.get("stage").ok_or("missing stage tag")?)?,
        time: Duration::from_nanos(num_field(json, "time_ns")?),
        sat: stats_from_json(json.get("sat").ok_or("missing stage SAT stats")?)?,
        branches: num_field(json, "branches")? as usize,
    })
}

/// Serializes a full report into the on-disk JSON form.
pub(crate) fn report_to_json(report: &SynthesisReport) -> Json {
    Json::obj(vec![
        ("version", Json::Num(FORMAT_VERSION)),
        ("code_name", Json::Str(report.code_name.clone())),
        ("workload", Json::Str(report.workload.label())),
        ("prep", prep_to_json(&report.protocol.prep)),
        (
            "layers",
            Json::Arr(report.protocol.layers.iter().map(layer_to_json).collect()),
        ),
        (
            "stages",
            Json::Arr(report.stages.iter().map(stage_report_to_json).collect()),
        ),
        ("fault_cache_hits", Json::Num(report.fault_cache_hits)),
        ("fault_cache_misses", Json::Num(report.fault_cache_misses)),
        ("total_time_ns", duration_to_json(report.total_time)),
    ])
}

/// Reconstructs a report from its JSON form. The stabilizer context is not
/// stored — it is rebuilt deterministically from `code`.
pub(crate) fn report_from_json(json: &Json, code: &CssCode) -> Result<SynthesisReport, String> {
    if num_field(json, "version")? != FORMAT_VERSION {
        return Err("unsupported report format version".to_string());
    }
    let code_name = str_field(json, "code_name")?.to_string();
    if code_name != code.name() {
        return Err(format!(
            "stored report is for code {code_name:?}, not {:?}",
            code.name()
        ));
    }
    let workload_label = str_field(json, "workload")?;
    let workload = WorkloadKind::from_label(workload_label)
        .ok_or_else(|| format!("unknown workload label {workload_label:?}"))?;
    let protocol = DeterministicProtocol {
        context: ZeroStateContext::new(code.clone()),
        prep: prep_from_json(json.get("prep").ok_or("missing prep")?)?,
        layers: arr_field(json, "layers")?
            .iter()
            .map(layer_from_json)
            .collect::<Result<_, _>>()?,
    };
    Ok(SynthesisReport {
        code_name,
        workload,
        protocol,
        stages: arr_field(json, "stages")?
            .iter()
            .map(stage_report_from_json)
            .collect::<Result<_, _>>()?,
        fault_cache_hits: num_field(json, "fault_cache_hits")?,
        fault_cache_misses: num_field(json, "fault_cache_misses")?,
        total_time: Duration::from_nanos(num_field(json, "total_time_ns")?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthesisEngine;
    use dftsp_code::catalog;

    fn debug_rendering(report: &SynthesisReport) -> String {
        format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            report.code_name,
            report.workload,
            report.protocol.prep,
            report.protocol.layers,
            report.stages,
            (report.fault_cache_hits, report.fault_cache_misses),
            report.total_time,
        )
    }

    #[test]
    fn report_json_round_trip_is_bit_identical() {
        let code = catalog::steane();
        let report = SynthesisEngine::default().synthesize(&code).unwrap();
        let json = report_to_json(&report);
        let text = json.to_text();
        let reparsed = Json::parse(&text).unwrap();
        let restored = report_from_json(&reparsed, &code).unwrap();
        assert_eq!(debug_rendering(&report), debug_rendering(&restored));
        // The rebuilt context matches the deterministic construction.
        assert_eq!(
            format!("{:?}", report.protocol.context),
            format!("{:?}", restored.protocol.context)
        );
    }

    #[test]
    fn report_key_separates_codes_and_configurations() {
        let options = SynthesisOptions::default();
        let zero = WorkloadKind::ZeroStatePrep;
        let steane = ReportKey::new(
            &catalog::steane(),
            zero,
            &options,
            BackendChoice::Cdcl,
            LadderMode::Incremental,
        );
        let surface = ReportKey::new(
            &catalog::surface3(),
            zero,
            &options,
            BackendChoice::Cdcl,
            LadderMode::Incremental,
        );
        assert_ne!(steane, surface);
        let fresh = ReportKey::new(
            &catalog::steane(),
            zero,
            &options,
            BackendChoice::Cdcl,
            LadderMode::Fresh,
        );
        assert_ne!(steane.fingerprint, fresh.fingerprint);
        let mut tweaked = options.clone();
        tweaked.verification.max_measurements += 1;
        let other = ReportKey::new(
            &catalog::steane(),
            zero,
            &tweaked,
            BackendChoice::Cdcl,
            LadderMode::Incremental,
        );
        assert_ne!(steane.fingerprint, other.fingerprint);
        let cat = ReportKey::new(
            &catalog::steane(),
            WorkloadKind::CatStatePrep { size: 4 },
            &options,
            BackendChoice::Cdcl,
            LadderMode::Incremental,
        );
        assert_ne!(steane.fingerprint, cat.fingerprint);
        // Same inputs, same key.
        let again = ReportKey::new(
            &catalog::steane(),
            zero,
            &options,
            BackendChoice::Cdcl,
            LadderMode::Incremental,
        );
        assert_eq!(steane, again);
        assert!(steane.file_name().ends_with(".json"));
    }

    #[test]
    fn memory_store_round_trip() {
        let code = catalog::steane();
        let engine = SynthesisEngine::default();
        let report = engine.synthesize(&code).unwrap();
        let key = engine.report_key(&code);
        let store = MemoryReportStore::new();
        assert!(store.load(&key, &code).is_none());
        store.save(&key, &report);
        let loaded = store.load(&key, &code).expect("stored report is served");
        assert_eq!(debug_rendering(&report), debug_rendering(&loaded));
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn json_store_misses_on_corrupt_files() {
        let dir = std::env::temp_dir().join(format!(
            "dftsp-store-corrupt-{}-{:x}",
            std::process::id(),
            debug_fingerprint(&"corrupt")
        ));
        let store = JsonReportStore::new(&dir).unwrap();
        let code = catalog::steane();
        let engine = SynthesisEngine::default();
        let key = engine.report_key(&code);
        std::fs::write(store.dir().join(key.file_name()), "not json").unwrap();
        assert!(store.load(&key, &code).is_none());
        assert_eq!(store.misses(), 1);
        assert_eq!(store.corrupt_entries(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Format-version compatibility: an entry written by a previous codec
    /// version must be *skipped* (a warned, counted miss), never crash the
    /// load or be served with misinterpreted fields — and the next save at
    /// the current version must repair it in place.
    #[test]
    fn json_store_skips_previous_format_versions() {
        let dir = std::env::temp_dir().join(format!(
            "dftsp-store-version-{}-{:x}",
            std::process::id(),
            debug_fingerprint(&"version")
        ));
        std::fs::remove_dir_all(&dir).ok();
        let store = JsonReportStore::new(&dir).unwrap();
        let code = catalog::steane();
        let engine = SynthesisEngine::default();
        let key = engine.report_key(&code);
        let report = engine.synthesize(&code).unwrap();
        store.save(&key, &report);

        // Rewrite the stored entry as its previous-version shape: version 4
        // predates the workload field, so strip it and stamp the old number.
        let path = store.dir().join(key.file_name());
        let current = std::fs::read_to_string(&path).unwrap();
        let old_version = format!("\"version\":{}", FORMAT_VERSION - 1);
        let downgraded = current
            .replace(
                &format!("\"version\":{FORMAT_VERSION}"),
                old_version.as_str(),
            )
            .replace("\"workload\":\"zero-state\",", "");
        assert_ne!(current, downgraded, "the rewrite must hit both fields");
        std::fs::write(&path, downgraded).unwrap();

        assert!(
            store.load(&key, &code).is_none(),
            "a previous-version entry must read as a miss, not decode"
        );
        assert_eq!(store.misses(), 1);
        assert_eq!(store.corrupt_entries(), 1);

        // Re-synthesizing against the store overwrites the stale entry.
        store.save(&key, &report);
        let repaired = store.load(&key, &code).expect("repaired entry is served");
        assert_eq!(debug_rendering(&report), debug_rendering(&repaired));
        assert_eq!(store.corrupt_entries(), 1, "the repair is not corrupt");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_store_skips_files_truncated_mid_byte() {
        // Regression: a stored entry cut off mid-write (the failure mode the
        // atomic tempfile+rename path prevents going forward) must read as a
        // warned-and-skipped miss, never an error or a panic, and the next
        // save must repair it.
        let dir = std::env::temp_dir().join(format!(
            "dftsp-store-truncated-{}-{:x}",
            std::process::id(),
            debug_fingerprint(&"truncated")
        ));
        std::fs::remove_dir_all(&dir).ok();
        let store = JsonReportStore::new(&dir).unwrap();
        let code = catalog::steane();
        let engine = SynthesisEngine::default();
        let key = engine.report_key(&code);
        let report = engine.synthesize(&code).unwrap();

        store.save(&key, &report);
        let path = store.dir().join(key.file_name());
        let full = std::fs::read(&path).unwrap();
        assert!(std::fs::read_dir(store.dir()).unwrap().all(|e| !e
            .unwrap()
            .file_name()
            .to_string_lossy()
            .contains(".tmp")));

        // Truncate at every interesting cut: mid-structure, mid-token, one
        // byte short of complete.
        for cut in [full.len() / 3, full.len() / 2, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(
                store.load(&key, &code).is_none(),
                "a file truncated at byte {cut} must miss"
            );
        }
        assert_eq!(store.corrupt_entries(), 3);

        // The next save overwrites the corrupt entry and serves again.
        store.save(&key, &report);
        let restored = store.load(&key, &code).expect("repaired entry is served");
        assert_eq!(debug_rendering(&report), debug_rendering(&restored));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn opening_a_json_store_sweeps_orphaned_tempfiles() {
        let dir = std::env::temp_dir().join(format!(
            "dftsp-store-orphans-{}-{:x}",
            std::process::id(),
            debug_fingerprint(&"orphans")
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // A crash between write and rename leaves exactly this shape behind.
        let orphan = dir.join("Steane-0abc.json.tmp-12345-0");
        let keeper = dir.join("Steane-0abc.json");
        std::fs::write(&orphan, "half-written").unwrap();
        std::fs::write(&keeper, "{}").unwrap();
        let _store = JsonReportStore::new(&dir).unwrap();
        assert!(!orphan.exists(), "orphaned tempfiles are swept at open");
        assert!(keeper.exists(), "real entries are untouched");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_names_never_collide_for_distinct_keys() {
        // The sanitized prefix is lossy ("a.b" and "a-b" both sanitize to
        // "a-b"); the content-hash suffix of the unsanitized name must keep
        // the full file names distinct even for equal fingerprints.
        let left = ReportKey {
            code_name: "a.b".to_string(),
            fingerprint: 0x1234,
        };
        let right = ReportKey {
            code_name: "a-b".to_string(),
            fingerprint: 0x1234,
        };
        assert_ne!(left, right);
        assert_ne!(left.file_name(), right.file_name());
        // Same key, same file — the suffix is a pure function of the key.
        assert_eq!(left.file_name(), left.file_name());
        assert!(left.file_name().ends_with(".json"));
    }

    #[test]
    fn tiered_store_evicts_least_recently_used_deterministically() {
        let code = catalog::steane();
        let engine = SynthesisEngine::default();
        let report = engine.synthesize(&code).unwrap();
        let key = |tag: u64| ReportKey {
            code_name: format!("code-{tag}"),
            fingerprint: tag,
        };

        let store = TieredStore::new(2);
        store.save(&key(1), &report);
        store.save(&key(2), &report);
        // Touch key 1 so key 2 becomes the LRU entry.
        assert!(store.load(&key(1), &code).is_some());
        store.save(&key(3), &report);
        assert_eq!(store.evictions(), 1);
        assert_eq!(store.front_len(), 2);
        assert!(store.load(&key(2), &code).is_none(), "LRU entry is evicted");
        assert!(store.load(&key(1), &code).is_some());
        assert!(store.load(&key(3), &code).is_some());
        assert_eq!(store.capacity(), 2);
    }

    #[test]
    fn tiered_store_faults_evicted_entries_back_in_from_disk() {
        let dir = std::env::temp_dir().join(format!(
            "dftsp-store-tiered-{}-{:x}",
            std::process::id(),
            debug_fingerprint(&"tiered")
        ));
        std::fs::remove_dir_all(&dir).ok();
        let disk = Arc::new(JsonReportStore::new(&dir).unwrap());
        // A front of one resident report: every second key evicts the other.
        let store = TieredStore::new(1).with_back(disk.clone());
        let code = catalog::steane();
        let engine = SynthesisEngine::default();
        let report = engine.synthesize(&code).unwrap();
        let key_a = engine.report_key(&code);
        let key_b = ReportKey {
            code_name: code.name().to_string(),
            fingerprint: key_a.fingerprint ^ 1,
        };

        store.save(&key_a, &report);
        store.save(&key_b, &report); // evicts key_a from the front
        assert_eq!(store.evictions(), 1);

        // Eviction loses nothing: the write-through back tier serves the
        // evicted key bit-identically, and it is promoted back into the
        // front (evicting key_b in turn).
        let restored = store.load(&key_a, &code).expect("faulted back in");
        assert_eq!(debug_rendering(&report), debug_rendering(&restored));
        assert_eq!(store.back_hits(), 1);
        let again = store.load(&key_a, &code).expect("now front-resident");
        assert_eq!(debug_rendering(&report), debug_rendering(&again));
        assert_eq!(store.front_hits(), 1);
        assert_eq!(store.hits(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiered_store_capacity_zero_is_a_pure_pass_through() {
        let dir = std::env::temp_dir().join(format!(
            "dftsp-store-passthrough-{}-{:x}",
            std::process::id(),
            debug_fingerprint(&"passthrough")
        ));
        std::fs::remove_dir_all(&dir).ok();
        let disk = Arc::new(JsonReportStore::new(&dir).unwrap());
        let store = TieredStore::new(0).with_back(disk.clone());
        let code = catalog::steane();
        let engine = SynthesisEngine::default();
        let report = engine.synthesize(&code).unwrap();
        let key = engine.report_key(&code);

        store.save(&key, &report);
        store.save(&key, &report);
        // A disabled front never admits anything, so nothing is "evicted".
        assert_eq!(store.evictions(), 0);
        assert_eq!(store.front_len(), 0);
        let loaded = store.load(&key, &code).expect("served by the back tier");
        assert_eq!(debug_rendering(&report), debug_rendering(&loaded));
        assert_eq!(store.back_hits(), 1);
        assert_eq!(store.evictions(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiered_store_age_expiry_drops_stale_entries() {
        let code = catalog::steane();
        let engine = SynthesisEngine::default();
        let report = engine.synthesize(&code).unwrap();
        let key = engine.report_key(&code);

        let store = TieredStore::new(8).with_max_age(Duration::ZERO);
        store.save(&key, &report);
        // With a zero max age the entry is already stale on the next access.
        assert!(store.load(&key, &code).is_none());
        assert_eq!(store.evictions(), 1);
        assert_eq!(store.front_len(), 0);

        let keeper = TieredStore::new(8).with_max_age(Duration::from_secs(3600));
        keeper.save(&key, &report);
        assert!(keeper.load(&key, &code).is_some(), "fresh entries survive");
        assert_eq!(keeper.evictions(), 0);
    }
}
