//! Global optimization over equivalent verification circuits (Sec. IV).
//!
//! The correction circuits depend on the preceding verification circuit, and
//! several verification circuits can be optimal (same measurement count and
//! weight) while leading to different correction costs. The global procedure
//! of the paper enumerates all minimal verification circuits, synthesizes the
//! corrections for each, and keeps the combination with the lowest expected
//! cost.

use dftsp_code::CssCode;
use dftsp_pauli::PauliKind;

use crate::ftcheck::enumerate_single_fault_records;
use crate::metrics::ProtocolMetrics;
use crate::prep::synthesize_prep;
use crate::protocol::DeterministicProtocol;
use crate::synthesis::{
    attach_correction_branches, build_layer_from_verification, dangerous_errors_for_layer,
    SynthesisError, SynthesisOptions,
};
use crate::verify::enumerate_minimal_verifications;
use crate::ZeroStateContext;

/// Options for the global optimization procedure.
#[derive(Debug, Clone, Default)]
pub struct GlobalOptions {
    /// The per-step synthesis options (the verification option's
    /// `enumeration_cap` bounds how many equivalent verifications are
    /// explored per layer).
    pub synthesis: SynthesisOptions,
}

/// Result of the global optimization: the best protocol found and how many
/// verification candidates were explored per layer.
#[derive(Debug, Clone)]
pub struct GlobalResult {
    /// The protocol with the lowest expected cost.
    pub protocol: DeterministicProtocol,
    /// Number of candidate verification circuits explored per layer.
    pub candidates_per_layer: Vec<usize>,
}

/// Runs the global optimization for `|0…0⟩_L` of the given code.
///
/// The layers are optimized sequentially (all minimal X-layer verifications
/// are explored first; the best one is fixed before the Z layer is explored),
/// which keeps the search tractable while still capturing the
/// verification-dependent correction costs the paper exploits for the Shor
/// and `[[11,1,3]]` codes.
///
/// # Errors
///
/// Forwards the synthesis failures of the underlying steps.
///
/// # Examples
///
/// ```
/// use dftsp::global::{globally_optimize, GlobalOptions};
/// use dftsp::ProtocolMetrics;
/// use dftsp_code::catalog;
///
/// let result = globally_optimize(&catalog::steane(), &GlobalOptions::default()).unwrap();
/// let metrics = ProtocolMetrics::from_protocol(&result.protocol);
/// assert_eq!(metrics.total_verification_ancillas, 1);
/// ```
pub fn globally_optimize(
    code: &CssCode,
    options: &GlobalOptions,
) -> Result<GlobalResult, SynthesisError> {
    let prep = synthesize_prep(code, &options.synthesis.prep);
    let context = ZeroStateContext::new(code.clone());
    let mut protocol = DeterministicProtocol {
        context,
        prep,
        layers: Vec::new(),
    };

    // Whether a Z layer will exist regardless of the X layer's flag choices
    // (same criterion as the plain pipeline).
    let prep_faults = enumerate_single_fault_records(&protocol);
    let second_layer_expected = prep_faults.iter().any(|record| {
        protocol
            .context
            .is_dangerous(PauliKind::Z, record.execution.residual.z_part())
    });

    let mut candidates_per_layer = Vec::new();
    for error_kind in [PauliKind::X, PauliKind::Z] {
        let later_layer_available = error_kind == PauliKind::X && second_layer_expected;
        let dangerous = dangerous_errors_for_layer(&protocol, error_kind);
        if dangerous.is_empty() {
            continue;
        }
        let candidates = enumerate_minimal_verifications(
            protocol.context.measurable_group(error_kind),
            &dangerous,
            &options.synthesis.verification,
        )
        .map_err(|source| SynthesisError::Verification { error_kind, source })?;
        candidates_per_layer.push(candidates.len());

        let mut best: Option<(f64, DeterministicProtocol)> = None;
        for candidate in &candidates {
            let mut trial = protocol.clone();
            let layer = build_layer_from_verification(
                &trial,
                error_kind,
                candidate,
                later_layer_available,
                &options.synthesis,
            )?;
            trial.layers.push(layer);
            match attach_correction_branches(&mut trial, &options.synthesis) {
                Ok(()) => {}
                Err(_) if candidates.len() > 1 => continue,
                Err(e) => return Err(e),
            }
            let cost = ProtocolMetrics::from_protocol(&trial).expected_cost();
            if best.as_ref().map_or(true, |(c, _)| cost < *c) {
                best = Some((cost, trial));
            }
        }
        protocol = match best {
            Some((_, p)) => p,
            None => {
                return Err(SynthesisError::Verification {
                    error_kind,
                    source: crate::verify::VerificationError::BudgetExhausted,
                })
            }
        };
    }
    Ok(GlobalResult {
        protocol,
        candidates_per_layer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftcheck::check_fault_tolerance;
    use crate::synthesis::synthesize_protocol;
    use dftsp_code::catalog;

    #[test]
    fn global_is_never_worse_than_single_shot() {
        for code in [catalog::steane(), catalog::surface3()] {
            let baseline =
                synthesize_protocol(&code, &SynthesisOptions::default()).unwrap();
            let global = globally_optimize(&code, &GlobalOptions::default()).unwrap();
            let baseline_cost = ProtocolMetrics::from_protocol(&baseline).expected_cost();
            let global_cost = ProtocolMetrics::from_protocol(&global.protocol).expected_cost();
            assert!(
                global_cost <= baseline_cost + 1e-9,
                "{}: global {global_cost} vs baseline {baseline_cost}",
                code.name()
            );
        }
    }

    #[test]
    fn global_result_is_fault_tolerant() {
        let result = globally_optimize(&catalog::steane(), &GlobalOptions::default()).unwrap();
        assert!(check_fault_tolerance(&result.protocol).is_fault_tolerant());
        assert!(!result.candidates_per_layer.is_empty());
    }
}
