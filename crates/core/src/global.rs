//! Global optimization over equivalent verification circuits (Sec. IV).
//!
//! The correction circuits depend on the preceding verification circuit, and
//! several verification circuits can be optimal (same measurement count and
//! weight) while leading to different correction costs. The global procedure
//! of the paper enumerates all minimal verification circuits, synthesizes the
//! corrections for each, and keeps the combination with the lowest expected
//! cost.
//!
//! The implementation lives in [`crate::SynthesisEngine::globally_optimize`];
//! this module keeps the classic free-function entry point. All SAT work —
//! the per-layer (u, v) ladders and the enumeration of equivalent minimal
//! verifications — runs through the engine's [`crate::SatSession`]s, so it
//! honours the configured [`LadderMode`]: with the default incremental mode
//! the whole enumeration of one layer shares a single live solver and each
//! found candidate only adds its blocking clauses.
//!
//! With `threads > 1` the engine evaluates the candidates of one layer
//! concurrently, each on a private session, fault cache and trial protocol;
//! the winner is picked by the deterministic `(cost, candidate index)` rule,
//! so the result is bit-identical at every thread count. The engine report
//! ([`crate::GlobalReport`]) attributes only the winning candidate's SAT
//! work to the correction stage and carries the full exploration cost in its
//! `explored` aggregate.

use dftsp_code::CssCode;
use dftsp_sat::LadderMode;

use crate::engine::SynthesisEngine;
use crate::protocol::DeterministicProtocol;
use crate::synthesis::{SynthesisError, SynthesisOptions};

/// Options for the global optimization procedure.
#[derive(Debug, Clone, Default)]
pub struct GlobalOptions {
    /// The per-step synthesis options (the verification option's
    /// `enumeration_cap` bounds how many equivalent verifications are
    /// explored per layer).
    pub synthesis: SynthesisOptions,
    /// How the SAT ladders drive the solver (incremental sessions by
    /// default; the fresh-backend path remains available for cross-checks).
    pub ladder: LadderMode,
}

/// Result of the global optimization: the best protocol found and how many
/// verification candidates were explored per layer.
#[derive(Debug, Clone)]
pub struct GlobalResult {
    /// The protocol with the lowest expected cost.
    pub protocol: DeterministicProtocol,
    /// Number of candidate verification circuits explored per layer.
    pub candidates_per_layer: Vec<usize>,
}

/// Runs the global optimization for `|0…0⟩_L` of the given code.
///
/// The layers are optimized sequentially (all minimal X-layer verifications
/// are explored first; the best one is fixed before the Z layer is explored),
/// which keeps the search tractable while still capturing the
/// verification-dependent correction costs the paper exploits for the Shor
/// and `[[11,1,3]]` codes.
///
/// # Errors
///
/// Forwards the synthesis failures of the underlying steps.
///
/// # Examples
///
/// ```
/// use dftsp::global::{globally_optimize, GlobalOptions};
/// use dftsp::ProtocolMetrics;
/// use dftsp_code::catalog;
///
/// let result = globally_optimize(&catalog::steane(), &GlobalOptions::default()).unwrap();
/// let metrics = ProtocolMetrics::from_protocol(&result.protocol);
/// assert_eq!(metrics.total_verification_ancillas, 1);
/// ```
pub fn globally_optimize(
    code: &CssCode,
    options: &GlobalOptions,
) -> Result<GlobalResult, SynthesisError> {
    SynthesisEngine::builder()
        .options(options.synthesis.clone())
        .ladder_mode(options.ladder)
        .build()
        .globally_optimize(code)
        .map(crate::engine::GlobalReport::into_result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftcheck::check_fault_tolerance;
    use crate::metrics::ProtocolMetrics;
    use crate::synthesis::synthesize_protocol;
    use dftsp_code::catalog;

    #[test]
    fn global_is_never_worse_than_single_shot() {
        for code in [catalog::steane(), catalog::surface3()] {
            let baseline = synthesize_protocol(&code, &SynthesisOptions::default()).unwrap();
            let global = globally_optimize(&code, &GlobalOptions::default()).unwrap();
            let baseline_cost = ProtocolMetrics::from_protocol(&baseline).expected_cost();
            let global_cost = ProtocolMetrics::from_protocol(&global.protocol).expected_cost();
            assert!(
                global_cost <= baseline_cost + 1e-9,
                "{}: global {global_cost} vs baseline {baseline_cost}",
                code.name()
            );
        }
    }

    #[test]
    fn global_result_is_fault_tolerant() {
        let result = globally_optimize(&catalog::steane(), &GlobalOptions::default()).unwrap();
        assert!(check_fault_tolerance(&result.protocol).is_fault_tolerant());
        assert!(!result.candidates_per_layer.is_empty());
    }
}
