//! The store server: a bounded thread-per-connection TCP accept loop serving
//! a [`RawReportKv`] over the wire protocol.

use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use std::io::Write;

use crate::store::RawReportKv;

use super::fault::{FaultAction, FaultPlan};
use super::wire::{
    frame_to_bytes, read_frame, write_frame, Frame, Opcode, StoreServerStats, WireError,
};

/// How often a blocked connection read wakes up to check the shutdown flag.
const SHUTDOWN_POLL: Duration = Duration::from_millis(100);

/// A network front end for a [`RawReportKv`] (typically a
/// [`crate::JsonReportStore`] directory), so any number of
/// [`crate::RemoteReportStore`] clients — across processes and machines —
/// share one report store.
///
/// The accept loop runs on its own thread and hands each connection to a
/// serving thread, bounded by `max_connections`; connections over the bound
/// are answered with an error frame and closed instead of queueing
/// unboundedly. [`StoreServer::shutdown`] (also run on drop) stops accepting,
/// unblocks every serving thread and joins them all — a graceful stop that
/// never strands a client mid-frame.
#[derive(Debug)]
pub struct StoreServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

/// State shared between the server handle, the accept loop and every
/// connection thread.
#[derive(Debug)]
struct Shared {
    kv: Arc<dyn RawReportKv>,
    /// Wire-level fault schedule ([`StoreServer::bind_faulty`]); `None` in
    /// production binds.
    faults: Option<Arc<FaultPlan>>,
    stop: AtomicBool,
    max_connections: usize,
    live_connections: AtomicU64,
    gets: AtomicU64,
    puts: AtomicU64,
    stats_requests: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    connections: AtomicU64,
    rejected: AtomicU64,
    bad_frames: AtomicU64,
}

impl StoreServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts serving
    /// `kv` with the default connection bound of 64.
    ///
    /// # Errors
    ///
    /// Forwards the I/O error if the listener cannot bind.
    pub fn bind(addr: impl ToSocketAddrs, kv: Arc<dyn RawReportKv>) -> std::io::Result<Self> {
        StoreServer::bind_with(addr, kv, 64)
    }

    /// Binds like [`StoreServer::bind`] with an explicit bound on concurrent
    /// connections (minimum 1).
    ///
    /// # Errors
    ///
    /// Forwards the I/O error if the listener cannot bind.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        kv: Arc<dyn RawReportKv>,
        max_connections: usize,
    ) -> std::io::Result<Self> {
        StoreServer::bind_inner(addr, kv, max_connections, None)
    }

    /// Binds like [`StoreServer::bind`] with a [`FaultPlan`] injecting
    /// **wire-level** faults into the response path — one plan operation per
    /// request served. This is the deterministic chaos seam: a seeded plan
    /// reproduces the exact same drops, corruptions, truncations, ERR
    /// refusals, delays and stalls on every run, so the client stack's
    /// typed-degradation contract is testable over real sockets.
    ///
    /// Storage-level faults are a different seam — wrap the `kv` in a
    /// [`super::FaultyKv`] for those.
    ///
    /// # Errors
    ///
    /// Forwards the I/O error if the listener cannot bind.
    pub fn bind_faulty(
        addr: impl ToSocketAddrs,
        kv: Arc<dyn RawReportKv>,
        max_connections: usize,
        plan: Arc<FaultPlan>,
    ) -> std::io::Result<Self> {
        StoreServer::bind_inner(addr, kv, max_connections, Some(plan))
    }

    fn bind_inner(
        addr: impl ToSocketAddrs,
        kv: Arc<dyn RawReportKv>,
        max_connections: usize,
        faults: Option<Arc<FaultPlan>>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            kv,
            faults,
            stop: AtomicBool::new(false),
            max_connections: max_connections.max(1),
            live_connections: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            stats_requests: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            bad_frames: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("dftsp-store-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawning the store accept thread");
        Ok(StoreServer {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server is listening on (resolves port-0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the server's counters (also answered remotely to a
    /// `stats` frame).
    pub fn stats(&self) -> StoreServerStats {
        self.shared.snapshot()
    }

    /// Stops accepting, drains every connection thread and joins the accept
    /// loop. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop sits in a blocking accept(); a throw-away
        // self-connection wakes it so it can observe the stop flag.
        TcpStream::connect_timeout(&self.addr, Duration::from_secs(1)).ok();
        if let Some(handle) = self.accept_thread.take() {
            handle.join().ok();
        }
    }
}

impl Drop for StoreServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Shared {
    fn snapshot(&self) -> StoreServerStats {
        StoreServerStats {
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            stats_requests: self.stats_requests.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            bad_frames: self.bad_frames.load(Ordering::Relaxed),
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        // Reap finished serving threads so the handle list (and the live
        // count's backing) stays bounded by the connection bound.
        workers.retain(|handle| !handle.is_finished());
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => continue,
        };
        if shared.stop.load(Ordering::SeqCst) {
            // The wake-up self-connection (or a late client): drop it and
            // drain the serving threads.
            drop(stream);
            break;
        }
        let live = shared.live_connections.load(Ordering::SeqCst);
        if live >= shared.max_connections as u64 {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            write_frame(&mut stream, &Frame::error("server at connection capacity")).ok();
            stream.shutdown(Shutdown::Both).ok();
            continue;
        }
        shared.connections.fetch_add(1, Ordering::Relaxed);
        shared.live_connections.fetch_add(1, Ordering::SeqCst);
        let conn_shared = Arc::clone(shared);
        let worker = std::thread::Builder::new()
            .name("dftsp-store-conn".to_string())
            .spawn(move || {
                serve_connection(stream, &conn_shared);
                conn_shared.live_connections.fetch_sub(1, Ordering::SeqCst);
            })
            .expect("spawning a store connection thread");
        workers.push(worker);
    }
    for handle in workers {
        handle.join().ok();
    }
}

/// Serves one connection until the client closes, a frame fails to decode,
/// or the server shuts down.
fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    // A short read timeout turns the blocking read into a poll loop, so the
    // thread notices the shutdown flag within SHUTDOWN_POLL even while idle.
    stream.set_read_timeout(Some(SHUTDOWN_POLL)).ok();
    stream.set_nodelay(true).ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = PollingStream {
        inner: read_half,
        shared,
    };
    let mut writer = stream;
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(WireError::Closed) => break,
            Err(err) => {
                // A malformed, truncated or corrupt frame poisons the
                // stream position: answer with a typed error and close.
                if !matches!(err, WireError::Truncated) {
                    shared.bad_frames.fetch_add(1, Ordering::Relaxed);
                    write_frame(&mut writer, &Frame::error(&err.to_string())).ok();
                }
                break;
            }
        };
        let response = respond(&frame, shared);
        let action = shared.faults.as_ref().and_then(|plan| plan.next());
        match send_response(&mut writer, &response, action) {
            SendOutcome::Sent => {}
            SendOutcome::Close => break,
        }
    }
    writer.shutdown(Shutdown::Both).ok();
}

/// Whether the connection survives sending (or faulting) one response.
enum SendOutcome {
    /// Keep serving this connection.
    Sent,
    /// Close the connection (write failure or a connection-level fault).
    Close,
}

/// Writes one response, applying a scheduled wire-level [`FaultAction`].
fn send_response(
    writer: &mut TcpStream,
    response: &Frame,
    action: Option<FaultAction>,
) -> SendOutcome {
    let write_clean = |writer: &mut TcpStream, frame: &Frame| match write_frame(writer, frame) {
        Ok(_) => SendOutcome::Sent,
        Err(_) => SendOutcome::Close,
    };
    match action {
        None => write_clean(writer, response),
        Some(FaultAction::Delay(d)) => {
            std::thread::sleep(d);
            write_clean(writer, response)
        }
        Some(FaultAction::RefuseErr) => {
            // The real answer is withheld; the client sees a typed
            // WireError::Server and clears its pool.
            write_clean(writer, &Frame::error("injected fault: request refused"))
        }
        Some(FaultAction::DropConnection) => SendOutcome::Close,
        Some(FaultAction::FailOp) => {
            // Swallow the request: nothing is written, the framing stays
            // clean, and the client stalls into its read timeout.
            SendOutcome::Sent
        }
        Some(FaultAction::CorruptFrame) => {
            let Ok(mut bytes) = frame_to_bytes(response) else {
                return SendOutcome::Close;
            };
            // Flipping the final byte corrupts the body (checksum mismatch
            // at the client) or, for body-less frames, the checksum itself.
            if let Some(last) = bytes.last_mut() {
                *last ^= 0x40;
            }
            writer.write_all(&bytes).ok();
            SendOutcome::Close
        }
        Some(FaultAction::TruncateResponse) => {
            let Ok(bytes) = frame_to_bytes(response) else {
                return SendOutcome::Close;
            };
            writer.write_all(&bytes[..bytes.len() / 2]).ok();
            SendOutcome::Close
        }
    }
}

/// Computes the response frame for one request.
fn respond(frame: &Frame, shared: &Arc<Shared>) -> Frame {
    match frame.opcode() {
        Opcode::Get => match frame.parse_get() {
            Ok(key) => {
                shared.gets.fetch_add(1, Ordering::Relaxed);
                match shared.kv.get_text(&key) {
                    Some(text) => {
                        shared.hits.fetch_add(1, Ordering::Relaxed);
                        Frame::found(&text)
                    }
                    None => {
                        shared.misses.fetch_add(1, Ordering::Relaxed);
                        Frame::not_found()
                    }
                }
            }
            Err(err) => {
                shared.bad_frames.fetch_add(1, Ordering::Relaxed);
                Frame::error(&err.to_string())
            }
        },
        Opcode::Put => match frame.parse_put() {
            Ok((key, text)) => {
                shared.puts.fetch_add(1, Ordering::Relaxed);
                shared.kv.put_text(&key, text);
                Frame::put_ok()
            }
            Err(err) => {
                shared.bad_frames.fetch_add(1, Ordering::Relaxed);
                Frame::error(&err.to_string())
            }
        },
        Opcode::Stats => {
            shared.stats_requests.fetch_add(1, Ordering::Relaxed);
            Frame::stats_ok(&shared.snapshot())
        }
        other => {
            shared.bad_frames.fetch_add(1, Ordering::Relaxed);
            Frame::error(&format!("{other} is not a request opcode"))
        }
    }
}

/// A [`Read`] adapter that retries timeout wake-ups until the server's stop
/// flag is set, at which point it reports end-of-stream so the frame reader
/// unwinds as a clean close (or a truncation, if mid-frame).
struct PollingStream<'a> {
    inner: TcpStream,
    shared: &'a Arc<Shared>,
}

impl Read for PollingStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                return Ok(0);
            }
            match self.inner.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                other => return other,
            }
        }
    }
}
