//! The remote-store wire protocol: length-prefixed, checksummed frames
//! carrying the existing JSON report codec over any byte stream.
//!
//! A frame on the wire is
//!
//! ```text
//! [u32 big-endian: payload length]
//! [payload:
//!     byte 0        protocol version (WIRE_VERSION)
//!     byte 1        opcode
//!     bytes 2..10   u64 big-endian FNV-1a checksum of the body
//!     bytes 10..    body]
//! ```
//!
//! Bodies are the crate's existing JSON forms: a [`crate::ReportKey`] for
//! `get`, a key plus the report's on-disk JSON text for `put`, and the
//! server's counter snapshot for `stats` responses. The version byte rejects
//! cross-version traffic up front, the checksum rejects corrupted payloads,
//! and the length prefix is bounded by [`MAX_FRAME`] so a corrupt length can
//! never drive an allocation bomb. Every failure mode is a typed
//! [`WireError`] — malformed, truncated or corrupt input is *never* a panic,
//! which is what lets the client degrade a broken server to a store miss.

use std::io::{Read, Write};

use dftsp_code::CssCode;

use crate::engine::SynthesisReport;
use crate::json::Json;
use crate::store::{report_from_json, report_to_json, ReportKey};

/// Version byte every frame leads with; bumped on incompatible changes so a
/// mismatched peer is rejected with [`WireError::UnsupportedVersion`] instead
/// of misparsing.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on one frame's payload (16 MiB — orders of magnitude above
/// any real report). A corrupt length prefix beyond it is rejected as
/// [`WireError::Oversized`] before any allocation happens.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Bytes of framing around a body: 4 length + 1 version + 1 opcode +
/// 8 checksum.
const HEADER_LEN: usize = 14;

/// Upper bound on an ERR frame's diagnostic message, enforced on **both**
/// encode ([`Frame::error`]) and decode ([`Frame::error_message`]): a
/// malicious or corrupt peer cannot bloat logs or memory with a
/// multi-megabyte "diagnostic", and this side never emits one either.
pub const MAX_ERR_MESSAGE: usize = 512;

/// Operation discriminant of a frame. Requests (`Get`/`Put`/`Stats`) flow
/// client → server; the rest are responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Request: look up one [`ReportKey`].
    Get,
    /// Request: store a report under a key.
    Put,
    /// Request: snapshot the server's counters.
    Stats,
    /// Response to `Get`: the stored report's JSON text.
    Found,
    /// Response to `Get`: nothing stored under that key.
    NotFound,
    /// Response to `Put`: the report was persisted.
    PutOk,
    /// Response to `Stats`: the server's counter snapshot.
    StatsOk,
    /// Response to anything the server could not serve: a diagnostic string.
    Error,
}

impl Opcode {
    fn to_byte(self) -> u8 {
        match self {
            Opcode::Get => 0x01,
            Opcode::Put => 0x02,
            Opcode::Stats => 0x03,
            Opcode::Found => 0x81,
            Opcode::NotFound => 0x82,
            Opcode::PutOk => 0x83,
            Opcode::StatsOk => 0x84,
            Opcode::Error => 0xFF,
        }
    }

    fn from_byte(byte: u8) -> Result<Opcode, WireError> {
        match byte {
            0x01 => Ok(Opcode::Get),
            0x02 => Ok(Opcode::Put),
            0x03 => Ok(Opcode::Stats),
            0x81 => Ok(Opcode::Found),
            0x82 => Ok(Opcode::NotFound),
            0x83 => Ok(Opcode::PutOk),
            0x84 => Ok(Opcode::StatsOk),
            0xFF => Ok(Opcode::Error),
            other => Err(WireError::UnknownOpcode(other)),
        }
    }
}

impl std::fmt::Display for Opcode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Opcode::Get => "get",
            Opcode::Put => "put",
            Opcode::Stats => "stats",
            Opcode::Found => "found",
            Opcode::NotFound => "not-found",
            Opcode::PutOk => "put-ok",
            Opcode::StatsOk => "stats-ok",
            Opcode::Error => "error",
        };
        write!(f, "{name}")
    }
}

/// Everything that can go wrong on the wire. All variants are recoverable
/// data — decoding never panics — so the client can translate any of them
/// into a degraded store miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The stream ended (or stalled past its timeout) mid-frame.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized(u32),
    /// The frame leads with a version byte this build does not speak.
    UnsupportedVersion(u8),
    /// The opcode byte names no known operation.
    UnknownOpcode(u8),
    /// The body does not match the checksum carried in the header.
    ChecksumMismatch {
        /// Checksum the frame header claimed.
        expected: u64,
        /// Checksum of the body actually received.
        actual: u64,
    },
    /// The frame decoded but its body is not the expected shape (bad JSON,
    /// missing field, wrong opcode for the operation).
    Malformed(String),
    /// The server answered with an [`Opcode::Error`] frame.
    Server(String),
    /// An I/O error from the underlying stream (includes read/write
    /// timeouts, which surface as `WouldBlock`/`TimedOut`).
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed by peer"),
            WireError::Truncated => write!(f, "frame truncated mid-stream"),
            WireError::Oversized(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME}-byte bound")
            }
            WireError::UnsupportedVersion(v) => {
                write!(f, "unsupported wire version {v} (this build speaks {WIRE_VERSION})")
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode byte {op:#04x}"),
            WireError::ChecksumMismatch { expected, actual } => write!(
                f,
                "payload checksum mismatch (header says {expected:016x}, body hashes to {actual:016x})"
            ),
            WireError::Malformed(reason) => write!(f, "malformed frame body: {reason}"),
            WireError::Server(message) => write!(f, "server error: {message}"),
            WireError::Io(kind) => write!(f, "i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.kind())
    }
}

/// FNV-1a 64 over the body — the same non-cryptographic standard the store
/// fingerprints use; it catches wire corruption, not adversaries.
pub(crate) fn checksum(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// One decoded frame: an opcode plus its raw body bytes. The framing
/// (length, version, checksum) is handled by [`write_frame`]/[`read_frame`];
/// the typed constructors and parsers on this type handle the bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    opcode: Opcode,
    body: Vec<u8>,
}

impl Frame {
    /// The frame's opcode.
    pub fn opcode(&self) -> Opcode {
        self.opcode
    }

    /// The raw body bytes.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// Total bytes this frame occupies on the wire (framing + body).
    pub fn wire_len(&self) -> u64 {
        (HEADER_LEN + self.body.len()) as u64
    }

    /// A `get` request for one key.
    pub fn get(key: &ReportKey) -> Frame {
        Frame {
            opcode: Opcode::Get,
            body: key_to_json(key).to_text().into_bytes(),
        }
    }

    /// A `put` request: the key's JSON on the first line, the report's
    /// on-disk JSON text after it (compact JSON contains no newlines, so the
    /// first newline is an unambiguous separator and the report text is
    /// carried byte-identically).
    pub fn put(key: &ReportKey, report: &SynthesisReport) -> Frame {
        Frame::put_text(key, &report_to_text(report))
    }

    /// A `put` request carrying already-encoded report text.
    pub fn put_text(key: &ReportKey, report_text: &str) -> Frame {
        let mut body = key_to_json(key).to_text().into_bytes();
        body.push(b'\n');
        body.extend_from_slice(report_text.as_bytes());
        Frame {
            opcode: Opcode::Put,
            body,
        }
    }

    /// A `stats` request.
    pub fn stats() -> Frame {
        Frame {
            opcode: Opcode::Stats,
            body: Vec::new(),
        }
    }

    /// A `found` response carrying a stored report's JSON text.
    pub fn found(report_text: &str) -> Frame {
        Frame {
            opcode: Opcode::Found,
            body: report_text.as_bytes().to_vec(),
        }
    }

    /// A `not-found` response.
    pub fn not_found() -> Frame {
        Frame {
            opcode: Opcode::NotFound,
            body: Vec::new(),
        }
    }

    /// A `put-ok` response.
    pub fn put_ok() -> Frame {
        Frame {
            opcode: Opcode::PutOk,
            body: Vec::new(),
        }
    }

    /// A `stats-ok` response carrying the server's counter snapshot.
    pub fn stats_ok(stats: &StoreServerStats) -> Frame {
        Frame {
            opcode: Opcode::StatsOk,
            body: stats.to_json().to_text().into_bytes(),
        }
    }

    /// An `error` response carrying a diagnostic message, truncated to
    /// [`MAX_ERR_MESSAGE`] bytes on a character boundary.
    pub fn error(message: &str) -> Frame {
        let mut end = message.len().min(MAX_ERR_MESSAGE);
        while !message.is_char_boundary(end) {
            end -= 1;
        }
        Frame {
            opcode: Opcode::Error,
            body: message.as_bytes()[..end].to_vec(),
        }
    }

    /// Parses a `get` request body into its key.
    pub fn parse_get(&self) -> Result<ReportKey, WireError> {
        self.expect(Opcode::Get)?;
        key_from_json(&parse_body_json(&self.body)?)
    }

    /// Parses a `put` request body into its key and the report's raw JSON
    /// text (the server stores the text without being able to decode it —
    /// decoding needs the [`CssCode`], which only clients have).
    pub fn parse_put(&self) -> Result<(ReportKey, &str), WireError> {
        self.expect(Opcode::Put)?;
        let split =
            self.body.iter().position(|&b| b == b'\n').ok_or_else(|| {
                WireError::Malformed("put body has no key/report separator".into())
            })?;
        let key = key_from_json(&parse_body_json(&self.body[..split])?)?;
        let text = std::str::from_utf8(&self.body[split + 1..])
            .map_err(|_| WireError::Malformed("report text is not UTF-8".into()))?;
        // Validate the report text is at least well-formed JSON so a store
        // server never persists syntactic garbage.
        Json::parse(text).map_err(|e| WireError::Malformed(format!("report text: {e}")))?;
        Ok((key, text))
    }

    /// Decodes a `found` response body into the stored report for `code`.
    pub fn parse_found(&self, code: &CssCode) -> Result<SynthesisReport, WireError> {
        self.expect(Opcode::Found)?;
        let text = std::str::from_utf8(&self.body)
            .map_err(|_| WireError::Malformed("report text is not UTF-8".into()))?;
        report_from_text(text, code)
    }

    /// Parses a `stats-ok` response body into the server's counters.
    pub fn parse_stats_ok(&self) -> Result<StoreServerStats, WireError> {
        self.expect(Opcode::StatsOk)?;
        StoreServerStats::from_json(&parse_body_json(&self.body)?)
    }

    /// The diagnostic message of an `error` response — lossy on non-UTF-8
    /// and capped at [`MAX_ERR_MESSAGE`] bytes, so a misbehaving peer's
    /// oversized "diagnostic" cannot bloat this side's logs or memory.
    pub fn error_message(&self) -> String {
        let cut = self.body.len().min(MAX_ERR_MESSAGE);
        String::from_utf8_lossy(&self.body[..cut]).into_owned()
    }

    fn expect(&self, opcode: Opcode) -> Result<(), WireError> {
        if self.opcode == opcode {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "expected a {opcode} frame, got {}",
                self.opcode
            )))
        }
    }
}

/// Serializes a report into the wire/on-disk JSON text (the same codec the
/// [`crate::JsonReportStore`] persists).
pub fn report_to_text(report: &SynthesisReport) -> String {
    report_to_json(report).to_text()
}

/// Decodes wire/on-disk report text back into a report for `code`, with
/// every decode failure a typed [`WireError::Malformed`].
pub fn report_from_text(text: &str, code: &CssCode) -> Result<SynthesisReport, WireError> {
    let json = Json::parse(text).map_err(WireError::Malformed)?;
    report_from_json(&json, code).map_err(WireError::Malformed)
}

fn parse_body_json(bytes: &[u8]) -> Result<Json, WireError> {
    let text =
        std::str::from_utf8(bytes).map_err(|_| WireError::Malformed("body is not UTF-8".into()))?;
    Json::parse(text).map_err(WireError::Malformed)
}

fn key_to_json(key: &ReportKey) -> Json {
    Json::obj(vec![
        ("code_name", Json::Str(key.code_name.clone())),
        ("fingerprint", Json::Num(key.fingerprint)),
    ])
}

fn key_from_json(json: &Json) -> Result<ReportKey, WireError> {
    let code_name = json
        .get("code_name")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::Malformed("key is missing code_name".into()))?;
    let fingerprint = json
        .get("fingerprint")
        .and_then(Json::as_num)
        .ok_or_else(|| WireError::Malformed("key is missing fingerprint".into()))?;
    Ok(ReportKey {
        code_name: code_name.to_string(),
        fingerprint,
    })
}

/// Encodes one frame into its complete wire bytes (the fault-injection seam
/// mangles these before writing; [`write_frame`] writes them verbatim).
pub(crate) fn frame_to_bytes(frame: &Frame) -> Result<Vec<u8>, WireError> {
    let payload_len = (HEADER_LEN - 4) + frame.body.len();
    let payload_len = u32::try_from(payload_len).map_err(|_| WireError::Oversized(u32::MAX))?;
    if payload_len > MAX_FRAME {
        return Err(WireError::Oversized(payload_len));
    }
    let mut buf = Vec::with_capacity(HEADER_LEN + frame.body.len());
    buf.extend_from_slice(&payload_len.to_be_bytes());
    buf.push(WIRE_VERSION);
    buf.push(frame.opcode.to_byte());
    buf.extend_from_slice(&checksum(&frame.body).to_be_bytes());
    buf.extend_from_slice(&frame.body);
    Ok(buf)
}

/// Writes one frame; returns the number of bytes put on the wire.
///
/// # Errors
///
/// [`WireError::Io`] on stream failures (including write timeouts).
pub fn write_frame(writer: &mut impl Write, frame: &Frame) -> Result<u64, WireError> {
    let buf = frame_to_bytes(frame)?;
    writer.write_all(&buf)?;
    writer.flush()?;
    Ok(buf.len() as u64)
}

/// Reads one frame, validating version, opcode, length bound and checksum.
///
/// # Errors
///
/// [`WireError::Closed`] when the peer shut down cleanly at a frame
/// boundary; [`WireError::Truncated`] when the stream ended mid-frame; the
/// other variants for validation failures. Never panics on malformed input.
pub fn read_frame(reader: &mut impl Read) -> Result<Frame, WireError> {
    let mut len_buf = [0u8; 4];
    read_full(reader, &mut len_buf, true)?;
    let payload_len = u32::from_be_bytes(len_buf);
    if payload_len > MAX_FRAME {
        return Err(WireError::Oversized(payload_len));
    }
    if (payload_len as usize) < HEADER_LEN - 4 {
        return Err(WireError::Truncated);
    }
    let mut payload = vec![0u8; payload_len as usize];
    read_full(reader, &mut payload, false)?;
    if payload[0] != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(payload[0]));
    }
    let opcode = Opcode::from_byte(payload[1])?;
    let expected = u64::from_be_bytes(payload[2..10].try_into().expect("8 bytes by layout"));
    let body = payload.split_off(10);
    let actual = checksum(&body);
    if actual != expected {
        return Err(WireError::ChecksumMismatch { expected, actual });
    }
    Ok(Frame { opcode, body })
}

/// Fills `buf` completely. `at_boundary` distinguishes a clean close (EOF
/// before any byte of this frame → [`WireError::Closed`]) from a truncation
/// (EOF after the frame started → [`WireError::Truncated`]).
fn read_full(reader: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<(), WireError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_boundary && filled == 0 {
                    WireError::Closed
                } else {
                    WireError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.kind())),
        }
    }
    Ok(())
}

/// Counter snapshot of a [`crate::StoreServer`], as answered to a `stats`
/// request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreServerStats {
    /// `get` requests served.
    pub gets: u64,
    /// `put` requests served.
    pub puts: u64,
    /// `stats` requests served.
    pub stats_requests: u64,
    /// `get`s that found a stored entry.
    pub hits: u64,
    /// `get`s that found nothing.
    pub misses: u64,
    /// Connections accepted into a serving thread.
    pub connections: u64,
    /// Connections turned away at the concurrency bound.
    pub rejected: u64,
    /// Frames that failed to decode (the connection was answered with an
    /// error frame and closed).
    pub bad_frames: u64,
}

impl StoreServerStats {
    pub(crate) fn to_json(self) -> Json {
        Json::obj(vec![
            ("gets", Json::Num(self.gets)),
            ("puts", Json::Num(self.puts)),
            ("stats_requests", Json::Num(self.stats_requests)),
            ("hits", Json::Num(self.hits)),
            ("misses", Json::Num(self.misses)),
            ("connections", Json::Num(self.connections)),
            ("rejected", Json::Num(self.rejected)),
            ("bad_frames", Json::Num(self.bad_frames)),
        ])
    }

    pub(crate) fn from_json(json: &Json) -> Result<StoreServerStats, WireError> {
        let field = |name: &str| {
            json.get(name)
                .and_then(Json::as_num)
                .ok_or_else(|| WireError::Malformed(format!("stats body is missing {name:?}")))
        };
        Ok(StoreServerStats {
            gets: field("gets")?,
            puts: field("puts")?,
            stats_requests: field("stats_requests")?,
            hits: field("hits")?,
            misses: field("misses")?,
            connections: field("connections")?,
            rejected: field("rejected")?,
            bad_frames: field("bad_frames")?,
        })
    }
}

impl std::fmt::Display for StoreServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gets={} (hits={} misses={}) puts={} connections={} rejected={} bad_frames={}",
            self.gets,
            self.hits,
            self.misses,
            self.puts,
            self.connections,
            self.rejected,
            self.bad_frames,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> ReportKey {
        ReportKey {
            code_name: "Steane [[7,1,3]]".to_string(),
            fingerprint: 0xDEAD_BEEF_0123_4567,
        }
    }

    #[test]
    fn frames_round_trip_over_a_byte_stream() {
        let frames = vec![
            Frame::get(&key()),
            Frame::put_text(&key(), "{\"version\":4}"),
            Frame::stats(),
            Frame::found("{\"version\":4}"),
            Frame::not_found(),
            Frame::put_ok(),
            Frame::stats_ok(&StoreServerStats {
                gets: 3,
                hits: 2,
                ..StoreServerStats::default()
            }),
            Frame::error("boom"),
        ];
        let mut wire = Vec::new();
        let mut written = 0;
        for frame in &frames {
            written += write_frame(&mut wire, frame).unwrap();
        }
        assert_eq!(written as usize, wire.len());
        let mut cursor = std::io::Cursor::new(wire);
        for frame in &frames {
            assert_eq!(&read_frame(&mut cursor).unwrap(), frame);
        }
        assert_eq!(read_frame(&mut cursor).unwrap_err(), WireError::Closed);
    }

    #[test]
    fn typed_bodies_parse_back() {
        let get = Frame::get(&key());
        assert_eq!(get.parse_get().unwrap(), key());

        let put = Frame::put_text(&key(), "{\"a\":1}");
        let (parsed_key, text) = put.parse_put().unwrap();
        assert_eq!(parsed_key, key());
        assert_eq!(text, "{\"a\":1}");

        let stats = StoreServerStats {
            gets: 7,
            puts: 5,
            stats_requests: 1,
            hits: 4,
            misses: 3,
            connections: 2,
            rejected: 1,
            bad_frames: 0,
        };
        assert_eq!(Frame::stats_ok(&stats).parse_stats_ok().unwrap(), stats);
        assert_eq!(Frame::error("boom").error_message(), "boom");
        assert!(!stats.to_string().is_empty());
    }

    #[test]
    fn err_messages_are_capped_and_sanitized_both_ways() {
        // Encode side: an oversized message is truncated at the cap, on a
        // character boundary even when the cap lands mid-character.
        let huge = "é".repeat(MAX_ERR_MESSAGE); // 2 bytes per char
        let frame = Frame::error(&huge);
        assert!(frame.body().len() <= MAX_ERR_MESSAGE);
        assert!(std::str::from_utf8(frame.body()).is_ok());
        assert!(huge.starts_with(&frame.error_message()));

        // Decode side: a frame smuggling an over-cap body (hand-built, as a
        // malicious peer would) is still served capped and lossy.
        let smuggled = Frame {
            opcode: Opcode::Error,
            body: vec![0xFF; 4 * MAX_ERR_MESSAGE],
        };
        let message = smuggled.error_message();
        assert!(message.chars().count() <= MAX_ERR_MESSAGE);
        assert!(message.chars().all(|c| c == char::REPLACEMENT_CHARACTER));

        // A short clean message is untouched.
        assert_eq!(Frame::error("boom").error_message(), "boom");
    }

    #[test]
    fn wrong_opcode_parses_are_typed_errors() {
        let get = Frame::get(&key());
        assert!(matches!(get.parse_put(), Err(WireError::Malformed(_))));
        assert!(matches!(
            Frame::not_found().parse_get(),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn corrupt_frames_are_rejected_not_panicked_on() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::put_text(&key(), "{\"a\":1}")).unwrap();

        // Any truncation is Closed (at the boundary) or Truncated (inside).
        for cut in 0..wire.len() {
            let err = read_frame(&mut std::io::Cursor::new(&wire[..cut])).unwrap_err();
            if cut == 0 {
                assert_eq!(err, WireError::Closed);
            } else {
                assert_eq!(err, WireError::Truncated, "cut at byte {cut}");
            }
        }

        // A flipped body byte fails the checksum.
        let mut corrupt = wire.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(&corrupt)),
            Err(WireError::ChecksumMismatch { .. })
        ));

        // A wrong version byte is rejected before anything else.
        let mut wrong_version = wire.clone();
        wrong_version[4] = WIRE_VERSION + 1;
        assert_eq!(
            read_frame(&mut std::io::Cursor::new(&wrong_version)).unwrap_err(),
            WireError::UnsupportedVersion(WIRE_VERSION + 1)
        );

        // An unknown opcode byte is rejected.
        let mut wrong_opcode = wire.clone();
        wrong_opcode[5] = 0x42;
        assert_eq!(
            read_frame(&mut std::io::Cursor::new(&wrong_opcode)).unwrap_err(),
            WireError::UnknownOpcode(0x42)
        );

        // An absurd length prefix is bounded, not allocated.
        let mut oversized = wire;
        oversized[..4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(
            read_frame(&mut std::io::Cursor::new(&oversized)).unwrap_err(),
            WireError::Oversized(u32::MAX)
        );
    }
}
