//! The remote store client: a [`ReportStore`] whose backing storage lives
//! behind a [`crate::StoreServer`] across the wire protocol.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use dftsp_code::CssCode;

use crate::engine::SynthesisReport;
use crate::store::{CheckedStore, ReportKey, ReportStore, StoreFault};

use super::wire::{read_frame, write_frame, Frame, Opcode, StoreServerStats, WireError};

/// Ceiling on [`RemoteStoreConfig::retries`]: with exponential backoff, more
/// attempts than this only stretch an outage, never survive it.
pub const MAX_RETRIES: u32 = 16;

/// A rejected [`RemoteStoreConfig`] (see [`RemoteStoreConfig::validated`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteConfigError {
    /// `connect_timeout` was zero — every connect would fail immediately
    /// (or be rejected by the OS socket layer).
    ZeroConnectTimeout,
    /// `op_timeout` was zero — `set_read_timeout(Some(ZERO))` is an error,
    /// and a zero logical timeout would fail every operation.
    ZeroOpTimeout,
    /// `pool_size` was zero — every operation would open a fresh connection,
    /// which is never what a zero was meant to configure.
    ZeroPoolSize,
}

impl std::fmt::Display for RemoteConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteConfigError::ZeroConnectTimeout => {
                write!(f, "remote store config: connect_timeout must be non-zero")
            }
            RemoteConfigError::ZeroOpTimeout => {
                write!(f, "remote store config: op_timeout must be non-zero")
            }
            RemoteConfigError::ZeroPoolSize => {
                write!(f, "remote store config: pool_size must be at least 1")
            }
        }
    }
}

impl std::error::Error for RemoteConfigError {}

/// Counter snapshot of a [`RemoteReportStore`] — the client-side view of its
/// wire traffic and degradations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteCounters {
    /// Request frames put on the wire (including retries).
    pub frames_sent: u64,
    /// Response frames successfully read back.
    pub frames_received: u64,
    /// Bytes written to the wire.
    pub bytes_sent: u64,
    /// Bytes of response payloads read back.
    pub bytes_received: u64,
    /// Fresh TCP connections established.
    pub connects: u64,
    /// Operations re-attempted after a wire failure.
    pub retries: u64,
    /// Operations abandoned after the retry budget — each one degraded to a
    /// store miss (or a dropped save), never an error to the caller.
    pub degraded: u64,
    /// `found` responses whose payload failed to decode as a report (served
    /// as a miss; the entry will be re-solved and overwritten).
    pub corrupt_payloads: u64,
}

/// Tuning knobs of a [`RemoteReportStore`]; the defaults suit a same-host or
/// same-rack store server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteStoreConfig {
    /// Timeout for establishing a fresh connection.
    pub connect_timeout: Duration,
    /// Read/write timeout applied to each operation's socket I/O.
    pub op_timeout: Duration,
    /// How many times a failed operation is re-attempted (0 = single try).
    pub retries: u32,
    /// Base of the deterministic exponential backoff between attempts:
    /// attempt `n` (1-based) sleeps `backoff * 2^(n-1)` before retrying.
    pub backoff: Duration,
    /// Maximum idle connections kept pooled for reuse.
    pub pool_size: usize,
}

impl Default for RemoteStoreConfig {
    fn default() -> Self {
        RemoteStoreConfig {
            connect_timeout: Duration::from_millis(500),
            op_timeout: Duration::from_secs(2),
            retries: 2,
            backoff: Duration::from_millis(25),
            pool_size: 4,
        }
    }
}

impl RemoteStoreConfig {
    /// Validates the configuration: zero timeouts and a zero pool size are
    /// rejected with a typed error (instead of hanging, failing every
    /// operation, or tripping OS socket-option errors downstream), and
    /// `retries` is clamped to [`MAX_RETRIES`]. Every constructor runs this;
    /// call it directly to validate configuration from an untrusted source
    /// before wiring it in.
    ///
    /// # Errors
    ///
    /// The [`RemoteConfigError`] naming the rejected field.
    pub fn validated(mut self) -> Result<Self, RemoteConfigError> {
        if self.connect_timeout.is_zero() {
            return Err(RemoteConfigError::ZeroConnectTimeout);
        }
        if self.op_timeout.is_zero() {
            return Err(RemoteConfigError::ZeroOpTimeout);
        }
        if self.pool_size == 0 {
            return Err(RemoteConfigError::ZeroPoolSize);
        }
        self.retries = self.retries.min(MAX_RETRIES);
        Ok(self)
    }
}

/// A [`ReportStore`] served by a remote [`crate::StoreServer`].
///
/// Connections are pooled and re-established on failure; every operation has
/// a per-op timeout and a bounded, deterministic exponential-backoff retry.
/// The failure contract is *typed degradation*: when the server is down,
/// unreachable, or answering garbage, a `load` returns a store **miss** and
/// a `save` is dropped — each counted in [`RemoteCounters::degraded`] with a
/// warning on stderr — so a store outage costs re-solves, never a failed
/// synthesis. Slot it behind [`crate::TieredStore::with_back`] to keep the
/// in-process memory tier absorbing hot keys.
#[derive(Debug)]
pub struct RemoteReportStore {
    addr: SocketAddr,
    config: RemoteStoreConfig,
    pool: Mutex<Vec<TcpStream>>,
    hits: AtomicU64,
    misses: AtomicU64,
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    connects: AtomicU64,
    retries: AtomicU64,
    degraded: AtomicU64,
    corrupt_payloads: AtomicU64,
}

impl RemoteReportStore {
    /// A client for the server at `addr` with default tuning.
    ///
    /// Resolves the address eagerly; connections are established lazily per
    /// operation, so constructing a client for a down server succeeds (its
    /// operations degrade to misses).
    ///
    /// # Errors
    ///
    /// Forwards the I/O error if `addr` does not resolve.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        RemoteReportStore::connect_with(addr, RemoteStoreConfig::default())
    }

    /// A client with explicit [`RemoteStoreConfig`] tuning.
    ///
    /// # Errors
    ///
    /// Forwards the I/O error if `addr` does not resolve, or an
    /// `InvalidInput` error wrapping the typed [`RemoteConfigError`] (reach
    /// it via [`std::error::Error::source`]) if the configuration is
    /// rejected by [`RemoteStoreConfig::validated`].
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: RemoteStoreConfig,
    ) -> std::io::Result<Self> {
        let config = config
            .validated()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        })?;
        Ok(RemoteReportStore {
            addr,
            config,
            pool: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            frames_sent: AtomicU64::new(0),
            frames_received: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            connects: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            corrupt_payloads: AtomicU64::new(0),
        })
    }

    /// The server address this client talks to.
    pub fn server_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the client's wire counters.
    pub fn counters(&self) -> RemoteCounters {
        RemoteCounters {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            connects: self.connects.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            corrupt_payloads: self.corrupt_payloads.load(Ordering::Relaxed),
        }
    }

    /// Operations abandoned after the retry budget (see
    /// [`RemoteCounters::degraded`]).
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Asks the server for its counter snapshot.
    ///
    /// # Errors
    ///
    /// The final attempt's [`WireError`] when the server is unreachable or
    /// answers garbage after the retry budget.
    pub fn server_stats(&self) -> Result<StoreServerStats, WireError> {
        let response = self.request_with_retry(&Frame::stats())?;
        response.parse_stats_ok()
    }

    /// Checks out a pooled connection or establishes a fresh one.
    fn checkout(&self) -> Result<TcpStream, WireError> {
        if let Some(stream) = self.pool.lock().expect("remote pool lock poisoned").pop() {
            return Ok(stream);
        }
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(self.config.op_timeout)).ok();
        stream.set_write_timeout(Some(self.config.op_timeout)).ok();
        self.connects.fetch_add(1, Ordering::Relaxed);
        Ok(stream)
    }

    /// Returns a healthy connection to the pool (bounded by `pool_size`).
    fn checkin(&self, stream: TcpStream) {
        let mut pool = self.pool.lock().expect("remote pool lock poisoned");
        if pool.len() < self.config.pool_size {
            pool.push(stream);
        }
    }

    /// One attempt: checkout, write the request, read the response. On any
    /// failure the connection is dropped and the whole pool is cleared — a
    /// wire failure usually means the server restarted, so every pooled
    /// connection is suspect.
    fn round_trip(&self, request: &Frame) -> Result<Frame, WireError> {
        let mut stream = self.checkout()?;
        let result = (|| {
            let sent = write_frame(&mut stream, request)?;
            self.frames_sent.fetch_add(1, Ordering::Relaxed);
            self.bytes_sent.fetch_add(sent, Ordering::Relaxed);
            let response = read_frame(&mut stream)?;
            self.frames_received.fetch_add(1, Ordering::Relaxed);
            self.bytes_received
                .fetch_add(response.wire_len(), Ordering::Relaxed);
            Ok(response)
        })();
        match result {
            Ok(response) => {
                if response.opcode() == Opcode::Error {
                    // The server answered but refused: the connection's
                    // framing state is unknown, treat it like a failure.
                    self.pool.lock().expect("remote pool lock poisoned").clear();
                    return Err(WireError::Server(response.error_message()));
                }
                self.checkin(stream);
                Ok(response)
            }
            Err(err) => {
                drop(stream);
                self.pool.lock().expect("remote pool lock poisoned").clear();
                Err(err)
            }
        }
    }

    /// Runs `round_trip` under the bounded deterministic-backoff retry
    /// policy; the returned error is the *last* attempt's.
    fn request_with_retry(&self, request: &Frame) -> Result<Frame, WireError> {
        let mut last = None;
        for attempt in 0..=self.config.retries {
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
                let exponent = attempt.saturating_sub(1).min(16);
                std::thread::sleep(self.config.backoff * 2u32.pow(exponent));
            }
            match self.round_trip(request) {
                Ok(response) => return Ok(response),
                Err(err) => last = Some(err),
            }
        }
        Err(last.expect("at least one attempt always runs"))
    }

    /// Counts one degradation and warns; the caller then serves a miss.
    fn degrade(&self, op: &str, key: &ReportKey, err: &WireError) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "warning: remote report store {} degraded {op} for {:?} to a miss: {err}",
            self.addr, key.code_name
        );
    }

    /// The fallible load underneath the [`ReportStore`] facade: `Ok(None)`
    /// is a genuine server-answered miss, `Err` is the final attempt's wire
    /// failure. A served-but-undecodable payload is `Ok(None)` with a
    /// [`RemoteCounters::corrupt_payloads`] count — the server *is* healthy,
    /// the entry is what's broken, and the re-solve will overwrite it.
    ///
    /// # Errors
    ///
    /// The last attempt's [`WireError`] after the retry budget.
    pub fn try_load(
        &self,
        key: &ReportKey,
        code: &CssCode,
    ) -> Result<Option<SynthesisReport>, WireError> {
        let response = self.request_with_retry(&Frame::get(key))?;
        match response.opcode() {
            Opcode::NotFound => Ok(None),
            _ => match response.parse_found(code) {
                Ok(report) => Ok(Some(report)),
                Err(err) => {
                    // The server is up but this entry's payload is
                    // unusable: count it, serve a miss, let the re-solve
                    // overwrite the entry. No retry — the payload is
                    // deterministic, a retry would fetch the same bytes.
                    self.corrupt_payloads.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "warning: remote report store {} served an undecodable entry for {:?}: {err}",
                        self.addr, key.code_name
                    );
                    Ok(None)
                }
            },
        }
    }

    /// The fallible save underneath the [`ReportStore`] facade.
    ///
    /// # Errors
    ///
    /// The last attempt's [`WireError`] after the retry budget.
    pub fn try_save(&self, key: &ReportKey, report: &SynthesisReport) -> Result<(), WireError> {
        self.request_with_retry(&Frame::put(key, report))?;
        Ok(())
    }
}

impl CheckedStore for RemoteReportStore {
    fn load_checked(
        &self,
        key: &ReportKey,
        code: &CssCode,
    ) -> Result<Option<SynthesisReport>, StoreFault> {
        self.try_load(key, code).map_err(StoreFault::Wire)
    }

    fn save_checked(&self, key: &ReportKey, report: &SynthesisReport) -> Result<(), StoreFault> {
        self.try_save(key, report).map_err(StoreFault::Wire)
    }
}

impl ReportStore for RemoteReportStore {
    fn load(&self, key: &ReportKey, code: &CssCode) -> Option<SynthesisReport> {
        let report = match self.try_load(key, code) {
            Ok(report) => report,
            Err(err) => {
                self.degrade("load", key, &err);
                None
            }
        };
        match &report {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        report
    }

    fn save(&self, key: &ReportKey, report: &SynthesisReport) {
        match self.try_save(key, report) {
            Ok(()) => {}
            Err(err) => self.degrade("save", key, &err),
        }
    }

    fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}
