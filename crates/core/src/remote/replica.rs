//! N-way replication with health-tracked failover and read-repair.
//!
//! A [`ReplicatedStore`] holds an ordered list of replica backends. Writes
//! fan out to every healthy replica; reads try the replicas in order and
//! serve the first hit, so replica 0 is the preferred (cheapest) copy and
//! the rest are failover. Each replica carries a **circuit breaker**: after
//! `trip_after` consecutive failures the breaker opens and the replica is
//! skipped for a deterministic hold measured in *operations* (not wall
//! clock — the schedule is reproducible under [`crate::FaultPlan`]-driven
//! tests), after which a single half-open probe decides between closing the
//! breaker and re-opening it with a doubled hold, up to `max_hold_ops`.
//! A hit served by a later replica is **read-repaired** onto every earlier
//! replica that answered "miss", so a wiped server rejoining its group
//! converges back to a full copy from ordinary read traffic, no rebalance
//! job required.
//!
//! The store itself implements the infallible [`ReportStore`] facade, so
//! replica groups compose under [`crate::ShardedStore`] (shards of replica
//! groups) and slot behind [`crate::TieredStore::with_back`] unchanged.
//! Its *backends* implement [`CheckedStore`], the fallible seam that lets
//! the breaker distinguish a dead replica from a cold one.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dftsp_code::CssCode;

use crate::engine::SynthesisReport;
use crate::store::{CheckedStore, ReportKey, ReportStore};

/// Configuration error of a [`ReplicatedStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaError {
    /// The replica list was empty — an unroutable group.
    NoReplicas,
    /// `trip_after` was zero, which would open every breaker before its
    /// first operation.
    ZeroTripThreshold,
    /// `hold_ops` was zero, which would make an open breaker meaningless
    /// (probed again on the very next operation).
    ZeroHold,
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::NoReplicas => write!(f, "a replica group needs at least one replica"),
            ReplicaError::ZeroTripThreshold => {
                write!(f, "trip_after must be at least 1 consecutive failure")
            }
            ReplicaError::ZeroHold => write!(f, "hold_ops must be at least 1 operation"),
        }
    }
}

impl std::error::Error for ReplicaError {}

/// Breaker tuning of a [`ReplicatedStore`]. The defaults suit serving
/// traffic where a replica failure costs a connect timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaConfig {
    /// Consecutive failures that trip a replica's breaker open.
    pub trip_after: u32,
    /// How many group operations an open breaker holds before its half-open
    /// probe (the deterministic analogue of a backoff interval).
    pub hold_ops: u64,
    /// Ceiling of the doubling hold schedule: each failed probe doubles the
    /// hold, capped here.
    pub max_hold_ops: u64,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            trip_after: 3,
            hold_ops: 8,
            max_hold_ops: 256,
        }
    }
}

/// Observable state of one replica's circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: operations flow.
    Closed,
    /// Tripped: operations are skipped until the hold expires.
    Open,
    /// The hold expired: the next operation is a probe.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

/// Health snapshot of one replica (see [`ReplicatedStore::health`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaHealth {
    /// Current breaker state, evaluated against the group's op clock.
    pub state: BreakerState,
    /// Consecutive failures since the last success.
    pub consecutive_failures: u32,
    /// Times this replica's breaker tripped open (including re-opens after
    /// a failed probe).
    pub trips: u64,
    /// Half-open probes attempted.
    pub probes: u64,
    /// Total failed operations against this replica.
    pub failures: u64,
}

/// Counter snapshot of a [`ReplicatedStore`] (see
/// [`ReplicatedStore::counters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaCounters {
    /// Individual replica operations that failed (load or save).
    pub replica_failures: u64,
    /// Breaker trips across all replicas (initial trips + re-opens).
    pub breaker_trips: u64,
    /// Half-open probes across all replicas.
    pub breaker_probes: u64,
    /// Operations skipped because a replica's breaker was open.
    pub skipped_open: u64,
    /// Hits served by a replica other than the first one tried.
    pub failover_reads: u64,
    /// Missing copies repaired by writing a hit back to an earlier-tried
    /// replica that answered "miss".
    pub read_repairs: u64,
    /// Read-repair writes that themselves failed.
    pub repair_failures: u64,
    /// Replica writes that landed during fan-out saves.
    pub fanout_writes: u64,
}

/// Internal breaker bookkeeping of one replica.
#[derive(Debug)]
struct Health {
    consecutive_failures: u32,
    /// `Some((until, hold))` while open: skip until the group op clock
    /// reaches `until`, then probe; `hold` is the doubling backoff level.
    open: Option<(u64, u64)>,
    trips: u64,
    probes: u64,
    failures: u64,
}

/// One replica: its backend plus breaker state.
#[derive(Debug)]
struct Replica {
    store: Arc<dyn CheckedStore>,
    health: Mutex<Health>,
}

/// What the breaker decided for one operation.
enum Admit {
    /// Run the operation; `probe` marks a half-open attempt.
    Attempt { probe: bool },
    /// Breaker open: skip this replica.
    Skip,
}

impl Replica {
    fn new(store: Arc<dyn CheckedStore>) -> Self {
        Replica {
            store,
            health: Mutex::new(Health {
                consecutive_failures: 0,
                open: None,
                trips: 0,
                probes: 0,
                failures: 0,
            }),
        }
    }

    /// Consults the breaker at group op `clock`.
    fn admit(&self, clock: u64) -> Admit {
        let mut health = self.health.lock().expect("replica health lock poisoned");
        match health.open {
            None => Admit::Attempt { probe: false },
            Some((until, _)) if clock < until => Admit::Skip,
            Some(_) => {
                health.probes += 1;
                Admit::Attempt { probe: true }
            }
        }
    }

    /// Records a successful operation: resets the failure streak and closes
    /// the breaker (a passed probe, or a success racing the trip).
    fn record_success(&self) {
        let mut health = self.health.lock().expect("replica health lock poisoned");
        health.consecutive_failures = 0;
        health.open = None;
    }

    /// Records a failed operation at group op `clock`; returns `true` when
    /// this failure tripped (or re-opened) the breaker.
    fn record_failure(&self, probe: bool, clock: u64, config: &ReplicaConfig) -> bool {
        let mut health = self.health.lock().expect("replica health lock poisoned");
        health.failures += 1;
        health.consecutive_failures = health.consecutive_failures.saturating_add(1);
        if probe {
            // A failed probe re-opens with a doubled hold, capped.
            let hold = health
                .open
                .map(|(_, hold)| (hold * 2).min(config.max_hold_ops))
                .unwrap_or(config.hold_ops);
            health.open = Some((clock + hold, hold));
            health.trips += 1;
            return true;
        }
        if health.open.is_none() && health.consecutive_failures >= config.trip_after {
            health.open = Some((clock + config.hold_ops, config.hold_ops));
            health.trips += 1;
            return true;
        }
        false
    }

    fn snapshot(&self, clock: u64) -> ReplicaHealth {
        let health = self.health.lock().expect("replica health lock poisoned");
        let state = match health.open {
            None => BreakerState::Closed,
            Some((until, _)) if clock < until => BreakerState::Open,
            Some(_) => BreakerState::HalfOpen,
        };
        ReplicaHealth {
            state,
            consecutive_failures: health.consecutive_failures,
            trips: health.trips,
            probes: health.probes,
            failures: health.failures,
        }
    }
}

/// A [`ReportStore`] replicating across N [`CheckedStore`] backends — see
/// the module docs for the failover, breaker and read-repair semantics.
#[derive(Debug)]
pub struct ReplicatedStore {
    replicas: Vec<Replica>,
    config: ReplicaConfig,
    /// The group's operation clock: one tick per load/save, the time base of
    /// every breaker hold.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    replica_failures: AtomicU64,
    breaker_trips: AtomicU64,
    skipped_open: AtomicU64,
    failover_reads: AtomicU64,
    read_repairs: AtomicU64,
    repair_failures: AtomicU64,
    fanout_writes: AtomicU64,
}

impl ReplicatedStore {
    /// A replica group with default breaker tuning.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::NoReplicas`] when `replicas` is empty.
    pub fn new(replicas: Vec<Arc<dyn CheckedStore>>) -> Result<Self, ReplicaError> {
        ReplicatedStore::with_config(replicas, ReplicaConfig::default())
    }

    /// A replica group with explicit [`ReplicaConfig`] tuning.
    ///
    /// # Errors
    ///
    /// [`ReplicaError`] when the replica list is empty or the breaker
    /// thresholds are zero.
    pub fn with_config(
        replicas: Vec<Arc<dyn CheckedStore>>,
        config: ReplicaConfig,
    ) -> Result<Self, ReplicaError> {
        if replicas.is_empty() {
            return Err(ReplicaError::NoReplicas);
        }
        if config.trip_after == 0 {
            return Err(ReplicaError::ZeroTripThreshold);
        }
        if config.hold_ops == 0 || config.max_hold_ops == 0 {
            return Err(ReplicaError::ZeroHold);
        }
        Ok(ReplicatedStore {
            replicas: replicas.into_iter().map(Replica::new).collect(),
            config,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            replica_failures: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            skipped_open: AtomicU64::new(0),
            failover_reads: AtomicU64::new(0),
            read_repairs: AtomicU64::new(0),
            repair_failures: AtomicU64::new(0),
            fanout_writes: AtomicU64::new(0),
        })
    }

    /// Number of replicas in the group.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The breaker configuration.
    pub fn config(&self) -> ReplicaConfig {
        self.config
    }

    /// Snapshot of the group's counters.
    pub fn counters(&self) -> ReplicaCounters {
        let clock = self.clock.load(Ordering::Relaxed);
        ReplicaCounters {
            replica_failures: self.replica_failures.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_probes: self.replicas.iter().map(|r| r.snapshot(clock).probes).sum(),
            skipped_open: self.skipped_open.load(Ordering::Relaxed),
            failover_reads: self.failover_reads.load(Ordering::Relaxed),
            read_repairs: self.read_repairs.load(Ordering::Relaxed),
            repair_failures: self.repair_failures.load(Ordering::Relaxed),
            fanout_writes: self.fanout_writes.load(Ordering::Relaxed),
        }
    }

    /// Per-replica health snapshots, in replica order.
    pub fn health(&self) -> Vec<ReplicaHealth> {
        let clock = self.clock.load(Ordering::Relaxed);
        self.replicas
            .iter()
            .map(|replica| replica.snapshot(clock))
            .collect()
    }

    /// Claims the next group operation tick.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Records one replica failure, warning once per breaker trip (not once
    /// per failed op — a dead replica under load would flood stderr).
    fn note_failure(
        &self,
        index: usize,
        replica: &Replica,
        probe: bool,
        clock: u64,
        op: &str,
        err: &dyn std::fmt::Display,
    ) {
        self.replica_failures.fetch_add(1, Ordering::Relaxed);
        if replica.record_failure(probe, clock, &self.config) {
            self.breaker_trips.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "warning: replica {index} breaker opened after failed {op} (op clock {clock}): {err}"
            );
        }
    }
}

impl ReportStore for ReplicatedStore {
    fn load(&self, key: &ReportKey, code: &CssCode) -> Option<SynthesisReport> {
        let clock = self.tick();
        // Replicas tried before the winner that answered "miss" — the
        // read-repair set. A replica that *failed* is excluded: its copy
        // state is unknown and its breaker is counting.
        let mut repair = Vec::new();
        let mut winner = None;
        for (index, replica) in self.replicas.iter().enumerate() {
            let probe = match replica.admit(clock) {
                Admit::Skip => {
                    self.skipped_open.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                Admit::Attempt { probe } => probe,
            };
            match replica.store.load_checked(key, code) {
                Ok(Some(report)) => {
                    replica.record_success();
                    winner = Some((index, report));
                    break;
                }
                Ok(None) => {
                    replica.record_success();
                    repair.push(index);
                }
                Err(err) => self.note_failure(index, replica, probe, clock, "load", &err),
            }
        }
        let Some((winner, report)) = winner else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        if winner > 0 {
            self.failover_reads.fetch_add(1, Ordering::Relaxed);
        }
        for index in repair {
            match self.replicas[index].store.save_checked(key, &report) {
                Ok(()) => {
                    self.replicas[index].record_success();
                    self.read_repairs.fetch_add(1, Ordering::Relaxed);
                }
                Err(err) => {
                    self.repair_failures.fetch_add(1, Ordering::Relaxed);
                    self.note_failure(index, &self.replicas[index], false, clock, "repair", &err);
                }
            }
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(report)
    }

    fn save(&self, key: &ReportKey, report: &SynthesisReport) {
        let clock = self.tick();
        for (index, replica) in self.replicas.iter().enumerate() {
            let probe = match replica.admit(clock) {
                Admit::Skip => {
                    self.skipped_open.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                Admit::Attempt { probe } => probe,
            };
            match replica.store.save_checked(key, report) {
                Ok(()) => {
                    replica.record_success();
                    self.fanout_writes.fetch_add(1, Ordering::Relaxed);
                }
                Err(err) => self.note_failure(index, replica, probe, clock, "save", &err),
            }
        }
    }

    fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}
