//! Deterministic fault injection for the distributed store stack.
//!
//! Every failure mode the wire/client stack claims to tolerate — dropped
//! connections, delayed operations, corrupted frame bytes, ERR refusals,
//! truncated responses, a backend dying after N operations — is modeled as a
//! [`FaultAction`] scheduled by a [`FaultPlan`]. A plan is a *pure function
//! of its seed (or script) and the operation index*, so a failing test run
//! reproduces byte-for-byte: same plan, same traffic, same faults, same
//! counters.
//!
//! The plan is applied at three seams:
//!
//! * [`crate::StoreServer::bind_faulty`] injects the **wire-level** faults
//!   (drop, corrupt, truncate, ERR, delay, stall) into the server's response
//!   path, exercising the client's typed-degradation contract over real
//!   sockets.
//! * [`FaultyKv`] wraps any [`RawReportKv`] on the server side and injects
//!   **storage-level** faults (lost entries, dropped writes, corrupted or
//!   truncated payload text, delays) underneath an otherwise healthy wire.
//! * [`FaultyStore`] wraps any [`ReportStore`] on the client side and turns
//!   scheduled faults into typed [`StoreFault`]s through the fallible
//!   [`CheckedStore`] trait — the deterministic stand-in for a flaky replica
//!   that [`crate::ReplicatedStore`]'s health tracking is tested against.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dftsp_code::CssCode;

use crate::engine::SynthesisReport;
use crate::store::{CheckedStore, RawReportKv, ReportKey, ReportStore, StoreFault};

/// One injectable failure mode. Which effect an action has depends on the
/// seam applying it (wire, server KV, or client store) — see the module docs;
/// every seam that cannot express an action degrades it to the closest one it
/// can (e.g. a `DropConnection` at the KV seam reads as a lost entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Sleep for the given duration, then perform the operation normally.
    Delay(Duration),
    /// Close the connection without answering (wire); lose the entry /
    /// drop the write (KV); fail the operation (store).
    DropConnection,
    /// Flip a byte: of the response frame (wire — the client sees a
    /// checksum mismatch), or of the stored payload text (KV — the client
    /// sees a corrupt payload).
    CorruptFrame,
    /// Answer with an ERR frame (wire); lose the entry / drop the write
    /// (KV); fail the operation (store).
    RefuseErr,
    /// Send only a prefix of the response frame and close (wire), or serve /
    /// store only a prefix of the payload text (KV).
    TruncateResponse,
    /// Swallow the request without answering, stalling the client into its
    /// read timeout (wire); lose the entry / drop the write (KV); fail the
    /// operation (store).
    FailOp,
}

impl FaultAction {
    /// Every action, in the deterministic order seeded plans cycle through.
    pub const ALL: [FaultAction; 6] = [
        FaultAction::Delay(Duration::from_millis(5)),
        FaultAction::DropConnection,
        FaultAction::CorruptFrame,
        FaultAction::RefuseErr,
        FaultAction::TruncateResponse,
        FaultAction::FailOp,
    ];
}

impl std::fmt::Display for FaultAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultAction::Delay(d) => write!(f, "delay({d:?})"),
            FaultAction::DropConnection => write!(f, "drop-connection"),
            FaultAction::CorruptFrame => write!(f, "corrupt-frame"),
            FaultAction::RefuseErr => write!(f, "refuse-err"),
            FaultAction::TruncateResponse => write!(f, "truncate-response"),
            FaultAction::FailOp => write!(f, "fail-op"),
        }
    }
}

/// A fault injected into one operation: the action plus the operation index
/// it fired at, so a failure in a log or a [`StoreFault`] chain names the
/// exact schedule position that reproduces it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultError {
    /// Zero-based index of the operation the plan faulted.
    pub op: u64,
    /// The action that was injected.
    pub action: FaultAction,
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault {} at operation {}", self.action, self.op)
    }
}

impl std::error::Error for FaultError {}

/// How a [`FaultPlan`] decides which operations fault.
#[derive(Debug, Clone)]
enum PlanMode {
    /// Never faults.
    Clean,
    /// Explicit per-operation script; unlisted operations run clean.
    Script(BTreeMap<u64, FaultAction>),
    /// Pseudo-random schedule: roughly one in `period` operations faults,
    /// with the action drawn from `menu` — both pure functions of the seed
    /// and the operation index.
    Seeded {
        seed: u64,
        period: u64,
        menu: Vec<FaultAction>,
    },
    /// Clean for the first `after` operations, then every operation faults
    /// with `action` — a backend dying mid-run.
    FailAfter { after: u64, action: FaultAction },
}

/// A deterministic, scriptable schedule of [`FaultAction`]s.
///
/// The plan owns an atomic operation counter; each seam calls
/// [`FaultPlan::next`] once per operation and applies the returned action (if
/// any). Whether operation `n` faults — and how — is a pure function of the
/// plan's construction and `n` ([`FaultPlan::action_for`]), never of wall
/// clock or thread timing, which is what makes outage tests reproducible
/// byte-for-byte.
#[derive(Debug)]
pub struct FaultPlan {
    mode: PlanMode,
    cursor: AtomicU64,
    injected: AtomicU64,
}

impl FaultPlan {
    /// A plan that never faults.
    pub fn clean() -> Self {
        FaultPlan::with_mode(PlanMode::Clean)
    }

    /// An explicit script: operation `op` performs `action`; every operation
    /// not listed runs clean. Listing the same `op` twice keeps the last
    /// action.
    pub fn script(faults: impl IntoIterator<Item = (u64, FaultAction)>) -> Self {
        FaultPlan::with_mode(PlanMode::Script(faults.into_iter().collect()))
    }

    /// A seeded pseudo-random schedule faulting roughly one in `period`
    /// operations (`period` is clamped to at least 1 — a period of 1 faults
    /// every operation), cycling deterministically through
    /// [`FaultAction::ALL`].
    pub fn seeded(seed: u64, period: u64) -> Self {
        FaultPlan::seeded_with(seed, period, FaultAction::ALL.to_vec())
    }

    /// Like [`FaultPlan::seeded`] with an explicit action menu; an empty
    /// menu yields a clean plan.
    pub fn seeded_with(seed: u64, period: u64, menu: Vec<FaultAction>) -> Self {
        if menu.is_empty() {
            return FaultPlan::clean();
        }
        FaultPlan::with_mode(PlanMode::Seeded {
            seed,
            period: period.max(1),
            menu,
        })
    }

    /// Clean for the first `after` operations, then `action` on every
    /// operation from index `after` on — a backend that dies mid-run and
    /// stays dead.
    pub fn fail_after(after: u64, action: FaultAction) -> Self {
        FaultPlan::with_mode(PlanMode::FailAfter { after, action })
    }

    fn with_mode(mode: PlanMode) -> Self {
        FaultPlan {
            mode,
            cursor: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// The action (if any) for operation `op` — pure, does not advance the
    /// plan. `action_for(n)` is exactly what the nth [`FaultPlan::next`]
    /// call returns.
    pub fn action_for(&self, op: u64) -> Option<FaultAction> {
        match &self.mode {
            PlanMode::Clean => None,
            PlanMode::Script(faults) => faults.get(&op).copied(),
            PlanMode::Seeded { seed, period, menu } => {
                let roll = mix(*seed, op);
                if roll.is_multiple_of(*period) {
                    Some(menu[((roll >> 33) % menu.len() as u64) as usize])
                } else {
                    None
                }
            }
            PlanMode::FailAfter { after, action } => (op >= *after).then_some(*action),
        }
    }

    /// Claims the next operation index and returns its scheduled action, if
    /// any. Thread-safe; concurrent callers each get a distinct index.
    pub fn next(&self) -> Option<FaultAction> {
        let op = self.cursor.fetch_add(1, Ordering::Relaxed);
        let action = self.action_for(op);
        if action.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        action
    }

    /// Like [`FaultPlan::next`], also reporting the claimed operation index.
    pub fn next_indexed(&self) -> (u64, Option<FaultAction>) {
        let op = self.cursor.fetch_add(1, Ordering::Relaxed);
        let action = self.action_for(op);
        if action.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        (op, action)
    }

    /// Operations the plan has been consulted for so far.
    pub fn ops(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Operations that drew a fault so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

/// SplitMix64 over (seed, op) — the deterministic roll behind seeded plans.
fn mix(seed: u64, op: u64) -> u64 {
    let mut z = seed ^ op.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Flips one byte (the last) of `text`'s UTF-8 bytes, keeping the result a
/// `String` by lossy round-trip — enough to break the JSON codec or the
/// frame checksum downstream while staying deterministic.
fn corrupt_text(text: &str) -> String {
    let mut bytes = text.as_bytes().to_vec();
    if let Some(last) = bytes.last_mut() {
        *last ^= 0x40;
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Truncates `text` to half its length on a character boundary.
fn truncate_text(text: &str) -> String {
    let mut end = text.len() / 2;
    while !text.is_char_boundary(end) {
        end -= 1;
    }
    text[..end].to_string()
}

/// A [`RawReportKv`] wrapper injecting **storage-level** faults on the
/// server side of the wire: lost entries, dropped writes, corrupted or
/// truncated payload text, delays. The wire itself stays healthy — pair with
/// [`crate::StoreServer::bind_faulty`] to fault both seams.
///
/// One plan operation is consumed per `get`/`put`. Actions with no storage
/// meaning (`DropConnection`, `RefuseErr`, `FailOp`) read as a lost entry on
/// `get` and a dropped write on `put`.
#[derive(Debug)]
pub struct FaultyKv {
    inner: Arc<dyn RawReportKv>,
    plan: Arc<FaultPlan>,
}

impl FaultyKv {
    /// Wraps `inner`, injecting faults per `plan`.
    pub fn new(inner: Arc<dyn RawReportKv>, plan: Arc<FaultPlan>) -> Self {
        FaultyKv { inner, plan }
    }

    /// The plan driving this wrapper (for counter assertions).
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }
}

impl RawReportKv for FaultyKv {
    fn get_text(&self, key: &ReportKey) -> Option<String> {
        match self.plan.next() {
            None => self.inner.get_text(key),
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                self.inner.get_text(key)
            }
            Some(FaultAction::CorruptFrame) => {
                self.inner.get_text(key).map(|text| corrupt_text(&text))
            }
            Some(FaultAction::TruncateResponse) => {
                self.inner.get_text(key).map(|text| truncate_text(&text))
            }
            Some(FaultAction::DropConnection | FaultAction::RefuseErr | FaultAction::FailOp) => {
                None
            }
        }
    }

    fn put_text(&self, key: &ReportKey, text: &str) {
        match self.plan.next() {
            None => self.inner.put_text(key, text),
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                self.inner.put_text(key, text);
            }
            Some(FaultAction::CorruptFrame) => self.inner.put_text(key, &corrupt_text(text)),
            Some(FaultAction::TruncateResponse) => self.inner.put_text(key, &truncate_text(text)),
            Some(FaultAction::DropConnection | FaultAction::RefuseErr | FaultAction::FailOp) => {}
        }
    }
}

/// A [`ReportStore`] wrapper injecting faults on the client side.
///
/// Through the infallible [`ReportStore`] facade a faulted load reads as a
/// miss and a faulted save is dropped — the same degradation contract the
/// remote client honors. Through the fallible [`CheckedStore`] trait a
/// faulted operation is a typed [`StoreFault::Injected`] instead, which is
/// what lets [`crate::ReplicatedStore`]'s health tracking *see* the failure:
/// a `FaultyStore` over a [`crate::MemoryReportStore`] is a fully
/// deterministic flaky replica, no sockets involved.
///
/// One plan operation is consumed per load/save. [`FaultAction::Delay`]
/// sleeps and then succeeds; every other action fails the operation.
#[derive(Debug)]
pub struct FaultyStore {
    inner: Arc<dyn ReportStore>,
    plan: Arc<FaultPlan>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl FaultyStore {
    /// Wraps `inner`, injecting faults per `plan`.
    pub fn new(inner: Arc<dyn ReportStore>, plan: Arc<FaultPlan>) -> Self {
        FaultyStore {
            inner,
            plan,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The plan driving this wrapper (for counter assertions).
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }

    /// Claims the next plan operation; `Err` when it faults (after serving
    /// any scheduled delay).
    fn gate(&self) -> Result<(), StoreFault> {
        let (op, action) = self.plan.next_indexed();
        match action {
            None => Ok(()),
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                Ok(())
            }
            Some(action) => Err(StoreFault::Injected(FaultError { op, action })),
        }
    }
}

impl CheckedStore for FaultyStore {
    fn load_checked(
        &self,
        key: &ReportKey,
        code: &CssCode,
    ) -> Result<Option<SynthesisReport>, StoreFault> {
        self.gate()?;
        Ok(self.inner.load(key, code))
    }

    fn save_checked(&self, key: &ReportKey, report: &SynthesisReport) -> Result<(), StoreFault> {
        self.gate()?;
        self.inner.save(key, report);
        Ok(())
    }
}

impl ReportStore for FaultyStore {
    fn load(&self, key: &ReportKey, code: &CssCode) -> Option<SynthesisReport> {
        let report = self.load_checked(key, code).unwrap_or_default();
        match &report {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        report
    }

    fn save(&self, key: &ReportKey, report: &SynthesisReport) {
        self.save_checked(key, report).ok();
    }

    fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_functions_of_seed_and_index() {
        let a = FaultPlan::seeded(0xFA_17, 3);
        let b = FaultPlan::seeded(0xFA_17, 3);
        let via_next: Vec<_> = (0..64).map(|_| a.next()).collect();
        let via_pure: Vec<_> = (0..64).map(|op| b.action_for(op)).collect();
        assert_eq!(via_next, via_pure);
        assert_eq!(a.ops(), 64);
        assert!(a.injected() > 0, "a period-3 plan faults within 64 ops");
        assert!(a.injected() < 64, "a period-3 plan leaves most ops clean");

        // A different seed draws a different schedule.
        let c = FaultPlan::seeded(0x5EED, 3);
        let other: Vec<_> = (0..64).map(|op| c.action_for(op)).collect();
        assert_ne!(via_pure, other);
    }

    #[test]
    fn script_and_fail_after_schedules() {
        let script = FaultPlan::script([(1, FaultAction::RefuseErr), (3, FaultAction::FailOp)]);
        assert_eq!(script.next(), None);
        assert_eq!(script.next(), Some(FaultAction::RefuseErr));
        assert_eq!(script.next(), None);
        assert_eq!(script.next(), Some(FaultAction::FailOp));
        assert_eq!(script.next(), None);
        assert_eq!(script.injected(), 2);

        let dying = FaultPlan::fail_after(2, FaultAction::DropConnection);
        assert_eq!(dying.next(), None);
        assert_eq!(dying.next(), None);
        for _ in 0..5 {
            assert_eq!(dying.next(), Some(FaultAction::DropConnection));
        }

        assert_eq!(FaultPlan::clean().next(), None);
        assert_eq!(FaultPlan::seeded_with(1, 1, Vec::new()).next(), None);
    }

    #[test]
    fn corruption_helpers_are_deterministic_and_boundary_safe() {
        assert_eq!(corrupt_text("abcd"), corrupt_text("abcd"));
        assert_ne!(corrupt_text("abcd"), "abcd");
        // Truncation never splits a multi-byte character.
        let text = "ééééé";
        let cut = truncate_text(text);
        assert!(text.starts_with(&cut));
        assert!(cut.len() < text.len());
    }
}
