//! Deterministic key-hash sharding across several report-store backends.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dftsp_code::CssCode;

use crate::engine::SynthesisReport;
use crate::store::{ReportKey, ReportStore};

/// A [`ReportStore`] that splits the keyspace across N backends by
/// [`ReportKey`] fingerprint, so several store servers each hold a
/// deterministic, non-overlapping slice of the catalog.
///
/// Routing is pure arithmetic on the key — `fingerprint mod N` — so every
/// client with the same backend list agrees on the placement of every key
/// with no coordination. The backends are arbitrary [`ReportStore`]s;
/// sharding across [`crate::RemoteReportStore`]s gives multiple servers,
/// sharding across local stores partitions a directory.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<Arc<dyn ReportStore>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardedStore {
    /// A sharded store over `shards` (at least one).
    ///
    /// # Panics
    ///
    /// When `shards` is empty — an unroutable store is a configuration
    /// error, not a runtime condition.
    pub fn new(shards: Vec<Arc<dyn ReportStore>>) -> Self {
        assert!(
            !shards.is_empty(),
            "a ShardedStore needs at least one shard"
        );
        ShardedStore {
            shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of backends.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` routes to — exposed so deployments and tests
    /// can verify placement without issuing traffic.
    pub fn shard_for(&self, key: &ReportKey) -> usize {
        (key.fingerprint % self.shards.len() as u64) as usize
    }

    /// The backend `key` routes to.
    pub fn shard(&self, key: &ReportKey) -> &Arc<dyn ReportStore> {
        &self.shards[self.shard_for(key)]
    }
}

impl ReportStore for ShardedStore {
    fn load(&self, key: &ReportKey, code: &CssCode) -> Option<SynthesisReport> {
        let report = self.shard(key).load(key, code);
        match &report {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        report
    }

    fn save(&self, key: &ReportKey, report: &SynthesisReport) {
        self.shard(key).save(key, report);
    }

    fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}
