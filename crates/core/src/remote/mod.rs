//! The distributed report store: a remote KV protocol over TCP, a store
//! server, a degrading remote client, and deterministic keyspace sharding.
//!
//! The pieces compose into the multi-process serving story:
//!
//! * [`wire`] — length-prefixed, version-tagged, checksummed frames carrying
//!   the store's existing JSON report codec (`get`/`put`/`stats`); every
//!   malformed input is a typed [`WireError`], never a panic.
//! * [`StoreServer`] — a bounded thread-per-connection accept loop serving
//!   any [`crate::store::RawReportKv`] (a [`crate::JsonReportStore`]
//!   directory, typically) to the network, with graceful shutdown.
//! * [`RemoteReportStore`] — a [`crate::ReportStore`] client with connection
//!   pooling, per-op timeouts and bounded deterministic-backoff retry, whose
//!   outages *degrade to store misses* (counted and warned) instead of
//!   failing synthesis. Slots behind [`crate::TieredStore::with_back`].
//! * [`ShardedStore`] — routes each [`crate::ReportKey`] to one of N
//!   backends by fingerprint hash, splitting the keyspace across servers
//!   with zero coordination.
//!
//! See the crate-level "Remote & sharded stores" section for the assembled
//! topology, and `examples/remote_store_demo.rs` for a runnable walkthrough.

pub mod wire;

mod client;
mod server;
mod shard;

pub use client::{RemoteCounters, RemoteReportStore, RemoteStoreConfig};
pub use server::StoreServer;
pub use shard::ShardedStore;
pub use wire::{StoreServerStats, WireError};
