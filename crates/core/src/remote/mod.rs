//! The distributed report store: a remote KV protocol over TCP, a store
//! server, a degrading remote client, and deterministic keyspace sharding.
//!
//! The pieces compose into the multi-process serving story:
//!
//! * [`wire`] — length-prefixed, version-tagged, checksummed frames carrying
//!   the store's existing JSON report codec (`get`/`put`/`stats`); every
//!   malformed input is a typed [`WireError`], never a panic.
//! * [`StoreServer`] — a bounded thread-per-connection accept loop serving
//!   any [`crate::store::RawReportKv`] (a [`crate::JsonReportStore`]
//!   directory, typically) to the network, with graceful shutdown.
//! * [`RemoteReportStore`] — a [`crate::ReportStore`] client with connection
//!   pooling, per-op timeouts and bounded deterministic-backoff retry, whose
//!   outages *degrade to store misses* (counted and warned) instead of
//!   failing synthesis. Slots behind [`crate::TieredStore::with_back`].
//! * [`ShardedStore`] — routes each [`crate::ReportKey`] to one of N
//!   backends by fingerprint hash, splitting the keyspace across servers
//!   with zero coordination.
//! * [`ReplicatedStore`] — N-way fan-out writes and ordered failover reads
//!   over [`crate::CheckedStore`] backends, with per-replica circuit
//!   breakers (trip after K consecutive failures, deterministic doubling
//!   hold, half-open probes) and read-repair; composes under
//!   [`ShardedStore`] into shards of replica groups.
//! * [`fault`] — the deterministic fault-injection layer: a seeded or
//!   scripted [`FaultPlan`] applied at the wire seam
//!   ([`StoreServer::bind_faulty`]), the server storage seam ([`FaultyKv`])
//!   or the client store seam ([`FaultyStore`]), so every tolerated failure
//!   mode reproduces byte-for-byte in tests.
//!
//! See the crate-level "Remote & sharded stores" and "Fault tolerance &
//! replication" sections for the assembled topology, and
//! `examples/remote_store_demo.rs` / `examples/chaos_demo.rs` for runnable
//! walkthroughs.

pub mod fault;
pub mod wire;

mod client;
mod replica;
mod server;
mod shard;

pub use client::{
    RemoteConfigError, RemoteCounters, RemoteReportStore, RemoteStoreConfig, MAX_RETRIES,
};
pub use fault::{FaultAction, FaultError, FaultPlan, FaultyKv, FaultyStore};
pub use replica::{
    BreakerState, ReplicaConfig, ReplicaCounters, ReplicaError, ReplicaHealth, ReplicatedStore,
};
pub use server::StoreServer;
pub use shard::ShardedStore;
pub use wire::{StoreServerStats, WireError, MAX_ERR_MESSAGE};
