//! Stabilizer and CSS quantum error-correcting codes.
//!
//! This crate provides the code machinery required by the deterministic
//! fault-tolerant state-preparation synthesis:
//!
//! * [`CssCode`] — a Calderbank–Shor–Steane code defined by its X- and Z-type
//!   stabilizer generator matrices, with logical operators, syndromes,
//!   stabilizer-reduced weights and exact (brute-force) distance.
//! * [`catalog`] — the codes evaluated in Table I of the paper (Steane, Shor,
//!   rotated surface, `[[11,1,3]]`, tetrahedral `[[15,1,3]]`, Hamming
//!   `[[15,7,3]]`, carbon-like `[[12,2,4]]`, `[[16,2,4]]` and the tesseract
//!   `[[16,6,4]]`).
//! * [`LookupDecoder`] — a minimum-weight lookup-table decoder used for the
//!   "perfect round of error correction" in the noise simulations.
//! * [`search`] — randomized CSS code search used to regenerate codes whose
//!   published check matrices are not available offline.
//!
//! # Examples
//!
//! ```
//! use dftsp_code::catalog;
//! use dftsp_pauli::PauliKind;
//! use dftsp_f2::BitVec;
//!
//! let steane = catalog::steane();
//! assert_eq!(steane.parameters(), (7, 1, 3));
//! // A weight-one X error has a nonzero syndrome under the Z stabilizers.
//! let error = BitVec::unit(7, 0);
//! assert!(!steane.syndrome(PauliKind::X, &error).is_zero());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
mod css;
mod decoder;
mod distance;
pub mod search;
mod weight;

pub use css::{CodeError, CssCode};
pub use decoder::LookupDecoder;
pub use distance::{css_distance, min_logical_weight};
pub use weight::{reduced_weight, reduced_weight_bounded};
