//! Randomized search for CSS codes with given parameters.
//!
//! Three of the codes evaluated in the paper (`[[11,1,3]]` and `[[16,2,4]]`
//! from Grassl's online table, and the `[[12,2,4]]` carbon code) have
//! published check matrices that are not reproducible offline. This module
//! regenerates codes with the *same parameters* by seeded random search; the
//! frozen results live in [`crate::catalog`]. The synthesis pipeline only
//! consumes `(H_X, H_Z)`, so any code with matching parameters exercises the
//! same algorithms.

use rand::prelude::*;
use rand::rngs::StdRng;

use dftsp_f2::{BitMatrix, BitVec};

use crate::css::CssCode;
use crate::distance::css_distance;

/// Parameters of a CSS code search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchParams {
    /// Number of physical qubits.
    pub n: usize,
    /// Number of logical qubits.
    pub k: usize,
    /// Required minimum distance.
    pub target_distance: usize,
    /// Search only self-dual codes (`H_X = H_Z`); requires `n - k` even.
    pub self_dual: bool,
    /// Maximum Hamming weight of a generator row.
    pub max_row_weight: usize,
    /// Minimum Hamming weight of a generator row.
    pub min_row_weight: usize,
    /// Maximum number of candidate codes to examine.
    pub max_attempts: u64,
}

impl SearchParams {
    /// Convenient constructor with default weight bounds (4 to 8) and a
    /// 200 000-candidate budget.
    pub fn new(n: usize, k: usize, target_distance: usize, self_dual: bool) -> Self {
        SearchParams {
            n,
            k,
            target_distance,
            self_dual,
            max_row_weight: 8,
            min_row_weight: 2,
            max_attempts: 200_000,
        }
    }
}

/// Searches for a CSS code with the requested parameters using the given
/// random seed. Returns `None` if the attempt budget is exhausted.
///
/// The search is deterministic for a fixed seed and parameter set, so found
/// codes can be regenerated exactly.
///
/// # Panics
///
/// Panics if `self_dual` is requested with an odd `n - k`, or if `k >= n`.
///
/// # Examples
///
/// ```
/// use dftsp_code::search::{find_css_code, SearchParams};
///
/// // A small distance-2 detection code is found almost immediately.
/// let params = SearchParams::new(4, 2, 2, true);
/// let code = find_css_code(&params, 1).expect("search succeeds");
/// assert_eq!(code.parameters(), (4, 2, 2));
/// ```
pub fn find_css_code(params: &SearchParams, seed: u64) -> Option<CssCode> {
    assert!(params.k < params.n, "k must be smaller than n");
    if params.self_dual {
        assert!(
            (params.n - params.k).is_multiple_of(2),
            "self-dual search requires an even number of stabilizers"
        );
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for attempt in 0..params.max_attempts {
        let candidate = if params.self_dual {
            sample_self_dual(params, &mut rng).map(|h| (h.clone(), h))
        } else {
            sample_general(params, &mut rng)
        };
        let Some((hx, hz)) = candidate else { continue };
        if css_distance(&hx, &hz) < params.target_distance {
            continue;
        }
        let name = format!(
            "searched-[[{},{},{}]]-seed{}-attempt{}",
            params.n, params.k, params.target_distance, seed, attempt
        );
        if let Ok(code) = CssCode::new(name, hx, hz) {
            if code.distance() >= params.target_distance {
                return Some(code);
            }
        }
    }
    None
}

/// Samples a random vector of length `n` with weight in the allowed range.
fn sample_row(params: &SearchParams, rng: &mut StdRng) -> BitVec {
    let weight = rng.gen_range(params.min_row_weight..=params.max_row_weight.min(params.n));
    let mut indices: Vec<usize> = (0..params.n).collect();
    indices.shuffle(rng);
    BitVec::from_indices(params.n, &indices[..weight])
}

/// Samples a self-orthogonal generator matrix `H` with `(n - k) / 2` rows.
fn sample_self_dual(params: &SearchParams, rng: &mut StdRng) -> Option<BitMatrix> {
    let rows_needed = (params.n - params.k) / 2;
    let mut h = BitMatrix::with_cols(params.n, std::iter::empty());
    let mut tries = 0;
    while h.num_rows() < rows_needed {
        tries += 1;
        if tries > 200 {
            return None;
        }
        let row = sample_row(params, rng);
        // Self-orthogonality over GF(2) requires even weight, and the row must
        // commute with (be orthogonal to) every previously chosen row.
        if !row.weight().is_multiple_of(2) {
            continue;
        }
        if h.iter().any(|r| r.dot(&row)) {
            continue;
        }
        let mut test = h.clone();
        test.push_row(row);
        if test.rank() == test.num_rows() {
            h = test;
        }
    }
    Some(h)
}

/// Samples a general `(H_X, H_Z)` pair with `⌈(n-k)/2⌉` X rows and the
/// remaining Z rows drawn from the orthogonal complement of `H_X`.
fn sample_general(params: &SearchParams, rng: &mut StdRng) -> Option<(BitMatrix, BitMatrix)> {
    let total = params.n - params.k;
    let rx = total.div_ceil(2);
    let rz = total - rx;
    // Sample a full-rank H_X.
    let mut hx = BitMatrix::with_cols(params.n, std::iter::empty());
    let mut tries = 0;
    while hx.num_rows() < rx {
        tries += 1;
        if tries > 200 {
            return None;
        }
        let row = sample_row(params, rng);
        let mut test = hx.clone();
        test.push_row(row);
        if test.rank() == test.num_rows() {
            hx = test;
        }
    }
    // H_Z rows live in the orthogonal complement of H_X.
    let complement = hx.nullspace();
    if complement.num_rows() < rz {
        return None;
    }
    let mut hz = BitMatrix::with_cols(params.n, std::iter::empty());
    tries = 0;
    while hz.num_rows() < rz {
        tries += 1;
        if tries > 400 {
            return None;
        }
        // Random combination of complement basis vectors.
        let selector = BitVec::from_bools(
            &(0..complement.num_rows())
                .map(|_| rng.gen_bool(0.5))
                .collect::<Vec<_>>(),
        );
        let row = complement.combine_rows(&selector);
        let w = row.weight();
        if w < params.min_row_weight || w > params.max_row_weight {
            continue;
        }
        let mut test = hz.clone();
        test.push_row(row);
        if test.rank() == test.num_rows() {
            hz = test;
        }
    }
    Some((hx, hz))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_small_detection_code() {
        let params = SearchParams::new(4, 2, 2, true);
        let code = find_css_code(&params, 3).expect("search should succeed");
        assert_eq!(code.parameters(), (4, 2, 2));
    }

    #[test]
    fn finds_distance_three_code() {
        let mut params = SearchParams::new(9, 1, 3, false);
        params.max_attempts = 50_000;
        let code = find_css_code(&params, 11).expect("search should succeed");
        let (n, k, d) = code.parameters();
        assert_eq!((n, k), (9, 1));
        assert!(d >= 3);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let params = SearchParams::new(4, 2, 2, true);
        let a = find_css_code(&params, 5).expect("found");
        let b = find_css_code(&params, 5).expect("found");
        assert_eq!(
            a.stabilizers(dftsp_pauli::PauliKind::X),
            b.stabilizers(dftsp_pauli::PauliKind::X)
        );
    }

    #[test]
    fn impossible_parameters_return_none() {
        // Distance 5 on 5 qubits with 1 logical qubit does not exist.
        let mut params = SearchParams::new(5, 1, 5, true);
        params.max_attempts = 2_000;
        assert!(find_css_code(&params, 0).is_none());
    }

    #[test]
    #[should_panic(expected = "even number of stabilizers")]
    fn self_dual_requires_even_stabilizer_count() {
        let params = SearchParams::new(6, 1, 2, true);
        let _ = find_css_code(&params, 0);
    }
}
