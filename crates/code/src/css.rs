//! CSS code definition, validation and basic queries.

use std::fmt;

use dftsp_f2::{BitMatrix, BitVec};
use dftsp_pauli::{PauliKind, PauliString};

use crate::distance::css_distance;
use crate::weight::reduced_weight;

/// Error produced when constructing an invalid [`CssCode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// The X- and Z-type generator matrices have different column counts.
    MismatchedQubitCounts {
        /// Columns of the X-type matrix.
        x_cols: usize,
        /// Columns of the Z-type matrix.
        z_cols: usize,
    },
    /// Some X-type generator anticommutes with some Z-type generator.
    NonCommutingStabilizers {
        /// Index of the offending X-type row.
        x_row: usize,
        /// Index of the offending Z-type row.
        z_row: usize,
    },
    /// The generators are linearly dependent (rank deficient).
    RedundantGenerators,
    /// The code encodes no logical qubits.
    NoLogicalQubits,
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::MismatchedQubitCounts { x_cols, z_cols } => write!(
                f,
                "X and Z generators act on different qubit counts ({x_cols} vs {z_cols})"
            ),
            CodeError::NonCommutingStabilizers { x_row, z_row } => write!(
                f,
                "X generator {x_row} anticommutes with Z generator {z_row}"
            ),
            CodeError::RedundantGenerators => {
                write!(f, "stabilizer generators are linearly dependent")
            }
            CodeError::NoLogicalQubits => write!(f, "code encodes no logical qubits"),
        }
    }
}

impl std::error::Error for CodeError {}

/// A Calderbank–Shor–Steane (CSS) stabilizer code.
///
/// The code is defined by two generator matrices: the rows of `hx` are the
/// supports of the X-type stabilizer generators and the rows of `hz` those of
/// the Z-type generators. The CSS condition requires every X generator to
/// commute with every Z generator, i.e. `H_X · H_Zᵀ = 0` over GF(2).
///
/// On construction the code computes representatives of the logical X and Z
/// operators and its exact distance (by exhaustive enumeration — the codes of
/// interest have at most 16 qubits).
///
/// # Examples
///
/// ```
/// use dftsp_code::CssCode;
/// use dftsp_f2::BitMatrix;
///
/// // The Steane code: H_X = H_Z = parity-check matrix of the [7,4,3] Hamming code.
/// let h = BitMatrix::from_dense(&[
///     &[1, 0, 1, 0, 1, 0, 1][..],
///     &[0, 1, 1, 0, 0, 1, 1][..],
///     &[0, 0, 0, 1, 1, 1, 1][..],
/// ]);
/// let code = CssCode::new("Steane", h.clone(), h)?;
/// assert_eq!(code.parameters(), (7, 1, 3));
/// # Ok::<(), dftsp_code::CodeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CssCode {
    name: String,
    hx: BitMatrix,
    hz: BitMatrix,
    logical_x: BitMatrix,
    logical_z: BitMatrix,
    distance: usize,
}

impl CssCode {
    /// Constructs and validates a CSS code from its generator matrices.
    ///
    /// # Errors
    ///
    /// Returns a [`CodeError`] if the matrices act on different qubit counts,
    /// contain anticommuting generators, are rank deficient, or leave no
    /// logical qubits.
    pub fn new(
        name: impl Into<String>,
        hx: BitMatrix,
        hz: BitMatrix,
    ) -> Result<CssCode, CodeError> {
        let name = name.into();
        if hx.num_cols() != hz.num_cols() {
            return Err(CodeError::MismatchedQubitCounts {
                x_cols: hx.num_cols(),
                z_cols: hz.num_cols(),
            });
        }
        let n = hx.num_cols();
        for (i, x_row) in hx.iter().enumerate() {
            for (j, z_row) in hz.iter().enumerate() {
                if x_row.dot(z_row) {
                    return Err(CodeError::NonCommutingStabilizers { x_row: i, z_row: j });
                }
            }
        }
        if hx.rank() != hx.num_rows() || hz.rank() != hz.num_rows() {
            return Err(CodeError::RedundantGenerators);
        }
        if hx.num_rows() + hz.num_rows() >= n {
            return Err(CodeError::NoLogicalQubits);
        }

        let logical_x = compute_logicals(&hz, &hx);
        let logical_z = compute_logicals(&hx, &hz);
        let distance = css_distance(&hx, &hz);

        Ok(CssCode {
            name,
            hx,
            hz,
            logical_x,
            logical_z,
            distance,
        })
    }

    /// Returns the human-readable name of the code.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the number of physical qubits `n`.
    pub fn num_qubits(&self) -> usize {
        self.hx.num_cols()
    }

    /// Returns the number of logical qubits `k`.
    pub fn num_logical(&self) -> usize {
        self.num_qubits() - self.hx.num_rows() - self.hz.num_rows()
    }

    /// Returns the code distance `d`.
    pub fn distance(&self) -> usize {
        self.distance
    }

    /// Returns the `[[n, k, d]]` parameter triple.
    pub fn parameters(&self) -> (usize, usize, usize) {
        (self.num_qubits(), self.num_logical(), self.distance())
    }

    /// Returns the stabilizer generator matrix of the given kind
    /// (`PauliKind::X` → X-type generators).
    pub fn stabilizers(&self, kind: PauliKind) -> &BitMatrix {
        match kind {
            PauliKind::X => &self.hx,
            PauliKind::Z => &self.hz,
        }
    }

    /// Returns representatives of the logical operators of the given kind.
    ///
    /// The matrix has [`CssCode::num_logical`] rows. The representatives are
    /// not weight-minimized; use [`crate::min_logical_weight`] for the
    /// distance-realizing weight.
    pub fn logicals(&self, kind: PauliKind) -> &BitMatrix {
        match kind {
            PauliKind::X => &self.logical_x,
            PauliKind::Z => &self.logical_z,
        }
    }

    /// Returns the stabilizer generators of `kind` as Pauli operators.
    pub fn stabilizer_paulis(&self, kind: PauliKind) -> Vec<PauliString> {
        self.stabilizers(kind)
            .iter()
            .map(|row| PauliString::from_kind(kind, row.clone()))
            .collect()
    }

    /// Computes the syndrome of an error of the given kind.
    ///
    /// An X-type error is detected by the Z-type stabilizers (and vice
    /// versa), so the returned vector has one bit per generator of the *dual*
    /// kind.
    ///
    /// # Panics
    ///
    /// Panics if `error.len() != num_qubits()`.
    pub fn syndrome(&self, error_kind: PauliKind, error: &BitVec) -> BitVec {
        self.stabilizers(error_kind.dual()).mul_vec(error)
    }

    /// Returns `true` if `v` is an element of the stabilizer group of the
    /// given kind (i.e. lies in the row space of the corresponding generator
    /// matrix).
    pub fn is_stabilizer(&self, kind: PauliKind, v: &BitVec) -> bool {
        self.stabilizers(kind).in_row_space(v)
    }

    /// Returns the stabilizer-reduced weight `wt_S` of an error of the given
    /// kind: the minimum Hamming weight over the stabilizer coset
    /// `{v + s : s ∈ ⟨H_kind⟩}`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != num_qubits()`.
    pub fn reduced_weight(&self, kind: PauliKind, v: &BitVec) -> usize {
        reduced_weight(self.stabilizers(kind), v)
    }

    /// Returns `true` if a residual error of the given kind acts
    /// non-trivially on the logical subspace, i.e. anticommutes with at least
    /// one logical operator of the dual kind.
    ///
    /// For residuals with zero syndrome this is exactly the logical-error
    /// condition used in the paper's simulations ("the resulting classical
    /// bitstring anticommutes with any of the logical operators").
    pub fn is_logical_error(&self, error_kind: PauliKind, residual: &BitVec) -> bool {
        self.logicals(error_kind.dual())
            .iter()
            .any(|l| l.dot(residual))
    }

    /// Returns every element of the stabilizer group of the given kind
    /// (including the identity).
    ///
    /// # Panics
    ///
    /// Panics if the group has 2³⁰ or more elements.
    pub fn stabilizer_group(&self, kind: PauliKind) -> Vec<BitVec> {
        self.stabilizers(kind).iter_span().collect()
    }
}

impl fmt::Display for CssCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (n, k, d) = self.parameters();
        write!(f, "{} [[{n},{k},{d}]]", self.name)
    }
}

/// Computes representatives of the logical operators that commute with all
/// generators in `commute_with` and are independent of the stabilizers in
/// `modulo`.
///
/// For logical X operators: `commute_with = H_Z`, `modulo = H_X`.
fn compute_logicals(commute_with: &BitMatrix, modulo: &BitMatrix) -> BitMatrix {
    let kernel = commute_with.nullspace();
    let n = commute_with.num_cols();
    let mut chosen = BitMatrix::with_cols(n, std::iter::empty());
    let mut span = modulo.clone();
    for candidate in kernel.iter() {
        let mut test = span.clone();
        test.push_row(candidate.clone());
        if test.rank() > span.rank() {
            chosen.push_row(candidate.clone());
            span = test;
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftsp_f2::BitMatrix;

    fn steane_h() -> BitMatrix {
        BitMatrix::from_dense(&[
            &[1, 0, 1, 0, 1, 0, 1][..],
            &[0, 1, 1, 0, 0, 1, 1][..],
            &[0, 0, 0, 1, 1, 1, 1][..],
        ])
    }

    fn steane() -> CssCode {
        CssCode::new("Steane", steane_h(), steane_h()).unwrap()
    }

    #[test]
    fn steane_parameters() {
        let code = steane();
        assert_eq!(code.parameters(), (7, 1, 3));
        assert_eq!(code.num_qubits(), 7);
        assert_eq!(code.num_logical(), 1);
        assert_eq!(code.distance(), 3);
        assert_eq!(code.to_string(), "Steane [[7,1,3]]");
    }

    #[test]
    fn logical_operators_commute_with_stabilizers() {
        let code = steane();
        for kind in PauliKind::BOTH {
            let logicals = code.logicals(kind);
            assert_eq!(logicals.num_rows(), 1);
            for l in logicals.iter() {
                for s in code.stabilizers(kind.dual()).iter() {
                    assert!(!l.dot(s), "logical must commute with dual stabilizers");
                }
                assert!(
                    !code.is_stabilizer(kind, l),
                    "logical must not be a stabilizer"
                );
            }
        }
    }

    #[test]
    fn logical_x_and_z_anticommute() {
        let code = steane();
        let lx = code.logicals(PauliKind::X).row(0);
        let lz = code.logicals(PauliKind::Z).row(0);
        assert!(lx.dot(lz), "logical X and Z of the same qubit anticommute");
    }

    #[test]
    fn syndrome_of_single_qubit_errors_is_nonzero() {
        let code = steane();
        for q in 0..7 {
            let e = BitVec::unit(7, q);
            assert!(!code.syndrome(PauliKind::X, &e).is_zero());
            assert!(!code.syndrome(PauliKind::Z, &e).is_zero());
        }
    }

    #[test]
    fn stabilizers_have_zero_syndrome_and_weight() {
        let code = steane();
        for kind in PauliKind::BOTH {
            for s in code.stabilizers(kind).iter() {
                assert!(code.syndrome(kind, s).is_zero());
                assert!(code.is_stabilizer(kind, s));
                assert_eq!(code.reduced_weight(kind, s), 0);
                assert!(!code.is_logical_error(kind, s));
            }
        }
    }

    #[test]
    fn logical_operator_is_logical_error() {
        let code = steane();
        let lx = code.logicals(PauliKind::X).row(0);
        assert!(code.is_logical_error(PauliKind::X, lx));
        assert!(code.syndrome(PauliKind::X, lx).is_zero());
    }

    #[test]
    fn reduced_weight_of_weight_one_error() {
        let code = steane();
        let e = BitVec::unit(7, 3);
        assert_eq!(code.reduced_weight(PauliKind::X, &e), 1);
    }

    #[test]
    fn mismatched_qubit_counts_error() {
        let hx = BitMatrix::from_dense(&[&[1, 1, 0][..]]);
        let hz = BitMatrix::from_dense(&[&[1, 1, 0, 0][..]]);
        assert!(matches!(
            CssCode::new("bad", hx, hz),
            Err(CodeError::MismatchedQubitCounts { .. })
        ));
    }

    #[test]
    fn anticommuting_generators_error() {
        let hx = BitMatrix::from_dense(&[&[1, 1, 0, 0][..]]);
        let hz = BitMatrix::from_dense(&[&[1, 0, 0, 0][..]]);
        let err = CssCode::new("bad", hx, hz).unwrap_err();
        assert!(matches!(err, CodeError::NonCommutingStabilizers { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn redundant_generators_error() {
        let hx = BitMatrix::from_dense(&[&[1, 1, 0, 0, 0, 0][..], &[1, 1, 0, 0, 0, 0][..]]);
        let hz = BitMatrix::from_dense(&[&[0, 0, 1, 1, 0, 0][..]]);
        assert!(matches!(
            CssCode::new("bad", hx, hz),
            Err(CodeError::RedundantGenerators)
        ));
    }

    #[test]
    fn no_logical_qubits_error() {
        // [[2,0,..]]: two qubits fully constrained.
        let hx = BitMatrix::from_dense(&[&[1, 1][..]]);
        let hz = BitMatrix::from_dense(&[&[1, 1][..]]);
        assert!(matches!(
            CssCode::new("bad", hx, hz),
            Err(CodeError::NoLogicalQubits)
        ));
    }

    #[test]
    fn stabilizer_group_enumeration() {
        let code = steane();
        let group = code.stabilizer_group(PauliKind::X);
        assert_eq!(group.len(), 8);
        for g in &group {
            assert!(code.is_stabilizer(PauliKind::X, g));
        }
    }

    #[test]
    fn stabilizer_paulis_have_right_type() {
        let code = steane();
        for p in code.stabilizer_paulis(PauliKind::Z) {
            assert!(p.is_z_type());
            assert_eq!(p.weight(), 4);
        }
    }
}
