//! Minimum-weight lookup-table decoding.

use dftsp_f2::BitVec;
use dftsp_pauli::PauliKind;

use crate::CssCode;

/// A minimum-weight lookup-table decoder for one error sector of a CSS code.
///
/// The paper's simulations follow the state-preparation protocol with "a
/// perfect round of error correction using lookup table decoding". This
/// decoder reproduces that step: it maps every syndrome to a minimum-weight
/// error producing it, computed once by exhaustive enumeration (the catalog
/// codes have at most 16 qubits).
///
/// # Examples
///
/// ```
/// use dftsp_code::{catalog, LookupDecoder};
/// use dftsp_pauli::PauliKind;
/// use dftsp_f2::BitVec;
///
/// let code = catalog::steane();
/// let decoder = LookupDecoder::new(&code, PauliKind::X);
/// // A single X error is decoded exactly.
/// let error = BitVec::unit(7, 2);
/// let syndrome = code.syndrome(PauliKind::X, &error);
/// assert_eq!(decoder.decode(&syndrome), &error);
/// ```
#[derive(Debug, Clone)]
pub struct LookupDecoder {
    error_kind: PauliKind,
    num_checks: usize,
    table: Vec<BitVec>,
}

impl LookupDecoder {
    /// Builds the decoder for errors of `error_kind` on `code`.
    ///
    /// # Panics
    ///
    /// Panics if the code has more than 24 qubits (the exhaustive table
    /// construction would be too large).
    pub fn new(code: &CssCode, error_kind: PauliKind) -> Self {
        let n = code.num_qubits();
        assert!(
            n <= 24,
            "lookup decoding is limited to small codes (n ≤ 24)"
        );
        let checks = code.stabilizers(error_kind.dual());
        let num_checks = checks.num_rows();
        let mut table: Vec<Option<BitVec>> = vec![None; 1 << num_checks];
        let mut filled = 0usize;

        // Enumerate error patterns in order of increasing weight so that the
        // first pattern reaching a syndrome is a minimum-weight
        // representative.
        let mut patterns: Vec<u32> = (0..(1u32 << n)).collect();
        patterns.sort_by_key(|m| m.count_ones());
        for mask in patterns {
            if filled == table.len() {
                break;
            }
            let error = mask_to_vec(mask, n);
            let syndrome = checks.mul_vec(&error);
            let idx = vec_to_index(&syndrome);
            if table[idx].is_none() {
                table[idx] = Some(error);
                filled += 1;
            }
        }
        let table = table
            .into_iter()
            .map(|e| e.expect("full-rank checks make every syndrome reachable"))
            .collect();
        LookupDecoder {
            error_kind,
            num_checks,
            table,
        }
    }

    /// Returns the error sector this decoder corrects.
    pub fn error_kind(&self) -> PauliKind {
        self.error_kind
    }

    /// Returns the minimum-weight correction for the given syndrome.
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length does not match the number of checks.
    pub fn decode(&self, syndrome: &BitVec) -> &BitVec {
        assert_eq!(
            syndrome.len(),
            self.num_checks,
            "syndrome length must match the number of dual-sector generators"
        );
        &self.table[vec_to_index(syndrome)]
    }

    /// Number of syndrome bits the decoder expects.
    pub fn num_checks(&self) -> usize {
        self.num_checks
    }
}

fn mask_to_vec(mask: u32, n: usize) -> BitVec {
    let mut v = BitVec::zeros(n);
    for i in 0..n {
        if (mask >> i) & 1 == 1 {
            v.set(i, true);
        }
    }
    v
}

fn vec_to_index(v: &BitVec) -> usize {
    v.iter_ones().fold(0usize, |acc, i| acc | (1 << i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn steane_single_errors_are_corrected_exactly() {
        let code = catalog::steane();
        for kind in PauliKind::BOTH {
            let decoder = LookupDecoder::new(&code, kind);
            assert_eq!(decoder.num_checks(), 3);
            assert_eq!(decoder.error_kind(), kind);
            for q in 0..7 {
                let e = BitVec::unit(7, q);
                let syndrome = code.syndrome(kind, &e);
                assert_eq!(decoder.decode(&syndrome), &e);
            }
        }
    }

    #[test]
    fn zero_syndrome_decodes_to_identity() {
        let code = catalog::steane();
        let decoder = LookupDecoder::new(&code, PauliKind::X);
        assert!(decoder.decode(&BitVec::zeros(3)).is_zero());
    }

    #[test]
    fn corrections_restore_the_codespace() {
        let code = catalog::steane();
        let decoder = LookupDecoder::new(&code, PauliKind::X);
        // For any two-qubit error the corrected residual has zero syndrome
        // (though it may be a logical error).
        for a in 0..7 {
            for b in (a + 1)..7 {
                let e = BitVec::from_indices(7, &[a, b]);
                let syndrome = code.syndrome(PauliKind::X, &e);
                let correction = decoder.decode(&syndrome).clone();
                let residual = &e ^ &correction;
                assert!(code.syndrome(PauliKind::X, &residual).is_zero());
            }
        }
    }

    #[test]
    fn decoded_corrections_are_minimum_weight() {
        let code = catalog::steane();
        let decoder = LookupDecoder::new(&code, PauliKind::Z);
        // Every correction in the table has weight at most the weight of any
        // other error with the same syndrome; single-qubit errors suffice to
        // cover all nonzero syndromes for the Steane code (perfect code).
        for q in 0..7 {
            let e = BitVec::unit(7, q);
            let syndrome = code.syndrome(PauliKind::Z, &e);
            assert_eq!(decoder.decode(&syndrome).weight(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "syndrome length")]
    fn wrong_syndrome_length_panics() {
        let code = catalog::steane();
        let decoder = LookupDecoder::new(&code, PauliKind::X);
        decoder.decode(&BitVec::zeros(5));
    }
}
