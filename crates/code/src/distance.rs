//! Exact code-distance computation for small CSS codes.

use dftsp_f2::BitMatrix;

/// Computes the minimum weight of a logical operator of one sector.
///
/// `commute_with` is the generator matrix of the *dual* sector (the operators
/// a logical of this sector must commute with) and `modulo` the generator
/// matrix of the *same* sector (the stabilizers the logical is defined
/// modulo). For the logical-X weight of a CSS code call
/// `min_logical_weight(&hz, &hx)`.
///
/// Returns `None` if the code has no logical operators of this sector.
///
/// # Panics
///
/// Panics if the kernel of `commute_with` has dimension ≥ 26 (exhaustive
/// enumeration would be too large); the near-term codes targeted by the paper
/// are far below this bound.
pub fn min_logical_weight(commute_with: &BitMatrix, modulo: &BitMatrix) -> Option<usize> {
    let kernel = commute_with.nullspace();
    let dim = kernel.num_rows();
    assert!(
        dim < 26,
        "kernel dimension {dim} too large for exhaustive distance computation"
    );
    let mut best: Option<usize> = None;
    for v in kernel.iter_span() {
        if v.is_zero() || modulo.in_row_space(&v) {
            continue;
        }
        let w = v.weight();
        best = Some(best.map_or(w, |b| b.min(w)));
    }
    best
}

/// Computes the distance of the CSS code with generator matrices `hx`, `hz`:
/// the minimum of the minimal logical-X and logical-Z weights.
///
/// Returns 0 if the code has no logical qubits.
pub fn css_distance(hx: &BitMatrix, hz: &BitMatrix) -> usize {
    let dx = min_logical_weight(hz, hx);
    let dz = min_logical_weight(hx, hz);
    match (dx, dz) {
        (Some(a), Some(b)) => a.min(b),
        (Some(a), None) => a,
        (None, Some(b)) => b,
        (None, None) => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steane_h() -> BitMatrix {
        BitMatrix::from_dense(&[
            &[1, 0, 1, 0, 1, 0, 1][..],
            &[0, 1, 1, 0, 0, 1, 1][..],
            &[0, 0, 0, 1, 1, 1, 1][..],
        ])
    }

    #[test]
    fn steane_distance_is_three() {
        let h = steane_h();
        assert_eq!(css_distance(&h, &h), 3);
        assert_eq!(min_logical_weight(&h, &h), Some(3));
    }

    #[test]
    fn shor_code_distances_are_asymmetric() {
        // Shor code: Z stabilizers are weight-2 pairs, X stabilizers weight-6.
        let hz = BitMatrix::from_dense(&[
            &[1, 1, 0, 0, 0, 0, 0, 0, 0][..],
            &[0, 1, 1, 0, 0, 0, 0, 0, 0][..],
            &[0, 0, 0, 1, 1, 0, 0, 0, 0][..],
            &[0, 0, 0, 0, 1, 1, 0, 0, 0][..],
            &[0, 0, 0, 0, 0, 0, 1, 1, 0][..],
            &[0, 0, 0, 0, 0, 0, 0, 1, 1][..],
        ]);
        let hx = BitMatrix::from_dense(&[
            &[1, 1, 1, 1, 1, 1, 0, 0, 0][..],
            &[0, 0, 0, 1, 1, 1, 1, 1, 1][..],
        ]);
        // Logical X has weight 3 (X on one qubit of each block), logical Z has
        // weight 3 (Z Z Z within... actually Z1Z4Z7), overall distance 3.
        assert_eq!(css_distance(&hx, &hz), 3);
        // X-type logicals must commute with Z stabilizers: minimum weight 3.
        assert_eq!(min_logical_weight(&hz, &hx), Some(3));
        // Z-type logicals: also 3.
        assert_eq!(min_logical_weight(&hx, &hz), Some(3));
    }

    #[test]
    fn repetition_code_distance() {
        // Three-qubit repetition code protects only against X errors:
        // H_Z = {ZZI, IZZ}, no X stabilizers.
        let hz = BitMatrix::from_dense(&[&[1, 1, 0][..], &[0, 1, 1][..]]);
        let hx = BitMatrix::with_cols(3, std::iter::empty());
        // Logical X = XXX (weight 3), logical Z = ZII (weight 1).
        assert_eq!(min_logical_weight(&hz, &hx), Some(3));
        assert_eq!(min_logical_weight(&hx, &hz), Some(1));
        assert_eq!(css_distance(&hx, &hz), 1);
    }

    #[test]
    fn code_without_logicals() {
        // Two qubits fully constrained by XX and ZZ: no logical operators.
        let hx = BitMatrix::from_dense(&[&[1, 1][..]]);
        let hz = BitMatrix::from_dense(&[&[1, 1][..]]);
        assert_eq!(min_logical_weight(&hz, &hx), None);
        assert_eq!(css_distance(&hx, &hz), 0);
    }
}
