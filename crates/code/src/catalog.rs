//! The CSS codes evaluated in the paper (Table I).
//!
//! | Code | Parameters | Construction here |
//! |---|---|---|
//! | Steane | `[[7,1,3]]` | self-dual, Hamming-`[7,4,3]` check matrix |
//! | Shor | `[[9,1,3]]` | weight-2 Z pairs, weight-6 X blocks |
//! | Surface | `[[9,1,3]]` | rotated distance-3 surface code |
//! | `[[11,1,3]]` | `[[11,1,3]]` | seeded random search (substitution, see DESIGN.md) |
//! | Tetrahedral | `[[15,1,3]]` | punctured quantum Reed–Muller code |
//! | Hamming | `[[15,7,3]]` | self-dual, Hamming-`[15,11,3]` check matrix |
//! | Carbon | `[[12,2,4]]` | seeded random search (substitution) |
//! | `[[16,2,4]]` | `[[16,2,4]]` | seeded random search (substitution) |
//! | Tesseract | `[[16,6,4]]` | self-dual, Reed–Muller RM(1,4) generator matrix |
//!
//! The searched codes replace check matrices that are only available from
//! online tables (Grassl) or hardware papers (Quantinuum carbon code); they
//! have identical `[[n,k,d]]` parameters and comparable stabilizer weights,
//! so the synthesis pipeline is exercised in the same way. The matrices were
//! generated once with `cargo run -p dftsp-code --bin search_codes` and are
//! frozen below; a test asserts their parameters.
//!
//! Beyond Table I, [`workloads`] lists the workload extensions served by the
//! generalized order-t fault-tolerance criterion: two distance-5 codes
//! (`QR-17`, the `[[17,1,5]]` quadratic-residue code, and `Surface-5`, the
//! rotated `[[25,1,5]]` surface code) and the cat-state preparation targets
//! (`Cat-4`, `Cat-8`, built by [`cat_state`]). [`extended`] concatenates
//! both lists and backs the case-insensitive [`by_name`] lookup.

use dftsp_f2::{BitMatrix, BitVec};

use crate::CssCode;

/// Returns the Steane `[[7,1,3]]` code.
pub fn steane() -> CssCode {
    let h = BitMatrix::from_dense(&[
        &[1, 0, 1, 0, 1, 0, 1][..],
        &[0, 1, 1, 0, 0, 1, 1][..],
        &[0, 0, 0, 1, 1, 1, 1][..],
    ]);
    CssCode::new("Steane", h.clone(), h).expect("Steane code is valid")
}

/// Returns the Shor `[[9,1,3]]` code.
pub fn shor() -> CssCode {
    let hx = BitMatrix::from_dense(&[
        &[1, 1, 1, 1, 1, 1, 0, 0, 0][..],
        &[0, 0, 0, 1, 1, 1, 1, 1, 1][..],
    ]);
    let hz = BitMatrix::from_dense(&[
        &[1, 1, 0, 0, 0, 0, 0, 0, 0][..],
        &[0, 1, 1, 0, 0, 0, 0, 0, 0][..],
        &[0, 0, 0, 1, 1, 0, 0, 0, 0][..],
        &[0, 0, 0, 0, 1, 1, 0, 0, 0][..],
        &[0, 0, 0, 0, 0, 0, 1, 1, 0][..],
        &[0, 0, 0, 0, 0, 0, 0, 1, 1][..],
    ]);
    CssCode::new("Shor", hx, hz).expect("Shor code is valid")
}

/// Returns the rotated distance-3 surface code `[[9,1,3]]`.
///
/// Qubits are laid out on a 3×3 grid (row-major). Bulk stabilizers are
/// weight-4 plaquettes, boundary stabilizers weight-2.
pub fn surface3() -> CssCode {
    let hx = BitMatrix::from_dense(&[
        &[1, 1, 0, 1, 1, 0, 0, 0, 0][..], // plaquette {0,1,3,4}
        &[0, 0, 0, 0, 1, 1, 0, 1, 1][..], // plaquette {4,5,7,8}
        &[0, 0, 1, 0, 0, 1, 0, 0, 0][..], // boundary {2,5}
        &[0, 0, 0, 1, 0, 0, 1, 0, 0][..], // boundary {3,6}
    ]);
    let hz = BitMatrix::from_dense(&[
        &[0, 1, 1, 0, 1, 1, 0, 0, 0][..], // plaquette {1,2,4,5}
        &[0, 0, 0, 1, 1, 0, 1, 1, 0][..], // plaquette {3,4,6,7}
        &[1, 1, 0, 0, 0, 0, 0, 0, 0][..], // boundary {0,1}
        &[0, 0, 0, 0, 0, 0, 0, 1, 1][..], // boundary {7,8}
    ]);
    CssCode::new("Surface-3", hx, hz).expect("surface code is valid")
}

/// Returns the tetrahedral (punctured quantum Reed–Muller) `[[15,1,3]]` code.
///
/// Qubit `q` (0-based) is identified with the nonzero vector `q + 1 ∈ F₂⁴`.
/// The four X stabilizers are the weight-8 coordinate indicators; the ten Z
/// stabilizers are weight-4 degree-two monomial supports.
pub fn tetrahedral() -> CssCode {
    let n = 15;
    let point = |q: usize| -> [bool; 4] {
        let v = q + 1;
        [v & 1 != 0, v & 2 != 0, v & 4 != 0, v & 8 != 0]
    };
    let indicator = |pred: &dyn Fn(&[bool; 4]) -> bool| -> BitVec {
        BitVec::from_bools(&(0..n).map(|q| pred(&point(q))).collect::<Vec<_>>())
    };
    let hx = BitMatrix::from_rows((0..4).map(|i| indicator(&|p| p[i])));
    let mut z_rows = Vec::new();
    // All six products x_i x_j.
    for i in 0..4 {
        for j in (i + 1)..4 {
            z_rows.push(indicator(&|p| p[i] && p[j]));
        }
    }
    // Four weight-4 generators of the form x_i (1 + x_j) completing the rank.
    for (i, j) in [(0, 1), (1, 0), (2, 3), (3, 2)] {
        z_rows.push(indicator(&|p| p[i] && !p[j]));
    }
    let hz = BitMatrix::from_rows(z_rows);
    CssCode::new("Tetrahedral", hx, hz).expect("tetrahedral code is valid")
}

/// Returns the self-dual Hamming `[[15,7,3]]` code.
pub fn hamming_15_7() -> CssCode {
    let h = BitMatrix::from_rows((0..4).map(|bit| {
        BitVec::from_bools(&(1..=15u32).map(|c| (c >> bit) & 1 == 1).collect::<Vec<_>>())
    }));
    CssCode::new("Hamming", h.clone(), h).expect("Hamming code is valid")
}

/// Returns the tesseract `[[16,6,4]]` code (self-dual Reed–Muller RM(1,4)).
pub fn tesseract() -> CssCode {
    let n = 16;
    let mut rows = vec![BitVec::ones(n)];
    for bit in 0..4 {
        rows.push(BitVec::from_bools(
            &(0..n as u32)
                .map(|c| (c >> bit) & 1 == 1)
                .collect::<Vec<_>>(),
        ));
    }
    let h = BitMatrix::from_rows(rows);
    CssCode::new("Tesseract", h.clone(), h).expect("tesseract code is valid")
}

/// Returns a searched `[[11,1,3]]` CSS code (substitute for Grassl's table entry).
///
/// Generated with `search_codes 11 1 3 --seed 1 --max-weight 6` (see
/// DESIGN.md, substitution 3) and frozen here.
pub fn code_11_1_3() -> CssCode {
    let hx = BitMatrix::from_dense(&[
        &[1, 1, 1, 0, 1, 0, 0, 0, 0, 1, 0][..],
        &[0, 0, 0, 1, 0, 0, 0, 1, 1, 1, 0][..],
        &[0, 1, 0, 1, 1, 0, 1, 1, 0, 0, 1][..],
        &[0, 1, 1, 0, 0, 1, 1, 1, 1, 0, 0][..],
        &[1, 0, 1, 0, 1, 1, 0, 0, 1, 0, 1][..],
    ]);
    let hz = BitMatrix::from_dense(&[
        &[0, 0, 0, 0, 1, 1, 0, 1, 0, 1, 0][..],
        &[0, 1, 1, 0, 0, 1, 1, 0, 0, 0, 0][..],
        &[0, 1, 0, 0, 1, 0, 1, 0, 0, 0, 1][..],
        &[1, 0, 0, 1, 1, 0, 1, 0, 1, 0, 1][..],
        &[0, 0, 0, 0, 0, 1, 1, 1, 1, 0, 0][..],
    ]);
    CssCode::new("[[11,1,3]]", hx, hz).expect("searched [[11,1,3]] code is valid")
}

/// Returns a `[[12,2,4]]` CSS code substituting for the carbon code of
/// Ref. \[19\].
///
/// The published check matrix of the Quantinuum carbon code is not available
/// offline, so this catalog entry uses a code with the same parameters built
/// by concatenation in the spirit of Knill's C4/C6 architecture: three
/// `[[4,2,2]]` inner blocks whose six logical qubits are protected by a
/// `[[6,2,2]]` outer CSS code chosen such that every weight-two physical
/// error that acts as an inner logical is detected by an outer stabilizer,
/// which yields distance 4 (verified exactly at construction time).
pub fn carbon() -> CssCode {
    let n = 12;
    // Inner [[4,2,2]] blocks: stabilizers X⊗4 / Z⊗4, logical operators
    // X̄₁ = X₀X₁, X̄₂ = X₀X₂, Z̄₁ = Z₀Z₂, Z̄₂ = Z₀Z₁ (within each block).
    let block = |j: usize, local: &[usize]| -> BitVec {
        BitVec::from_indices(n, &local.iter().map(|q| 4 * j + q).collect::<Vec<_>>())
    };
    let logical_x = |outer_qubit: usize| -> BitVec {
        let (j, l) = (outer_qubit / 2, outer_qubit % 2);
        block(j, if l == 0 { &[0, 1] } else { &[0, 2] })
    };
    let logical_z = |outer_qubit: usize| -> BitVec {
        let (j, l) = (outer_qubit / 2, outer_qubit % 2);
        block(j, if l == 0 { &[0, 2] } else { &[0, 1] })
    };
    // Outer [[6,2,2]] code: S_X = S_Z = {(0,2,3,4), (1,2,4,5)} on the six
    // inner logical qubits; every single logical qubit and every inner-block
    // pair has odd overlap with some generator.
    let outer_generators: [&[usize]; 2] = [&[0, 2, 3, 4], &[1, 2, 4, 5]];
    let mut hx_rows = Vec::new();
    let mut hz_rows = Vec::new();
    for j in 0..3 {
        hx_rows.push(block(j, &[0, 1, 2, 3]));
        hz_rows.push(block(j, &[0, 1, 2, 3]));
    }
    for generator in outer_generators {
        let mut x_row = BitVec::zeros(n);
        let mut z_row = BitVec::zeros(n);
        for &outer_qubit in generator {
            x_row.xor_with(&logical_x(outer_qubit));
            z_row.xor_with(&logical_z(outer_qubit));
        }
        hx_rows.push(x_row);
        hz_rows.push(z_row);
    }
    CssCode::new(
        "Carbon",
        BitMatrix::from_rows(hx_rows),
        BitMatrix::from_rows(hz_rows),
    )
    .expect("concatenated [[12,2,4]] code is valid")
}

/// Returns a searched self-dual `[[16,2,4]]` CSS code (substitute for
/// Grassl's table entry).
///
/// Generated with `search_codes 16 2 4 --self-dual --seed 1 --max-weight 8`
/// (see DESIGN.md, substitution 3) and frozen here.
pub fn code_16_2_4() -> CssCode {
    let h = BitMatrix::from_dense(&[
        &[0, 1, 0, 1, 0, 1, 0, 0, 1, 0, 0, 1, 0, 1, 1, 1][..],
        &[1, 0, 0, 1, 1, 0, 0, 0, 0, 1, 0, 1, 1, 0, 1, 1][..],
        &[0, 0, 0, 1, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 0, 0][..],
        &[1, 0, 0, 1, 0, 0, 1, 0, 1, 0, 1, 0, 1, 1, 1, 0][..],
        &[1, 1, 1, 0, 0, 1, 0, 0, 1, 1, 1, 0, 0, 1, 0, 0][..],
        &[1, 1, 0, 1, 1, 0, 0, 1, 0, 0, 0, 1, 1, 0, 1, 0][..],
        &[0, 0, 0, 1, 1, 0, 1, 1, 0, 0, 0, 1, 1, 0, 1, 1][..],
    ]);
    CssCode::new("[[16,2,4]]", h.clone(), h).expect("searched [[16,2,4]] code is valid")
}

/// Returns the `[[17,1,5]]` quadratic-residue CSS code.
///
/// The binary quadratic-residue code of length 17 is a `[17,9,5]` cyclic
/// code; pairing the even-weight subcodes of the residue code and of its
/// non-residue twin gives a CSS code with the same parameters as the
/// distance-5 4.8.8 color code. The generator polynomials are
/// `(x+1)·f(x)` for the two irreducible degree-8 factors of `x¹⁷+1` over
/// F₂; each check matrix holds the 8 cyclic shifts of its generator. All
/// parameters — commutation, ranks, `k = 1`, `d = 5` — are re-verified
/// exactly by [`CssCode::new`] at construction time.
pub fn qr17() -> CssCode {
    let n = 17;
    // The two irreducible degree-8 factors of x^17 + 1 over F2 (the third
    // factor is x + 1), as little-endian coefficient masks.
    let f1: u32 = 0b1_0011_1001; // x^8 + x^5 + x^4 + x^3 + 1
    let f2: u32 = 0b1_1101_0111; // x^8 + x^7 + x^6 + x^4 + x^2 + x + 1
    let even_subcode_generator = |f: u32| f ^ (f << 1); // multiply by (x + 1)
    let cyclic_rows = |g: u32| -> BitMatrix {
        BitMatrix::from_rows((0..8).map(|shift| {
            let row = g << shift;
            BitVec::from_bools(&(0..n).map(|bit| (row >> bit) & 1 == 1).collect::<Vec<_>>())
        }))
    };
    let hx = cyclic_rows(even_subcode_generator(f1));
    let hz = cyclic_rows(even_subcode_generator(f2));
    CssCode::new("QR-17", hx, hz).expect("quadratic-residue [[17,1,5]] code is valid")
}

/// Returns the rotated distance-5 surface code `[[25,1,5]]`.
///
/// Qubits are laid out on a 5×5 grid (row-major). Bulk stabilizers are
/// weight-4 checkerboard plaquettes; weight-2 boundary stabilizers close the
/// X sector on the top/bottom rows and the Z sector on the left/right
/// columns, exactly as in the distance-3 entry [`surface3`].
pub fn surface5() -> CssCode {
    let d = 5;
    let n = d * d;
    let q = |r: usize, c: usize| r * d + c;
    let mut hx_rows = Vec::new();
    let mut hz_rows = Vec::new();
    for r in 0..d - 1 {
        for c in 0..d - 1 {
            let plaquette =
                BitVec::from_indices(n, &[q(r, c), q(r, c + 1), q(r + 1, c), q(r + 1, c + 1)]);
            if (r + c) % 2 == 0 {
                hz_rows.push(plaquette);
            } else {
                hx_rows.push(plaquette);
            }
        }
    }
    for c in 0..d - 1 {
        if c % 2 == 0 {
            hx_rows.push(BitVec::from_indices(n, &[q(0, c), q(0, c + 1)]));
        } else {
            hx_rows.push(BitVec::from_indices(n, &[q(d - 1, c), q(d - 1, c + 1)]));
        }
    }
    for r in 0..d - 1 {
        if r % 2 == 1 {
            hz_rows.push(BitVec::from_indices(n, &[q(r, 0), q(r + 1, 0)]));
        } else {
            hz_rows.push(BitVec::from_indices(n, &[q(r, d - 1), q(r + 1, d - 1)]));
        }
    }
    CssCode::new(
        "Surface-5",
        BitMatrix::from_rows(hx_rows),
        BitMatrix::from_rows(hz_rows),
    )
    .expect("rotated distance-5 surface code is valid")
}

/// Returns the `size`-qubit cat-state "code": the CSS code whose logical
/// all-zero state is the GHZ state `(|0…0⟩ + |1…1⟩)/√2`.
///
/// The stabilizer group of the GHZ state is generated by `X⊗…⊗X` and the
/// nearest-neighbour `ZᵢZᵢ₊₁` pairs; dropping one Z pair turns it into a
/// `[[size,1,1]]` CSS code whose `|0⟩_L` is exactly the cat state, so
/// fault-tolerant cat-state preparation (Peham/Weilandt/Wille,
/// arXiv 2601.03343) reuses the zero-state synthesis machinery unchanged. A
/// residual X error of weight `w` has reduced weight `min(w, size − w)`
/// (spreads past half the cat are equivalent to their complement), which is
/// what makes verification of larger cat states non-trivial.
///
/// # Panics
///
/// Panics if `size < 3`.
pub fn cat_state(size: usize) -> CssCode {
    assert!(size >= 3, "cat states need at least 3 qubits");
    let hx = BitMatrix::from_rows(vec![BitVec::ones(size)]);
    let hz = BitMatrix::from_rows((0..size - 2).map(|i| BitVec::from_indices(size, &[i, i + 1])));
    CssCode::new(format!("Cat-{size}"), hx, hz).expect("cat-state code is valid")
}

/// Returns every catalog code in the order used by Table I of the paper.
pub fn all() -> Vec<CssCode> {
    vec![
        steane(),
        shor(),
        surface3(),
        code_11_1_3(),
        tetrahedral(),
        hamming_15_7(),
        carbon(),
        code_16_2_4(),
        tesseract(),
    ]
}

/// Returns the workload extensions beyond Table I: the distance-5 codes
/// (checked against the generalized order-2 criterion) and the cat-state
/// preparation targets.
pub fn workloads() -> Vec<CssCode> {
    vec![qr17(), surface5(), cat_state(4), cat_state(8)]
}

/// Returns the full extended catalog: Table I ([`all`]) plus the workload
/// extensions ([`workloads`]).
pub fn extended() -> Vec<CssCode> {
    let mut codes = all();
    codes.extend(workloads());
    codes
}

/// Returns the names of every code in the extended catalog, for lookup-error
/// messages.
pub fn known_names() -> Vec<String> {
    extended().iter().map(|c| c.name().to_string()).collect()
}

/// Looks a code up by (case-insensitive) name in the extended catalog.
pub fn by_name(name: &str) -> Option<CssCode> {
    let lower = name.to_lowercase();
    extended()
        .into_iter()
        .find(|c| c.name().to_lowercase() == lower)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftsp_pauli::PauliKind;

    #[test]
    fn steane_is_7_1_3() {
        assert_eq!(steane().parameters(), (7, 1, 3));
    }

    #[test]
    fn shor_is_9_1_3() {
        assert_eq!(shor().parameters(), (9, 1, 3));
    }

    #[test]
    fn surface3_is_9_1_3() {
        let code = surface3();
        assert_eq!(code.parameters(), (9, 1, 3));
        // Bulk stabilizers have weight 4, boundary weight 2.
        let weights: Vec<usize> = code
            .stabilizers(PauliKind::X)
            .iter()
            .map(|r| r.weight())
            .collect();
        assert_eq!(weights, vec![4, 4, 2, 2]);
    }

    #[test]
    fn tetrahedral_is_15_1_3() {
        let code = tetrahedral();
        assert_eq!(code.parameters(), (15, 1, 3));
        // X stabilizers have weight 8, Z stabilizers weight 4.
        assert!(code
            .stabilizers(PauliKind::X)
            .iter()
            .all(|r| r.weight() == 8));
        assert!(code
            .stabilizers(PauliKind::Z)
            .iter()
            .all(|r| r.weight() == 4));
    }

    #[test]
    fn hamming_is_15_7_3() {
        assert_eq!(hamming_15_7().parameters(), (15, 7, 3));
    }

    #[test]
    fn tesseract_is_16_6_4() {
        assert_eq!(tesseract().parameters(), (16, 6, 4));
    }

    #[test]
    fn searched_codes_have_expected_parameters() {
        assert_eq!(code_11_1_3().parameters(), (11, 1, 3));
        assert_eq!(carbon().parameters(), (12, 2, 4));
        assert_eq!(code_16_2_4().parameters(), (16, 2, 4));
    }

    #[test]
    fn catalog_has_nine_codes_with_unique_names() {
        let codes = all();
        assert_eq!(codes.len(), 9);
        let names: std::collections::HashSet<&str> = codes.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 9);
        for code in &codes {
            let (_, k, d) = code.parameters();
            assert!(k >= 1);
            assert!((3..5).contains(&d), "paper targets d < 5 codes, got d={d}");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("steane").unwrap().parameters(), (7, 1, 3));
        assert_eq!(by_name("Tesseract").unwrap().parameters(), (16, 6, 4));
        assert_eq!(by_name("qr-17").unwrap().parameters(), (17, 1, 5));
        assert_eq!(by_name("CAT-8").unwrap().parameters(), (8, 1, 1));
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn qr17_is_17_1_5() {
        assert_eq!(qr17().parameters(), (17, 1, 5));
    }

    #[test]
    fn surface5_is_25_1_5() {
        let code = surface5();
        assert_eq!(code.parameters(), (25, 1, 5));
        // 8 bulk + 4 boundary stabilizers per sector.
        assert_eq!(code.stabilizers(PauliKind::X).num_rows(), 12);
        assert_eq!(code.stabilizers(PauliKind::Z).num_rows(), 12);
    }

    #[test]
    fn cat_states_are_ghz_stabilizer_codes() {
        for size in [3, 4, 8] {
            let code = cat_state(size);
            assert_eq!(code.parameters(), (size, 1, 1));
            assert_eq!(code.name(), format!("Cat-{size}"));
            // One X⊗…⊗X stabilizer, size−2 nearest-neighbour Z pairs.
            assert_eq!(code.stabilizers(PauliKind::X).num_rows(), 1);
            assert_eq!(code.stabilizers(PauliKind::Z).num_rows(), size - 2);
        }
    }

    #[test]
    fn extended_catalog_and_known_names() {
        let extended = extended();
        assert_eq!(extended.len(), all().len() + workloads().len());
        let names: std::collections::HashSet<String> =
            extended.iter().map(|c| c.name().to_string()).collect();
        assert_eq!(names.len(), extended.len(), "names stay unique");
        let known = known_names();
        assert_eq!(known.len(), extended.len());
        assert!(known.iter().any(|n| n == "QR-17"));
        assert!(known.iter().any(|n| n == "Surface-5"));
        assert!(known.iter().any(|n| n == "Cat-4"));
        for name in &known {
            assert!(by_name(name).is_some(), "{name} must resolve");
        }
    }
}
