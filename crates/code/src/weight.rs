//! Stabilizer-reduced error weights.

use dftsp_f2::{BitMatrix, BitVec};

/// Computes the stabilizer-reduced weight `wt_S(v) = min_{s ∈ ⟨S⟩} wt(v + s)`
/// by exhaustive enumeration of the stabilizer group spanned by the rows of
/// `stabilizers`.
///
/// In the paper's fault-tolerance criterion only stabilizer-*equivalent*
/// representatives of an error matter: multiplying an error by a stabilizer
/// does not change its effect on the encoded state, so a "dangerous" error is
/// one whose *reduced* weight is at least 2.
///
/// # Panics
///
/// Panics if the stabilizer matrix has 30 or more rows (the enumeration would
/// be prohibitively large) or if `v.len()` differs from the number of
/// columns.
///
/// # Examples
///
/// ```
/// use dftsp_code::reduced_weight;
/// use dftsp_f2::{BitMatrix, BitVec};
///
/// let stabs = BitMatrix::from_dense(&[&[1, 1, 1, 1, 0, 0][..]]);
/// // A weight-3 error equivalent to a weight-1 error modulo the stabilizer.
/// let e = BitVec::from_indices(6, &[0, 1, 2]);
/// assert_eq!(reduced_weight(&stabs, &e), 1);
/// ```
pub fn reduced_weight(stabilizers: &BitMatrix, v: &BitVec) -> usize {
    assert_eq!(
        v.len(),
        stabilizers.num_cols(),
        "error length must match the stabilizer qubit count"
    );
    stabilizers
        .iter_span()
        .map(|s| (&s ^ v).weight())
        .min()
        .unwrap_or_else(|| v.weight())
}

/// Returns `true` if the stabilizer-reduced weight of `v` is at most `bound`.
///
/// Equivalent to `reduced_weight(stabilizers, v) <= bound` but exits early
/// once a witness is found.
pub fn reduced_weight_bounded(stabilizers: &BitMatrix, v: &BitVec, bound: usize) -> bool {
    assert_eq!(
        v.len(),
        stabilizers.num_cols(),
        "error length must match the stabilizer qubit count"
    );
    stabilizers.iter_span().any(|s| (&s ^ v).weight() <= bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steane_hx() -> BitMatrix {
        BitMatrix::from_dense(&[
            &[1, 0, 1, 0, 1, 0, 1][..],
            &[0, 1, 1, 0, 0, 1, 1][..],
            &[0, 0, 0, 1, 1, 1, 1][..],
        ])
    }

    #[test]
    fn weight_of_zero_vector_is_zero() {
        let stabs = steane_hx();
        assert_eq!(reduced_weight(&stabs, &BitVec::zeros(7)), 0);
    }

    #[test]
    fn weight_of_stabilizer_is_zero() {
        let stabs = steane_hx();
        let s = stabs.row(0).clone();
        assert_eq!(reduced_weight(&stabs, &s), 0);
        assert!(reduced_weight_bounded(&stabs, &s, 0));
    }

    #[test]
    fn single_qubit_errors_have_weight_one() {
        let stabs = steane_hx();
        for q in 0..7 {
            assert_eq!(reduced_weight(&stabs, &BitVec::unit(7, q)), 1);
        }
    }

    #[test]
    fn weight_three_stabilizer_complement() {
        let stabs = steane_hx();
        // Row 0 has weight 4; removing one qubit from its support gives a
        // weight-3 error equivalent to a weight-1 error.
        let mut e = stabs.row(0).clone();
        e.flip(0);
        assert_eq!(e.weight(), 3);
        assert_eq!(reduced_weight(&stabs, &e), 1);
        assert!(reduced_weight_bounded(&stabs, &e, 1));
        assert!(!reduced_weight_bounded(&stabs, &e, 0));
    }

    #[test]
    fn dangerous_two_qubit_error() {
        let stabs = steane_hx();
        // Qubits {0,1} do not lie inside any single weight-4 stabilizer
        // support in a way that reduces the weight below 2.
        let e = BitVec::from_indices(7, &[0, 1]);
        assert_eq!(reduced_weight(&stabs, &e), 2);
        assert!(!reduced_weight_bounded(&stabs, &e, 1));
    }

    #[test]
    fn empty_stabilizer_group() {
        let stabs = BitMatrix::with_cols(5, std::iter::empty());
        let e = BitVec::from_indices(5, &[1, 2, 3]);
        assert_eq!(reduced_weight(&stabs, &e), 3);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_lengths_panic() {
        reduced_weight(&steane_hx(), &BitVec::zeros(5));
    }
}
