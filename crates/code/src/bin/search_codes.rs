//! Command-line utility to (re)generate the searched catalog codes.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p dftsp-code --bin search_codes -- <n> <k> <d> [--self-dual] [--seed S] [--max-weight W]
//! ```
//!
//! Prints the found generator matrices in a form that can be pasted into
//! `catalog.rs`. The catalog entries for `[[11,1,3]]`, `[[12,2,4]]` and
//! `[[16,2,4]]` were produced with this tool (see DESIGN.md, substitution 3).

use dftsp_code::search::{find_css_code, SearchParams};
use dftsp_pauli::PauliKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        eprintln!("usage: search_codes <n> <k> <d> [--self-dual] [--seed S] [--max-weight W] [--attempts A]");
        std::process::exit(2);
    }
    let n: usize = args[0].parse().expect("n must be an integer");
    let k: usize = args[1].parse().expect("k must be an integer");
    let d: usize = args[2].parse().expect("d must be an integer");
    let self_dual = args.iter().any(|a| a == "--self-dual");
    let seed = flag_value(&args, "--seed").unwrap_or(1);
    let max_weight = flag_value(&args, "--max-weight").unwrap_or(8) as usize;
    let attempts = flag_value(&args, "--attempts").unwrap_or(500_000);

    let mut params = SearchParams::new(n, k, d, self_dual);
    params.max_row_weight = max_weight;
    params.max_attempts = attempts;

    println!("searching for [[{n},{k},{d}]] (self_dual={self_dual}, seed={seed}) ...");
    match find_css_code(&params, seed) {
        Some(code) => {
            let (n, k, d) = code.parameters();
            println!("found {} with parameters [[{n},{k},{d}]]", code.name());
            for kind in [PauliKind::X, PauliKind::Z] {
                println!("H_{kind}:");
                for row in code.stabilizers(kind).iter() {
                    let supp: Vec<String> = row.support().iter().map(ToString::to_string).collect();
                    println!(
                        "  &[{}][..],  // {}",
                        row.to_bits()
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(", "),
                        supp.join(",")
                    );
                }
            }
        }
        None => {
            println!("no code found within {attempts} attempts");
            std::process::exit(1);
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
