//! Running circuits on tableaus and validating encoded states.

use dftsp_circuit::{Circuit, Gate};
use dftsp_code::CssCode;
use dftsp_f2::BitVec;
use dftsp_pauli::{PauliKind, PauliString};

use crate::{Expectation, Tableau};

/// Applies a circuit to a tableau, drawing random measurement results from
/// `random_bit`, and returns the measurement outcomes (one bit per classical
/// bit of the circuit).
///
/// # Panics
///
/// Panics if the circuit acts on more qubits than the tableau has.
///
/// # Examples
///
/// ```
/// use dftsp_circuit::Circuit;
/// use dftsp_stabsim::{run_circuit, Tableau};
///
/// let mut c = Circuit::new(2);
/// c.h(0);
/// c.cnot(0, 1);
/// c.measure_z(0);
/// c.measure_z(1);
/// let mut state = Tableau::new(2);
/// let outcomes = run_circuit(&mut state, &c, || true);
/// // Bell-state measurements agree.
/// assert_eq!(outcomes.get(0), outcomes.get(1));
/// ```
pub fn run_circuit(
    state: &mut Tableau,
    circuit: &Circuit,
    mut random_bit: impl FnMut() -> bool,
) -> BitVec {
    assert!(
        circuit.num_qubits() <= state.num_qubits(),
        "circuit acts on {} qubits but the tableau has {}",
        circuit.num_qubits(),
        state.num_qubits()
    );
    let mut outcomes = BitVec::zeros(circuit.num_bits());
    for gate in circuit.gates() {
        match *gate {
            Gate::H { qubit } => state.h(qubit),
            Gate::Cnot { control, target } => state.cnot(control, target),
            Gate::X { qubit } => state.x(qubit),
            Gate::Z { qubit } => state.z(qubit),
            Gate::PrepZ { qubit } => state.reset_z(qubit),
            Gate::PrepX { qubit } => state.reset_x(qubit),
            Gate::MeasureZ { qubit, bit } => {
                let out = state.measure_z(qubit, &mut random_bit);
                outcomes.set(bit, out.value());
            }
            Gate::MeasureX { qubit, bit } => {
                let out = state.measure_x(qubit, &mut random_bit);
                outcomes.set(bit, out.value());
            }
        }
    }
    outcomes
}

/// Checks whether the first `code.num_qubits()` qubits of a tableau hold the
/// logical all-zero state `|0…0⟩_L` of the given CSS code.
///
/// The state must be a +1 eigenstate of every X- and Z-type stabilizer
/// generator and of every logical Z representative.
///
/// # Panics
///
/// Panics if the tableau has fewer qubits than the code.
pub fn is_logical_zero_state(state: &Tableau, code: &CssCode) -> bool {
    let n = code.num_qubits();
    assert!(
        state.num_qubits() >= n,
        "tableau has {} qubits but the code needs {n}",
        state.num_qubits()
    );
    let widen = |support: &BitVec, kind: PauliKind| {
        let mut full = BitVec::zeros(state.num_qubits());
        for q in support.iter_ones() {
            full.set(q, true);
        }
        PauliString::from_kind(kind, full)
    };
    for kind in PauliKind::BOTH {
        for row in code.stabilizers(kind).iter() {
            if state.expectation(&widen(row, kind)) != Expectation::Plus {
                return false;
            }
        }
    }
    for row in code.logicals(PauliKind::Z).iter() {
        if state.expectation(&widen(row, PauliKind::Z)) != Expectation::Plus {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftsp_code::catalog;

    #[test]
    fn run_circuit_collects_outcomes() {
        let mut c = Circuit::new(3);
        c.x(1);
        c.measure_z(0);
        c.measure_z(1);
        c.measure_z(2);
        let mut state = Tableau::new(3);
        let out = run_circuit(&mut state, &c, || false);
        assert_eq!(out.support(), vec![1]);
    }

    #[test]
    fn random_bits_are_consumed_only_for_random_outcomes() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.measure_z(0);
        let mut calls = 0;
        let mut state = Tableau::new(1);
        run_circuit(&mut state, &c, || {
            calls += 1;
            true
        });
        assert_eq!(calls, 1);

        let mut c = Circuit::new(1);
        c.measure_z(0);
        let mut calls = 0;
        let mut state = Tableau::new(1);
        run_circuit(&mut state, &c, || {
            calls += 1;
            true
        });
        // Deterministic measurements never invoke the random-bit source.
        assert_eq!(calls, 0);
    }

    #[test]
    fn all_zero_state_is_not_logical_zero_of_steane() {
        let code = catalog::steane();
        let state = Tableau::new(7);
        // |0000000⟩ satisfies all Z stabilizers but not the X stabilizers.
        assert!(!is_logical_zero_state(&state, &code));
    }

    #[test]
    fn textbook_steane_encoding_circuit_prepares_logical_zero() {
        // Standard Steane |0⟩_L encoder: Hadamards on the X-stabilizer pivot
        // qubits followed by CNOT fan-outs along the RREF rows of H_X.
        let code = catalog::steane();
        let (rref, pivots) = code.stabilizers(PauliKind::X).rref();
        let mut circuit = Circuit::new(7);
        for (row, &pivot) in pivots.iter().enumerate() {
            circuit.h(pivot);
            for q in rref.row(row).iter_ones() {
                if q != pivot {
                    circuit.cnot(pivot, q);
                }
            }
        }
        let mut state = Tableau::new(7);
        run_circuit(&mut state, &circuit, || false);
        assert!(is_logical_zero_state(&state, &code));
    }

    #[test]
    fn logical_zero_check_rejects_logical_x_flip() {
        let code = catalog::steane();
        let (rref, pivots) = code.stabilizers(PauliKind::X).rref();
        let mut circuit = Circuit::new(7);
        for (row, &pivot) in pivots.iter().enumerate() {
            circuit.h(pivot);
            for q in rref.row(row).iter_ones() {
                if q != pivot {
                    circuit.cnot(pivot, q);
                }
            }
        }
        let mut state = Tableau::new(7);
        run_circuit(&mut state, &circuit, || false);
        // Apply a logical X: the state becomes |1⟩_L and fails the check.
        let lx = code.logicals(PauliKind::X).row(0).clone();
        state.apply_pauli(&PauliString::from_x(lx));
        assert!(!is_logical_zero_state(&state, &code));
    }

    #[test]
    #[should_panic(expected = "circuit acts on")]
    fn circuit_wider_than_tableau_panics() {
        let c = Circuit::new(3);
        let mut state = Tableau::new(2);
        run_circuit(&mut state, &c, || false);
    }
}
