//! Stabilizer-circuit simulation for validating synthesized circuits.
//!
//! The synthesis pipeline needs a way to check that a candidate
//! state-preparation circuit really prepares the logical `|0…0⟩_L` state of a
//! CSS code, and the examples and tests need a small exact simulator for
//! Clifford circuits. This crate provides both on top of the classic
//! Aaronson–Gottesman tableau formalism:
//!
//! * [`Tableau`] — a pure stabilizer state with gate application, single-qubit
//!   measurements and Pauli expectation values,
//! * [`run_circuit`] — applies a [`dftsp_circuit::Circuit`] to a tableau,
//! * [`is_logical_zero_state`] — checks a state against the stabilizers and
//!   logical Z operators of a [`dftsp_code::CssCode`].
//!
//! # Examples
//!
//! ```
//! use dftsp_circuit::Circuit;
//! use dftsp_code::catalog;
//! use dftsp_pauli::PauliKind;
//! use dftsp_stabsim::{is_logical_zero_state, run_circuit, Tableau};
//!
//! // Hand-built Steane |0⟩_L encoder (RREF fan-out construction).
//! let code = catalog::steane();
//! let (rref, pivots) = code.stabilizers(PauliKind::X).rref();
//! let mut encoder = Circuit::new(7);
//! for (row, &pivot) in pivots.iter().enumerate() {
//!     encoder.h(pivot);
//!     for q in rref.row(row).iter_ones().filter(|&q| q != pivot) {
//!         encoder.cnot(pivot, q);
//!     }
//! }
//! let mut state = Tableau::new(7);
//! run_circuit(&mut state, &encoder, || false);
//! assert!(is_logical_zero_state(&state, &code));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod state;
mod tableau;

pub use state::{is_logical_zero_state, run_circuit};
pub use tableau::{Expectation, Outcome, Tableau};
