//! Aaronson–Gottesman stabilizer tableau simulation.

use dftsp_f2::BitVec;
use dftsp_pauli::PauliString;

/// Outcome of a single-qubit measurement on a stabilizer state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The outcome was fully determined by the state.
    Deterministic(bool),
    /// The outcome was uniformly random; the recorded value is the one that
    /// was chosen (supplied by the caller) and the state has collapsed
    /// accordingly.
    Random(bool),
}

impl Outcome {
    /// Returns the measured bit, regardless of determinism.
    pub fn value(self) -> bool {
        match self {
            Outcome::Deterministic(v) | Outcome::Random(v) => v,
        }
    }

    /// Returns `true` if the outcome was determined by the state.
    pub fn is_deterministic(self) -> bool {
        matches!(self, Outcome::Deterministic(_))
    }
}

/// Expectation value of a Pauli operator on a stabilizer state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// The operator stabilizes the state (+1 eigenstate).
    Plus,
    /// The negated operator stabilizes the state (−1 eigenstate).
    Minus,
    /// The operator anticommutes with some stabilizer (expectation 0).
    Zero,
}

/// A pure `n`-qubit stabilizer state in the Aaronson–Gottesman tableau
/// representation.
///
/// The tableau stores `2n` rows: rows `0..n` are the destabilizer generators
/// and rows `n..2n` the stabilizer generators, each with an `n`-bit X part, an
/// `n`-bit Z part and a sign bit. The initial state is `|0…0⟩` (stabilized by
/// `Z₀, …, Z_{n−1}`).
///
/// The simulator supports the Clifford gate set used throughout the
/// workspace (H, CNOT, Pauli corrections, resets) plus single-qubit
/// measurements, and can evaluate the expectation value of an arbitrary Pauli
/// operator — which is how synthesized state-preparation circuits are
/// validated against the target code.
///
/// # Examples
///
/// ```
/// use dftsp_stabsim::{Expectation, Tableau};
/// use dftsp_pauli::PauliString;
///
/// // Prepare the Bell state (|00⟩ + |11⟩)/√2.
/// let mut state = Tableau::new(2);
/// state.h(0);
/// state.cnot(0, 1);
/// let xx: PauliString = "XX".parse().unwrap();
/// let zz: PauliString = "ZZ".parse().unwrap();
/// assert_eq!(state.expectation(&xx), Expectation::Plus);
/// assert_eq!(state.expectation(&zz), Expectation::Plus);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tableau {
    n: usize,
    /// X parts of the 2n tableau rows.
    x: Vec<BitVec>,
    /// Z parts of the 2n tableau rows.
    z: Vec<BitVec>,
    /// Sign bits of the 2n tableau rows.
    r: BitVec,
}

impl Tableau {
    /// Creates the tableau of the all-zero state `|0…0⟩` on `n` qubits.
    pub fn new(n: usize) -> Self {
        let mut x = Vec::with_capacity(2 * n);
        let mut z = Vec::with_capacity(2 * n);
        for i in 0..2 * n {
            if i < n {
                x.push(BitVec::unit(n, i));
                z.push(BitVec::zeros(n));
            } else {
                x.push(BitVec::zeros(n));
                z.push(BitVec::unit(n, i - n));
            }
        }
        Tableau {
            n,
            x,
            z,
            r: BitVec::zeros(2 * n),
        }
    }

    /// Returns the number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Returns the `i`-th stabilizer generator as a (phase-free) Pauli
    /// operator together with its sign (`true` = negative).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_qubits()`.
    pub fn stabilizer(&self, i: usize) -> (PauliString, bool) {
        assert!(i < self.n, "stabilizer index {i} out of range");
        let row = self.n + i;
        (
            PauliString::from_xz(self.x[row].clone(), self.z[row].clone()),
            self.r.get(row),
        )
    }

    fn check_qubit(&self, q: usize) {
        assert!(
            q < self.n,
            "qubit {q} out of range for {}-qubit tableau",
            self.n
        );
    }

    /// Applies a Hadamard gate to qubit `q`.
    pub fn h(&mut self, q: usize) {
        self.check_qubit(q);
        for row in 0..2 * self.n {
            let xq = self.x[row].get(q);
            let zq = self.z[row].get(q);
            if xq && zq {
                self.r.flip(row);
            }
            self.x[row].set(q, zq);
            self.z[row].set(q, xq);
        }
    }

    /// Applies a CNOT gate with control `c` and target `t`.
    ///
    /// # Panics
    ///
    /// Panics if `c == t` or either qubit is out of range.
    pub fn cnot(&mut self, c: usize, t: usize) {
        self.check_qubit(c);
        self.check_qubit(t);
        assert_ne!(c, t, "CNOT control and target must differ");
        for row in 0..2 * self.n {
            let xc = self.x[row].get(c);
            let zc = self.z[row].get(c);
            let xt = self.x[row].get(t);
            let zt = self.z[row].get(t);
            if xc && zt && (xt == zc) {
                self.r.flip(row);
            }
            self.x[row].set(t, xt ^ xc);
            self.z[row].set(c, zc ^ zt);
        }
    }

    /// Applies a Pauli X gate to qubit `q`.
    pub fn x(&mut self, q: usize) {
        self.check_qubit(q);
        for row in 0..2 * self.n {
            if self.z[row].get(q) {
                self.r.flip(row);
            }
        }
    }

    /// Applies a Pauli Z gate to qubit `q`.
    pub fn z(&mut self, q: usize) {
        self.check_qubit(q);
        for row in 0..2 * self.n {
            if self.x[row].get(q) {
                self.r.flip(row);
            }
        }
    }

    /// Applies an arbitrary Pauli operator (as a sequence of X and Z gates).
    ///
    /// # Panics
    ///
    /// Panics if the operator acts on a different number of qubits.
    pub fn apply_pauli(&mut self, p: &PauliString) {
        assert_eq!(
            p.num_qubits(),
            self.n,
            "Pauli must act on the tableau's qubits"
        );
        for q in p.x_part().iter_ones() {
            self.x(q);
        }
        for q in p.z_part().iter_ones() {
            self.z(q);
        }
    }

    /// Measures qubit `q` in the Z basis.
    ///
    /// If the outcome is not determined by the state, `random_bit` is invoked
    /// to supply the measurement result and the state collapses accordingly;
    /// for deterministic outcomes `random_bit` is never called.
    pub fn measure_z(&mut self, q: usize, random_bit: impl FnOnce() -> bool) -> Outcome {
        self.check_qubit(q);
        // Look for a stabilizer generator with an X component on q.
        let p = (self.n..2 * self.n).find(|&row| self.x[row].get(q));
        match p {
            Some(p) => {
                // Random outcome.
                let outcome = random_bit();
                // Every other row with x[q] = 1 gets the old row p multiplied in.
                let rows: Vec<usize> = (0..2 * self.n)
                    .filter(|&row| row != p && self.x[row].get(q))
                    .collect();
                for row in rows {
                    self.rowmul(row, p);
                }
                // The destabilizer partner becomes the old stabilizer row.
                let dest = p - self.n;
                self.x[dest] = self.x[p].clone();
                self.z[dest] = self.z[p].clone();
                self.r.set(dest, self.r.get(p));
                // Row p becomes ±Z_q.
                self.x[p] = BitVec::zeros(self.n);
                self.z[p] = BitVec::unit(self.n, q);
                self.r.set(p, outcome);
                Outcome::Random(outcome)
            }
            None => {
                // Deterministic outcome: accumulate the product of stabilizer
                // rows whose destabilizer partner has an X component on q.
                let mut scratch = ScratchRow::identity(self.n);
                for i in 0..self.n {
                    if self.x[i].get(q) {
                        scratch.multiply_by(self, self.n + i);
                    }
                }
                Outcome::Deterministic(scratch.sign)
            }
        }
    }

    /// Measures qubit `q` in the X basis (by conjugating with Hadamards).
    pub fn measure_x(&mut self, q: usize, random_bit: impl FnOnce() -> bool) -> Outcome {
        self.h(q);
        let out = self.measure_z(q, random_bit);
        self.h(q);
        out
    }

    /// Resets qubit `q` to `|0⟩` (measure in Z and flip if needed).
    pub fn reset_z(&mut self, q: usize) {
        let outcome = self.measure_z(q, || false);
        if outcome.value() {
            self.x(q);
        }
    }

    /// Resets qubit `q` to `|+⟩`.
    pub fn reset_x(&mut self, q: usize) {
        self.reset_z(q);
        self.h(q);
    }

    /// Multiplies tableau row `target` by tableau row `source` in place,
    /// updating the sign with the correct power-of-i bookkeeping.
    fn rowmul(&mut self, target: usize, source: usize) {
        let mut phase = 2 * (u32::from(self.r.get(target)) + u32::from(self.r.get(source)));
        for q in 0..self.n {
            phase = phase.wrapping_add(g(
                self.x[source].get(q),
                self.z[source].get(q),
                self.x[target].get(q),
                self.z[target].get(q),
            ) as u32);
        }
        debug_assert!(
            phase % 2 == 0,
            "Pauli products of commuting rows have real phase"
        );
        self.r.set(target, (phase / 2) % 2 == 1);
        let src_x = self.x[source].clone();
        let src_z = self.z[source].clone();
        self.x[target].xor_with(&src_x);
        self.z[target].xor_with(&src_z);
    }

    /// Returns the expectation value of a Pauli operator on the current state.
    ///
    /// The operator is interpreted as the Hermitian Pauli with a `Y` on every
    /// qubit where both the X and Z components are set.
    ///
    /// # Panics
    ///
    /// Panics if the operator acts on a different number of qubits.
    pub fn expectation(&self, p: &PauliString) -> Expectation {
        assert_eq!(
            p.num_qubits(),
            self.n,
            "Pauli must act on the tableau's qubits"
        );
        // If the operator anticommutes with any stabilizer generator the
        // expectation value is zero.
        for i in 0..self.n {
            let (stab, _) = self.stabilizer(i);
            if !p.commutes_with(&stab) {
                return Expectation::Zero;
            }
        }
        // Otherwise the operator is ± an element of the stabilizer group.
        // Express it as a product of generators using the destabilizers: the
        // generator n+i participates iff p anticommutes with destabilizer i.
        let mut scratch = ScratchRow::identity(self.n);
        for i in 0..self.n {
            let dest = PauliString::from_xz(self.x[i].clone(), self.z[i].clone());
            if !p.commutes_with(&dest) {
                scratch.multiply_by(self, self.n + i);
            }
        }
        debug_assert_eq!(
            (&scratch.x, &scratch.z),
            (p.x_part(), p.z_part()),
            "operator commuting with all stabilizers must lie in the group"
        );
        if scratch.sign {
            Expectation::Minus
        } else {
            Expectation::Plus
        }
    }

    /// Returns `true` if the operator stabilizes the state (expectation +1).
    pub fn is_stabilized_by(&self, p: &PauliString) -> bool {
        self.expectation(p) == Expectation::Plus
    }
}

/// Scratch row used for deterministic-measurement and expectation-value
/// computations.
struct ScratchRow {
    x: BitVec,
    z: BitVec,
    sign: bool,
}

impl ScratchRow {
    fn identity(n: usize) -> Self {
        ScratchRow {
            x: BitVec::zeros(n),
            z: BitVec::zeros(n),
            sign: false,
        }
    }

    /// Multiplies this scratch row by tableau row `source`.
    fn multiply_by(&mut self, tableau: &Tableau, source: usize) {
        let mut phase = 2 * (u32::from(self.sign) + u32::from(tableau.r.get(source)));
        for q in 0..tableau.n {
            phase = phase.wrapping_add(g(
                tableau.x[source].get(q),
                tableau.z[source].get(q),
                self.x.get(q),
                self.z.get(q),
            ) as u32);
        }
        debug_assert!(phase % 2 == 0);
        self.sign = (phase / 2) % 2 == 1;
        self.x.xor_with(&tableau.x[source]);
        self.z.xor_with(&tableau.z[source]);
    }
}

/// The Aaronson–Gottesman `g` function: the exponent of `i` produced when the
/// single-qubit Pauli `(x1, z1)` is multiplied onto `(x2, z2)` from the left.
fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
    match (x1, z1) {
        (false, false) => 0,
        (true, true) => i32::from(z2) - i32::from(x2),
        (true, false) => i32::from(z2) * (2 * i32::from(x2) - 1),
        (false, true) => i32::from(x2) * (1 - 2 * i32::from(z2)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftsp_pauli::Pauli;

    fn pauli(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn initial_state_is_all_zero() {
        let t = Tableau::new(3);
        assert_eq!(t.num_qubits(), 3);
        for q in 0..3 {
            assert_eq!(
                t.expectation(&PauliString::single(3, q, Pauli::Z)),
                Expectation::Plus
            );
            assert_eq!(
                t.expectation(&PauliString::single(3, q, Pauli::X)),
                Expectation::Zero
            );
        }
    }

    #[test]
    fn x_gate_flips_z_expectation() {
        let mut t = Tableau::new(1);
        t.x(0);
        assert_eq!(t.expectation(&pauli("Z")), Expectation::Minus);
        t.x(0);
        assert_eq!(t.expectation(&pauli("Z")), Expectation::Plus);
    }

    #[test]
    fn hadamard_maps_z_to_x() {
        let mut t = Tableau::new(1);
        t.h(0);
        assert_eq!(t.expectation(&pauli("X")), Expectation::Plus);
        assert_eq!(t.expectation(&pauli("Z")), Expectation::Zero);
        t.z(0);
        assert_eq!(t.expectation(&pauli("X")), Expectation::Minus);
    }

    #[test]
    fn bell_state_stabilizers() {
        let mut t = Tableau::new(2);
        t.h(0);
        t.cnot(0, 1);
        assert_eq!(t.expectation(&pauli("XX")), Expectation::Plus);
        assert_eq!(t.expectation(&pauli("ZZ")), Expectation::Plus);
        assert_eq!(t.expectation(&pauli("YY")), Expectation::Minus);
        assert_eq!(t.expectation(&pauli("ZI")), Expectation::Zero);
    }

    #[test]
    fn deterministic_measurement_of_computational_state() {
        let mut t = Tableau::new(2);
        t.x(1);
        assert_eq!(t.measure_z(0, || true), Outcome::Deterministic(false));
        assert_eq!(t.measure_z(1, || false), Outcome::Deterministic(true));
    }

    #[test]
    fn random_measurement_collapses_state() {
        let mut t = Tableau::new(1);
        t.h(0);
        let out = t.measure_z(0, || true);
        assert_eq!(out, Outcome::Random(true));
        // After collapse the outcome is deterministic and repeatable.
        assert_eq!(t.measure_z(0, || false), Outcome::Deterministic(true));
        assert_eq!(t.expectation(&pauli("Z")), Expectation::Minus);
    }

    #[test]
    fn bell_measurements_are_correlated() {
        for first in [false, true] {
            let mut t = Tableau::new(2);
            t.h(0);
            t.cnot(0, 1);
            let a = t.measure_z(0, || first);
            let b = t.measure_z(1, || !first);
            assert!(!a.is_deterministic());
            assert!(b.is_deterministic());
            assert_eq!(a.value(), b.value());
        }
    }

    #[test]
    fn measure_x_basis() {
        let mut t = Tableau::new(1);
        t.h(0);
        assert_eq!(t.measure_x(0, || true), Outcome::Deterministic(false));
        let mut t = Tableau::new(1);
        t.h(0);
        t.z(0);
        assert_eq!(t.measure_x(0, || false), Outcome::Deterministic(true));
    }

    #[test]
    fn reset_returns_qubit_to_zero() {
        let mut t = Tableau::new(2);
        t.h(0);
        t.cnot(0, 1);
        t.reset_z(0);
        assert_eq!(t.measure_z(0, || true), Outcome::Deterministic(false));
        let mut t = Tableau::new(1);
        t.x(0);
        t.reset_x(0);
        assert_eq!(t.measure_x(0, || true), Outcome::Deterministic(false));
    }

    #[test]
    fn apply_pauli_matches_individual_gates() {
        let mut a = Tableau::new(3);
        a.h(0);
        a.cnot(0, 1);
        let mut b = a.clone();
        a.apply_pauli(&pauli("XYZ"));
        b.x(0);
        b.x(1);
        b.z(1);
        b.z(2);
        // Same expectations for a set of probe operators (global phase is not
        // represented in the tableau).
        for probe in ["XXI", "ZZI", "IIZ", "XII", "ZIZ"] {
            assert_eq!(
                a.expectation(&pauli(probe)),
                b.expectation(&pauli(probe)),
                "{probe}"
            );
        }
    }

    #[test]
    fn ghz_state_parity() {
        let mut t = Tableau::new(3);
        t.h(0);
        t.cnot(0, 1);
        t.cnot(0, 2);
        assert_eq!(t.expectation(&pauli("XXX")), Expectation::Plus);
        assert_eq!(t.expectation(&pauli("ZZI")), Expectation::Plus);
        assert_eq!(t.expectation(&pauli("IZZ")), Expectation::Plus);
        assert_eq!(t.expectation(&pauli("ZII")), Expectation::Zero);
        let out = t.measure_z(0, || true);
        assert!(!out.is_deterministic());
        // All three qubits now agree.
        let b1 = t.measure_z(1, || false);
        let b2 = t.measure_z(2, || false);
        assert_eq!(b1, Outcome::Deterministic(out.value()));
        assert_eq!(b2, Outcome::Deterministic(out.value()));
    }

    #[test]
    fn y_sign_bookkeeping() {
        // S·H|0⟩-like state is out of the gate set, but Y expectations can be
        // probed on the |+i⟩-free states we can reach: Y = iXZ, so on the Bell
        // state YY has expectation −1 (checked above) while on |00⟩ YI is 0.
        let t = Tableau::new(2);
        assert_eq!(t.expectation(&pauli("YI")), Expectation::Zero);
        assert_eq!(t.expectation(&pauli("YY")), Expectation::Zero);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        Tableau::new(2).h(2);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn self_cnot_panics() {
        Tableau::new(2).cnot(1, 1);
    }
}
