//! The circuit container and builder API.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{CircuitStats, Gate};

/// A Clifford + measurement circuit on a fixed number of qubits.
///
/// Classical measurement bits are allocated sequentially by the
/// `measure_*` builder methods and identify outcomes across the whole
/// protocol.
///
/// # Examples
///
/// ```
/// use dftsp_circuit::Circuit;
///
/// let mut prep = Circuit::new(2);
/// prep.h(0);
/// prep.cnot(0, 1);
/// assert_eq!(prep.stats().cnot_count, 1);
/// assert_eq!(prep.stats().depth, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: usize,
    num_bits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            num_bits: 0,
            gates: Vec::new(),
        }
    }

    /// Returns the number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Returns the number of classical bits allocated by measurements.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Returns the gate sequence.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Returns the number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the circuit contains no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    fn check_qubit(&self, q: usize) {
        assert!(
            q < self.num_qubits,
            "qubit {q} out of range for circuit on {} qubits",
            self.num_qubits
        );
    }

    /// Appends a raw gate.
    ///
    /// Measurement gates must reference classical bits below
    /// [`Circuit::num_bits`]; prefer the `measure_*` builder methods which
    /// allocate bits automatically.
    ///
    /// # Panics
    ///
    /// Panics if the gate references an out-of-range qubit or classical bit.
    pub fn push(&mut self, gate: Gate) {
        for q in gate.qubits() {
            self.check_qubit(q);
        }
        if let Some(bit) = gate.measured_bit() {
            assert!(
                bit < self.num_bits,
                "classical bit {bit} has not been allocated"
            );
        }
        if let Gate::Cnot { control, target } = gate {
            assert_ne!(control, target, "CNOT control and target must differ");
        }
        self.gates.push(gate);
    }

    /// Appends a Hadamard gate.
    pub fn h(&mut self, qubit: usize) {
        self.push(Gate::H { qubit });
    }

    /// Appends a CNOT gate.
    ///
    /// # Panics
    ///
    /// Panics if `control == target` or either qubit is out of range.
    pub fn cnot(&mut self, control: usize, target: usize) {
        self.push(Gate::Cnot { control, target });
    }

    /// Appends a Pauli X gate.
    pub fn x(&mut self, qubit: usize) {
        self.push(Gate::X { qubit });
    }

    /// Appends a Pauli Z gate.
    pub fn z(&mut self, qubit: usize) {
        self.push(Gate::Z { qubit });
    }

    /// Appends a |0⟩ preparation (reset).
    pub fn prep_z(&mut self, qubit: usize) {
        self.push(Gate::PrepZ { qubit });
    }

    /// Appends a |+⟩ preparation.
    pub fn prep_x(&mut self, qubit: usize) {
        self.push(Gate::PrepX { qubit });
    }

    /// Appends a Z-basis measurement and returns the classical bit index
    /// holding the outcome.
    pub fn measure_z(&mut self, qubit: usize) -> usize {
        self.check_qubit(qubit);
        let bit = self.num_bits;
        self.num_bits += 1;
        self.gates.push(Gate::MeasureZ { qubit, bit });
        bit
    }

    /// Appends an X-basis measurement and returns the classical bit index
    /// holding the outcome.
    pub fn measure_x(&mut self, qubit: usize) -> usize {
        self.check_qubit(qubit);
        let bit = self.num_bits;
        self.num_bits += 1;
        self.gates.push(Gate::MeasureX { qubit, bit });
        bit
    }

    /// Appends all gates of `other`, remapping its classical bits to fresh
    /// bits of this circuit. Returns the offset added to `other`'s bit
    /// indices.
    ///
    /// # Panics
    ///
    /// Panics if `other` acts on more qubits than this circuit has.
    pub fn append(&mut self, other: &Circuit) -> usize {
        assert!(
            other.num_qubits <= self.num_qubits,
            "appended circuit acts on {} qubits but this circuit has {}",
            other.num_qubits,
            self.num_qubits
        );
        let offset = self.num_bits;
        self.num_bits += other.num_bits;
        for gate in &other.gates {
            let remapped = match *gate {
                Gate::MeasureZ { qubit, bit } => Gate::MeasureZ {
                    qubit,
                    bit: bit + offset,
                },
                Gate::MeasureX { qubit, bit } => Gate::MeasureX {
                    qubit,
                    bit: bit + offset,
                },
                g => g,
            };
            self.gates.push(remapped);
        }
        offset
    }

    /// Returns a copy of the circuit extended to act on `num_qubits` qubits
    /// (appending idle qubits at the end of the register).
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is smaller than the current qubit count.
    pub fn widened(&self, num_qubits: usize) -> Circuit {
        assert!(num_qubits >= self.num_qubits, "cannot shrink a circuit");
        Circuit {
            num_qubits,
            num_bits: self.num_bits,
            gates: self.gates.clone(),
        }
    }

    /// Computes gate counts and depth.
    pub fn stats(&self) -> CircuitStats {
        CircuitStats::from_circuit(self)
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# circuit: {} qubits, {} bits",
            self.num_qubits, self.num_bits
        )?;
        for gate in &self.gates {
            writeln!(f, "{gate}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_allocates_bits_sequentially() {
        let mut c = Circuit::new(3);
        c.prep_z(2);
        c.cnot(0, 2);
        let b0 = c.measure_z(2);
        let b1 = c.measure_x(0);
        assert_eq!((b0, b1), (0, 1));
        assert_eq!(c.num_bits(), 2);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
    }

    #[test]
    fn append_remaps_classical_bits() {
        let mut a = Circuit::new(2);
        a.measure_z(0);
        let mut b = Circuit::new(2);
        b.measure_z(1);
        let offset = a.append(&b);
        assert_eq!(offset, 1);
        assert_eq!(a.num_bits(), 2);
        assert_eq!(a.gates()[1], Gate::MeasureZ { qubit: 1, bit: 1 });
    }

    #[test]
    fn widened_keeps_gates() {
        let mut a = Circuit::new(2);
        a.h(0);
        let wide = a.widened(5);
        assert_eq!(wide.num_qubits(), 5);
        assert_eq!(wide.gates(), a.gates());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut c = Circuit::new(2);
        c.h(2);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn self_cnot_panics() {
        let mut c = Circuit::new(2);
        c.cnot(1, 1);
    }

    #[test]
    #[should_panic(expected = "has not been allocated")]
    fn pushing_unallocated_bit_panics() {
        let mut c = Circuit::new(2);
        c.push(Gate::MeasureZ { qubit: 0, bit: 0 });
    }

    #[test]
    fn display_lists_gates() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cnot(0, 1);
        let text = c.to_string();
        assert!(text.contains("h q0"));
        assert!(text.contains("cx q0, q1"));
    }
}
