//! Pauli-frame propagation through Clifford circuits.

use std::ops::{Bound, RangeBounds};

use dftsp_f2::BitVec;
use dftsp_pauli::{Pauli, PauliString};

use crate::{Circuit, Gate};

/// Propagates a Pauli error frame through a circuit.
///
/// The tracker maintains the current Pauli error (the "frame") acting on the
/// circuit's qubits and the set of measurement outcomes that the frame has
/// flipped so far. Because every gate in the circuit is Clifford, errors
/// propagate by conjugation: `E → U E U†`, which is a linear map on the
/// symplectic representation.
///
/// This single primitive backs both the exhaustive single-fault analysis used
/// during synthesis and the Monte-Carlo sampling used in the noise
/// simulations: in both cases one injects Pauli faults at chosen positions
/// and asks what error remains on the data and which measurements fire.
///
/// # Examples
///
/// ```
/// use dftsp_circuit::{Circuit, PauliTracker};
/// use dftsp_pauli::{Pauli, PauliString};
///
/// let mut c = Circuit::new(2);
/// c.cnot(0, 1);
/// let bit = c.measure_z(1);
///
/// let mut tracker = PauliTracker::new(&c);
/// tracker.inject(&PauliString::single(2, 0, Pauli::X));
/// tracker.run(..);
/// // The X spreads through the CNOT onto qubit 1 and flips the measurement.
/// assert_eq!(tracker.frame().to_string(), "XX");
/// assert!(tracker.measurement_flipped(bit));
/// ```
#[derive(Debug, Clone)]
pub struct PauliTracker<'a> {
    circuit: &'a Circuit,
    frame: PauliString,
    flips: BitVec,
}

impl<'a> PauliTracker<'a> {
    /// Creates a tracker with an identity frame and no flipped measurements.
    pub fn new(circuit: &'a Circuit) -> Self {
        PauliTracker {
            circuit,
            frame: PauliString::identity(circuit.num_qubits()),
            flips: BitVec::zeros(circuit.num_bits()),
        }
    }

    /// Multiplies a Pauli error into the current frame (i.e. the error occurs
    /// at the tracker's current position in the circuit).
    ///
    /// # Panics
    ///
    /// Panics if the operator acts on a different number of qubits.
    pub fn inject(&mut self, error: &PauliString) {
        assert_eq!(
            error.num_qubits(),
            self.circuit.num_qubits(),
            "injected error must act on the circuit's qubits"
        );
        self.frame.mul_assign(error);
    }

    /// Processes the gates whose indices lie in `range`, in order.
    ///
    /// # Panics
    ///
    /// Panics if the range extends past the end of the circuit.
    pub fn run<R: RangeBounds<usize>>(&mut self, range: R) {
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.circuit.len(),
        };
        assert!(end <= self.circuit.len(), "gate range out of bounds");
        for idx in start..end {
            self.apply_gate(self.circuit.gates()[idx]);
        }
    }

    fn apply_gate(&mut self, gate: Gate) {
        match gate {
            Gate::H { qubit } => {
                let p = self.frame.get(qubit);
                let (x, z) = p.xz();
                self.frame.set(qubit, Pauli::from_xz(z, x));
            }
            Gate::Cnot { control, target } => {
                // X on the control spreads to the target; Z on the target
                // spreads to the control.
                let (xc, zc) = self.frame.get(control).xz();
                let (xt, zt) = self.frame.get(target).xz();
                self.frame.set(control, Pauli::from_xz(xc, zc ^ zt));
                self.frame.set(target, Pauli::from_xz(xt ^ xc, zt));
            }
            Gate::X { .. } | Gate::Z { .. } => {
                // Pauli corrections commute with the frame up to phase.
            }
            Gate::PrepZ { qubit } | Gate::PrepX { qubit } => {
                // A reset discards any accumulated error on the qubit.
                self.frame.set(qubit, Pauli::I);
            }
            Gate::MeasureZ { qubit, bit } => {
                if self.frame.get(qubit).has_x() {
                    self.flips.flip(bit);
                }
            }
            Gate::MeasureX { qubit, bit } => {
                if self.frame.get(qubit).has_z() {
                    self.flips.flip(bit);
                }
            }
        }
    }

    /// Returns the current error frame.
    pub fn frame(&self) -> &PauliString {
        &self.frame
    }

    /// Returns `true` if the frame has flipped the outcome of the given
    /// classical bit.
    ///
    /// # Panics
    ///
    /// Panics if the bit index is out of range.
    pub fn measurement_flipped(&self, bit: usize) -> bool {
        self.flips.get(bit)
    }

    /// Returns the vector of measurement-outcome flips (one bit per classical
    /// bit of the circuit).
    pub fn flips(&self) -> &BitVec {
        &self.flips
    }

    /// Flips a recorded measurement outcome directly (used to model classical
    /// measurement readout errors).
    ///
    /// # Panics
    ///
    /// Panics if the bit index is out of range.
    pub fn flip_measurement(&mut self, bit: usize) {
        self.flips.flip(bit);
    }

    /// Splits the tracker into its final frame and measurement flips.
    pub fn into_parts(self) -> (PauliString, BitVec) {
        (self.frame, self.flips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hadamard_exchanges_x_and_z() {
        let mut c = Circuit::new(1);
        c.h(0);
        let mut t = PauliTracker::new(&c);
        t.inject(&"X".parse().unwrap());
        t.run(..);
        assert_eq!(t.frame().to_string(), "Z");

        let mut t = PauliTracker::new(&c);
        t.inject(&"Y".parse().unwrap());
        t.run(..);
        assert_eq!(t.frame().to_string(), "Y");
    }

    #[test]
    fn cnot_propagation_rules() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        for (input, expected) in [
            ("XI", "XX"),
            ("IX", "IX"),
            ("ZI", "ZI"),
            ("IZ", "ZZ"),
            ("YI", "YX"),
            ("IY", "ZY"),
        ] {
            let mut t = PauliTracker::new(&c);
            t.inject(&input.parse().unwrap());
            t.run(..);
            assert_eq!(t.frame().to_string(), expected, "input {input}");
        }
    }

    #[test]
    fn reset_clears_errors() {
        let mut c = Circuit::new(2);
        c.prep_z(0);
        c.prep_x(1);
        let mut t = PauliTracker::new(&c);
        t.inject(&"YZ".parse().unwrap());
        t.run(..);
        assert!(t.frame().is_identity());
    }

    #[test]
    fn measurement_flip_detection() {
        let mut c = Circuit::new(2);
        let b0 = c.measure_z(0);
        let b1 = c.measure_x(1);
        // X flips Z-basis measurements, Z flips X-basis measurements.
        let mut t = PauliTracker::new(&c);
        t.inject(&"XZ".parse().unwrap());
        t.run(..);
        assert!(t.measurement_flipped(b0));
        assert!(t.measurement_flipped(b1));
        // Z does not flip a Z-basis measurement.
        let mut t = PauliTracker::new(&c);
        t.inject(&"ZX".parse().unwrap());
        t.run(..);
        assert!(!t.measurement_flipped(b0));
        assert!(!t.measurement_flipped(b1));
    }

    #[test]
    fn stabilizer_measurement_detects_single_x() {
        // Measure Z0 Z1 Z2 Z3 with an ancilla (qubit 4), as in Fig. 1.
        let mut c = Circuit::new(5);
        c.prep_z(4);
        for q in 0..4 {
            c.cnot(q, 4);
        }
        let bit = c.measure_z(4);
        // Any single X on a data qubit flips the ancilla.
        for q in 0..4 {
            let mut t = PauliTracker::new(&c);
            t.inject(&PauliString::single(5, q, Pauli::X));
            t.run(..);
            assert!(t.measurement_flipped(bit));
        }
        // A two-qubit X error does not.
        let mut t = PauliTracker::new(&c);
        t.inject(&PauliString::from_x(BitVec::from_indices(5, &[0, 1])));
        t.run(..);
        assert!(!t.measurement_flipped(bit));
    }

    #[test]
    fn hook_error_spreads_from_ancilla() {
        // Z error on the ancilla in the middle of a weight-4 Z-stabilizer
        // measurement propagates onto the data qubits coupled afterwards —
        // the hook error of Fig. 1 / Example 2.
        let mut c = Circuit::new(5);
        c.prep_z(4);
        for q in 0..4 {
            c.cnot(q, 4);
        }
        c.measure_z(4);
        let mut t = PauliTracker::new(&c);
        // Run the preparation and the first two CNOTs.
        t.run(0..3);
        t.inject(&PauliString::single(5, 4, Pauli::Z));
        t.run(3..c.len());
        // The Z spreads back onto data qubits 2 and 3 (controls of the
        // remaining CNOTs); a copy also stays on the ancilla.
        assert_eq!(t.frame().to_string(), "IIZZZ");
    }

    #[test]
    fn partial_runs_and_injection_between_gates() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        c.cnot(0, 1);
        // An X injected between the two CNOTs propagates through only one.
        let mut t = PauliTracker::new(&c);
        t.run(0..1);
        t.inject(&"XI".parse().unwrap());
        t.run(1..2);
        assert_eq!(t.frame().to_string(), "XX");
        let (frame, flips) = t.into_parts();
        assert_eq!(frame.weight(), 2);
        assert!(flips.is_zero());
    }

    #[test]
    fn flip_measurement_models_readout_error() {
        let mut c = Circuit::new(1);
        let b = c.measure_z(0);
        let mut t = PauliTracker::new(&c);
        t.run(..);
        assert!(!t.measurement_flipped(b));
        t.flip_measurement(b);
        assert!(t.measurement_flipped(b));
    }

    use dftsp_f2::BitVec;
}
