//! Clifford circuit intermediate representation with fault propagation.
//!
//! The synthesis and simulation pipeline manipulates circuits made of the
//! gates that appear in fault-tolerant state preparation: Hadamards, CNOTs,
//! Pauli corrections, qubit preparations and single-qubit measurements in the
//! X or Z basis. This crate provides:
//!
//! * [`Gate`] and [`Circuit`] — the circuit data structure and builder API,
//! * [`PauliTracker`] — conjugation of Pauli errors through Clifford gates,
//!   including the effect on measurement outcomes,
//! * [`FaultSite`] / [`enumerate_fault_sites`] — the circuit-level fault
//!   locations of the standard depolarizing noise model (after every gate, on
//!   every measurement and preparation), used both for exhaustive single-fault
//!   analysis during synthesis and for Monte-Carlo sampling in `dftsp-noise`,
//! * [`CircuitStats`] — gate counts and depth, the metrics reported in
//!   Table I.
//!
//! # Examples
//!
//! ```
//! use dftsp_circuit::{Circuit, Gate};
//! use dftsp_pauli::{Pauli, PauliString};
//!
//! // Measure the Z-stabilizer Z0 Z1 with an ancilla (qubit 2).
//! let mut circuit = Circuit::new(3);
//! circuit.prep_z(2);
//! circuit.cnot(0, 2);
//! circuit.cnot(1, 2);
//! let bit = circuit.measure_z(2);
//! assert_eq!(circuit.stats().cnot_count, 2);
//!
//! // An X error on qubit 0 before the circuit flips the measurement.
//! let mut tracker = dftsp_circuit::PauliTracker::new(&circuit);
//! tracker.inject(&PauliString::single(3, 0, Pauli::X));
//! tracker.run(..);
//! assert!(tracker.measurement_flipped(bit));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod faults;
mod gate;
mod metrics;
mod tracker;

pub use circuit::Circuit;
pub use faults::{
    enumerate_fault_sites, propagate_fault, single_fault_effects, FaultEffect, FaultSite,
    FaultSiteKind,
};
pub use gate::Gate;
pub use metrics::CircuitStats;
pub use tracker::PauliTracker;
