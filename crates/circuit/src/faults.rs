//! Circuit-level fault locations and their effects.
//!
//! The paper's noise model (the `E1_1` model of Qsample) places a fault with
//! probability `p` after every single-qubit gate, after every two-qubit gate,
//! on every preparation and on every measurement. Synthesis needs the
//! *exhaustive* list of single faults and their propagated effects (to find
//! the dangerous errors `E_X(C)`, `E_Z(C)`); the noise simulator samples the
//! same locations stochastically.

use dftsp_pauli::{Pauli, PauliString};

use crate::{Circuit, Gate, PauliTracker};

/// The class of a fault location, which determines the possible faults and
/// (in the noise model) their probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSiteKind {
    /// After a single-qubit unitary gate (H, X, Z).
    SingleQubitGate,
    /// After a two-qubit gate (CNOT).
    TwoQubitGate,
    /// After a preparation / reset.
    Preparation,
    /// On a measurement (classical outcome flip).
    Measurement,
}

/// A location in the circuit where a fault may occur.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSite {
    /// Index of the gate after which the fault acts.
    pub gate_index: usize,
    /// Class of the location.
    pub kind: FaultSiteKind,
    /// Qubits touched by the gate (and hence by the fault).
    pub qubits: Vec<usize>,
}

/// A concrete fault at a fault site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEffect {
    /// A Pauli error inserted immediately after the gate.
    Pauli(PauliString),
    /// A classical flip of the named measurement outcome.
    MeasurementFlip(usize),
}

impl FaultEffect {
    /// Returns the Pauli error, if this is a Pauli fault.
    pub fn pauli(&self) -> Option<&PauliString> {
        match self {
            FaultEffect::Pauli(p) => Some(p),
            FaultEffect::MeasurementFlip(_) => None,
        }
    }
}

/// Enumerates every fault location of the circuit, in gate order.
///
/// # Examples
///
/// ```
/// use dftsp_circuit::{enumerate_fault_sites, Circuit, FaultSiteKind};
///
/// let mut c = Circuit::new(2);
/// c.h(0);
/// c.cnot(0, 1);
/// c.measure_z(1);
/// let sites = enumerate_fault_sites(&c);
/// assert_eq!(sites.len(), 3);
/// assert_eq!(sites[1].kind, FaultSiteKind::TwoQubitGate);
/// ```
pub fn enumerate_fault_sites(circuit: &Circuit) -> Vec<FaultSite> {
    circuit
        .gates()
        .iter()
        .enumerate()
        .map(|(gate_index, gate)| {
            let kind = match gate {
                Gate::Cnot { .. } => FaultSiteKind::TwoQubitGate,
                Gate::H { .. } | Gate::X { .. } | Gate::Z { .. } => FaultSiteKind::SingleQubitGate,
                Gate::PrepZ { .. } | Gate::PrepX { .. } => FaultSiteKind::Preparation,
                Gate::MeasureZ { .. } | Gate::MeasureX { .. } => FaultSiteKind::Measurement,
            };
            FaultSite {
                gate_index,
                kind,
                qubits: gate.qubits(),
            }
        })
        .collect()
}

/// Enumerates the possible single faults at a fault site.
///
/// * Single-qubit gates and preparations: the three non-trivial Paulis on the
///   gate's qubit.
/// * Two-qubit gates: the fifteen non-trivial two-qubit Paulis.
/// * Measurements: a classical flip of the recorded outcome.
pub fn single_fault_effects(circuit: &Circuit, site: &FaultSite) -> Vec<FaultEffect> {
    let n = circuit.num_qubits();
    match site.kind {
        FaultSiteKind::SingleQubitGate | FaultSiteKind::Preparation => {
            let q = site.qubits[0];
            Pauli::ERRORS
                .iter()
                .map(|&p| FaultEffect::Pauli(PauliString::single(n, q, p)))
                .collect()
        }
        FaultSiteKind::TwoQubitGate => {
            let (a, b) = (site.qubits[0], site.qubits[1]);
            let mut out = Vec::with_capacity(15);
            for &pa in Pauli::ALL.iter() {
                for &pb in Pauli::ALL.iter() {
                    if pa == Pauli::I && pb == Pauli::I {
                        continue;
                    }
                    let mut e = PauliString::identity(n);
                    e.set(a, pa);
                    e.set(b, pb);
                    out.push(FaultEffect::Pauli(e));
                }
            }
            out
        }
        FaultSiteKind::Measurement => {
            let bit = circuit.gates()[site.gate_index]
                .measured_bit()
                .expect("measurement sites correspond to measurement gates");
            vec![FaultEffect::MeasurementFlip(bit)]
        }
    }
}

/// Propagates a single fault at `site` to the end of the circuit.
///
/// Returns the residual Pauli error on the qubits and the vector of flipped
/// measurement outcomes (the fault only affects gates *after* its site).
pub fn propagate_fault(
    circuit: &Circuit,
    site: &FaultSite,
    effect: &FaultEffect,
) -> (PauliString, dftsp_f2::BitVec) {
    let mut tracker = PauliTracker::new(circuit);
    match effect {
        FaultEffect::Pauli(p) => {
            tracker.inject(p);
            tracker.run(site.gate_index + 1..circuit.len());
        }
        FaultEffect::MeasurementFlip(bit) => {
            tracker.flip_measurement(*bit);
        }
    }
    tracker.into_parts()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftsp_pauli::PauliKind;

    fn stabilizer_measurement_circuit() -> Circuit {
        // Weight-4 Z-stabilizer measurement on qubits 0..4 with ancilla 4.
        let mut c = Circuit::new(5);
        c.prep_z(4);
        for q in 0..4 {
            c.cnot(q, 4);
        }
        c.measure_z(4);
        c
    }

    #[test]
    fn site_enumeration_classifies_gates() {
        let c = stabilizer_measurement_circuit();
        let sites = enumerate_fault_sites(&c);
        assert_eq!(sites.len(), 6);
        assert_eq!(sites[0].kind, FaultSiteKind::Preparation);
        assert!(sites[1..5]
            .iter()
            .all(|s| s.kind == FaultSiteKind::TwoQubitGate));
        assert_eq!(sites[5].kind, FaultSiteKind::Measurement);
        assert_eq!(sites[2].qubits, vec![1, 4]);
    }

    #[test]
    fn effect_counts_per_site_kind() {
        let c = stabilizer_measurement_circuit();
        let sites = enumerate_fault_sites(&c);
        assert_eq!(single_fault_effects(&c, &sites[0]).len(), 3);
        assert_eq!(single_fault_effects(&c, &sites[1]).len(), 15);
        assert_eq!(single_fault_effects(&c, &sites[5]).len(), 1);
    }

    #[test]
    fn hook_faults_are_found_by_exhaustive_propagation() {
        // Among all single faults of the stabilizer measurement there must be
        // one that leaves a weight-2 Z error on the data qubits (the hook
        // error of Example 2 in the paper).
        let c = stabilizer_measurement_circuit();
        let mut found_weight_two_z = false;
        for site in enumerate_fault_sites(&c) {
            for effect in single_fault_effects(&c, &site) {
                let (residual, _) = propagate_fault(&c, &site, &effect);
                let data_z: Vec<usize> = residual
                    .part(PauliKind::Z)
                    .support()
                    .into_iter()
                    .filter(|&q| q < 4)
                    .collect();
                if data_z.len() == 2 {
                    found_weight_two_z = true;
                }
            }
        }
        assert!(found_weight_two_z);
    }

    #[test]
    fn measurement_flip_effect_only_touches_classical_bit() {
        let c = stabilizer_measurement_circuit();
        let sites = enumerate_fault_sites(&c);
        let effects = single_fault_effects(&c, &sites[5]);
        let (residual, flips) = propagate_fault(&c, &sites[5], &effects[0]);
        assert!(residual.is_identity());
        assert_eq!(flips.support(), vec![0]);
        assert!(effects[0].pauli().is_none());
    }

    #[test]
    fn late_faults_do_not_propagate_through_earlier_gates() {
        let c = stabilizer_measurement_circuit();
        let sites = enumerate_fault_sites(&c);
        // An X fault on the ancilla after the last CNOT flips the measurement
        // but leaves no error on the data.
        let effect = FaultEffect::Pauli(PauliString::single(5, 4, Pauli::X));
        let (residual, flips) = propagate_fault(&c, &sites[4], &effect);
        assert!(flips.get(0));
        assert!(residual.support().into_iter().all(|q| q == 4));
    }
}
