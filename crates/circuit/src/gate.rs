//! Gate set of the fault-tolerant state-preparation circuits.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A single circuit operation.
///
/// The gate set is the minimal Clifford + measurement vocabulary needed for
/// CSS state preparation, verification and correction circuits: Hadamard,
/// CNOT, Pauli corrections, computational/conjugate basis preparation and
/// destructive-free single-qubit measurements.
///
/// Measurements write their outcome to a classical bit whose index is
/// assigned by [`Circuit`](crate::Circuit) when the measurement is appended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gate {
    /// Hadamard gate.
    H {
        /// Target qubit.
        qubit: usize,
    },
    /// Controlled-NOT gate.
    Cnot {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// Pauli X correction.
    X {
        /// Target qubit.
        qubit: usize,
    },
    /// Pauli Z correction.
    Z {
        /// Target qubit.
        qubit: usize,
    },
    /// Preparation of |0⟩ (reset in the computational basis).
    PrepZ {
        /// Target qubit.
        qubit: usize,
    },
    /// Preparation of |+⟩ (reset in the conjugate basis).
    PrepX {
        /// Target qubit.
        qubit: usize,
    },
    /// Single-qubit measurement in the Z basis.
    MeasureZ {
        /// Measured qubit.
        qubit: usize,
        /// Classical bit receiving the outcome.
        bit: usize,
    },
    /// Single-qubit measurement in the X basis.
    MeasureX {
        /// Measured qubit.
        qubit: usize,
        /// Classical bit receiving the outcome.
        bit: usize,
    },
}

impl Gate {
    /// Returns the qubits the gate acts on (one or two).
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Gate::H { qubit }
            | Gate::X { qubit }
            | Gate::Z { qubit }
            | Gate::PrepZ { qubit }
            | Gate::PrepX { qubit }
            | Gate::MeasureZ { qubit, .. }
            | Gate::MeasureX { qubit, .. } => vec![qubit],
            Gate::Cnot { control, target } => vec![control, target],
        }
    }

    /// Returns `true` for two-qubit gates.
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Gate::Cnot { .. })
    }

    /// Returns `true` for measurement gates.
    pub fn is_measurement(&self) -> bool {
        matches!(self, Gate::MeasureZ { .. } | Gate::MeasureX { .. })
    }

    /// Returns `true` for preparation (reset) gates.
    pub fn is_preparation(&self) -> bool {
        matches!(self, Gate::PrepZ { .. } | Gate::PrepX { .. })
    }

    /// Returns the classical bit written by a measurement gate.
    pub fn measured_bit(&self) -> Option<usize> {
        match *self {
            Gate::MeasureZ { bit, .. } | Gate::MeasureX { bit, .. } => Some(bit),
            _ => None,
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Gate::H { qubit } => write!(f, "h q{qubit}"),
            Gate::Cnot { control, target } => write!(f, "cx q{control}, q{target}"),
            Gate::X { qubit } => write!(f, "x q{qubit}"),
            Gate::Z { qubit } => write!(f, "z q{qubit}"),
            Gate::PrepZ { qubit } => write!(f, "reset q{qubit}"),
            Gate::PrepX { qubit } => write!(f, "reset_x q{qubit}"),
            Gate::MeasureZ { qubit, bit } => write!(f, "mz q{qubit} -> c{bit}"),
            Gate::MeasureX { qubit, bit } => write!(f, "mx q{qubit} -> c{bit}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_lists() {
        assert_eq!(Gate::H { qubit: 3 }.qubits(), vec![3]);
        assert_eq!(
            Gate::Cnot {
                control: 1,
                target: 4
            }
            .qubits(),
            vec![1, 4]
        );
        assert!(Gate::Cnot {
            control: 1,
            target: 4
        }
        .is_two_qubit());
        assert!(!Gate::H { qubit: 0 }.is_two_qubit());
    }

    #[test]
    fn classification() {
        assert!(Gate::MeasureZ { qubit: 0, bit: 0 }.is_measurement());
        assert!(Gate::MeasureX { qubit: 0, bit: 1 }.is_measurement());
        assert!(!Gate::X { qubit: 0 }.is_measurement());
        assert!(Gate::PrepZ { qubit: 0 }.is_preparation());
        assert!(Gate::PrepX { qubit: 0 }.is_preparation());
        assert_eq!(Gate::MeasureX { qubit: 2, bit: 7 }.measured_bit(), Some(7));
        assert_eq!(Gate::H { qubit: 2 }.measured_bit(), None);
    }

    #[test]
    fn display_format() {
        assert_eq!(
            Gate::Cnot {
                control: 0,
                target: 2
            }
            .to_string(),
            "cx q0, q2"
        );
        assert_eq!(
            Gate::MeasureZ { qubit: 5, bit: 1 }.to_string(),
            "mz q5 -> c1"
        );
    }

    #[test]
    fn gates_are_serializable() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<Gate>();
    }
}
