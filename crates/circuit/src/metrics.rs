//! Gate-count and depth metrics.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Circuit, Gate};

/// Summary metrics of a circuit, as reported in Table I of the paper.
///
/// # Examples
///
/// ```
/// use dftsp_circuit::Circuit;
///
/// let mut c = Circuit::new(3);
/// c.h(0);
/// c.cnot(0, 1);
/// c.cnot(0, 2);
/// let stats = c.stats();
/// assert_eq!(stats.cnot_count, 2);
/// assert_eq!(stats.single_qubit_count, 1);
/// assert_eq!(stats.depth, 3); // the two CNOTs share qubit 0
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitStats {
    /// Total number of gates (including preparations and measurements).
    pub num_gates: usize,
    /// Number of CNOT gates.
    pub cnot_count: usize,
    /// Number of single-qubit unitary gates (H, X, Z).
    pub single_qubit_count: usize,
    /// Number of measurements.
    pub measurement_count: usize,
    /// Number of preparation (reset) operations.
    pub preparation_count: usize,
    /// Circuit depth under the as-soon-as-possible schedule.
    pub depth: usize,
}

impl CircuitStats {
    /// Computes the statistics of a circuit.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut stats = CircuitStats {
            num_gates: circuit.len(),
            ..CircuitStats::default()
        };
        let mut qubit_depth = vec![0usize; circuit.num_qubits()];
        for gate in circuit.gates() {
            match gate {
                Gate::Cnot { .. } => stats.cnot_count += 1,
                Gate::H { .. } | Gate::X { .. } | Gate::Z { .. } => stats.single_qubit_count += 1,
                Gate::MeasureZ { .. } | Gate::MeasureX { .. } => stats.measurement_count += 1,
                Gate::PrepZ { .. } | Gate::PrepX { .. } => stats.preparation_count += 1,
            }
            let qubits = gate.qubits();
            let layer = qubits.iter().map(|&q| qubit_depth[q]).max().unwrap_or(0) + 1;
            for q in qubits {
                qubit_depth[q] = layer;
            }
        }
        stats.depth = qubit_depth.into_iter().max().unwrap_or(0);
        stats
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gates={} cnots={} 1q={} meas={} prep={} depth={}",
            self.num_gates,
            self.cnot_count,
            self.single_qubit_count,
            self.measurement_count,
            self.preparation_count,
            self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_circuit_stats() {
        let stats = Circuit::new(4).stats();
        assert_eq!(stats, CircuitStats::default());
    }

    #[test]
    fn counts_by_category() {
        let mut c = Circuit::new(3);
        c.prep_z(2);
        c.h(0);
        c.cnot(0, 2);
        c.cnot(1, 2);
        c.x(1);
        c.measure_z(2);
        let stats = c.stats();
        assert_eq!(stats.num_gates, 6);
        assert_eq!(stats.cnot_count, 2);
        assert_eq!(stats.single_qubit_count, 2);
        assert_eq!(stats.measurement_count, 1);
        assert_eq!(stats.preparation_count, 1);
        assert!(!stats.to_string().is_empty());
    }

    #[test]
    fn depth_accounts_for_parallelism() {
        let mut c = Circuit::new(4);
        // Two disjoint CNOTs can run in parallel: depth 1.
        c.cnot(0, 1);
        c.cnot(2, 3);
        assert_eq!(c.stats().depth, 1);
        // A third CNOT overlapping both adds two more layers? It overlaps
        // qubit 1 and 2, both at depth 1, so it lands at depth 2.
        c.cnot(1, 2);
        assert_eq!(c.stats().depth, 2);
    }

    #[test]
    fn sequential_chain_depth() {
        let mut c = Circuit::new(2);
        for _ in 0..5 {
            c.cnot(0, 1);
        }
        assert_eq!(c.stats().depth, 5);
    }
}
