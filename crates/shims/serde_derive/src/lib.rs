//! Offline stand-in for `serde_derive`: the derives expand to nothing.
//!
//! The companion `serde` shim provides blanket implementations of its
//! `Serialize`/`Deserialize` marker traits, so the derive macros only need to
//! exist for `#[derive(Serialize, Deserialize)]` attributes to parse.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
