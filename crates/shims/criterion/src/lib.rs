//! Offline stand-in for the parts of `criterion` this workspace uses.
//!
//! The build environment has no network access, so this minimal harness
//! provides the `criterion_group!`/`criterion_main!` macros, `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher` and `black_box`. Each benchmark
//! closure is timed over a small fixed number of iterations and the median
//! per-iteration time is printed; when the binary is invoked with `--test`
//! (as `cargo test` does for `harness = false` bench targets) every closure
//! runs exactly once as a smoke test.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of a parameterized benchmark, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A new id `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    last: Option<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the median per-call time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let samples = if self.test_mode { 1 } else { self.samples };
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.last = Some(times[times.len() / 2]);
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (clamped to keep the
    /// shim fast; the real Criterion statistics do not exist here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 10);
        self
    }

    /// Accepted for API compatibility; the shim ignores the target time.
    pub fn measurement_time(&mut self, _: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores the warm-up time.
    pub fn warm_up_time(&mut self, _: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, self.sample_size, |b| f(b));
        self
    }

    /// Runs one benchmark closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

/// The benchmark manager, mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 3,
        }
    }

    /// Runs a stand-alone benchmark closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let label = id.to_string();
        self.run_one(&label, 3, |b| f(b));
        self
    }

    fn run_one(&mut self, label: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            samples,
            last: None,
        };
        f(&mut bencher);
        match bencher.last {
            Some(t) => println!("bench {label:<50} {:>12.3?} / iter", t),
            None => println!("bench {label:<50} (no measurement)"),
        }
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
