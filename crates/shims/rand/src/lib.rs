//! Offline stand-in for the parts of `rand` 0.8 this workspace uses.
//!
//! The build environment has no network access, so instead of the crates.io
//! `rand` this minimal shim provides the exact API surface the workspace
//! calls: `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`,
//! `SliceRandom::shuffle` and `seq::index::sample`. The generator is a
//! xoshiro256** seeded through SplitMix64 — deterministic, uniform and more
//! than adequate for seeded Monte-Carlo sampling; it makes no attempt to
//! reproduce the crates.io `rand` stream bit-for-bit.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core interface of a random-number generator.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard generator: xoshiro256** behind the `StdRng` name.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types samplable uniformly by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws a uniform element of the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, bound)` by rejection-free multiply-shift.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    // Widening multiply maps 64 random bits onto [0, bound) with negligible
    // bias for the bounds used in this workspace.
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly random value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform element of `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling of slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The slice element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Index sampling without replacement, mirroring `rand::seq::index`.
    pub mod index {
        use super::super::{Rng, RngCore};

        /// A set of sampled indices.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Consumes the set into a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        /// Samples `amount` distinct indices from `0..length` (partial
        /// Fisher–Yates over the index set).
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices out of {length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// The usual glob-import surface, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=5u64);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let picked = super::seq::index::sample(&mut rng, 30, 10).into_vec();
        assert_eq!(picked.len(), 10);
        let set: std::collections::HashSet<_> = picked.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(picked.iter().all(|&i| i < 30));
    }
}
