//! Offline stand-in for the parts of `serde` this workspace uses.
//!
//! The build environment has no network access, so this shim provides the
//! `Serialize`/`Deserialize` names — as both marker traits (with blanket
//! implementations, so derived types satisfy generic bounds) and no-op derive
//! macros re-exported from the companion `serde_derive` shim. No actual
//! serialization is performed; swap in the crates.io `serde` to get it.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Deserializer-side traits, mirroring `serde::de`.
pub mod de {
    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
