//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! The build environment has no network access, so this shim provides the
//! `proptest!` macro, the [`Strategy`] combinators (`prop_map`,
//! `prop_flat_map`, ranges, tuples, `prop::collection::vec`, `any::<T>()`)
//! and the `prop_assert!`/`prop_assert_eq!` macros. Each test draws the
//! configured number of random cases from a deterministic per-test seed and
//! asserts directly; there is no shrinking — a failing case panics with the
//! bound values visible in the assertion message.

#![forbid(unsafe_code)]

use rand::prelude::*;

/// Random source threaded through strategy sampling.
pub struct TestRng(StdRng);

impl TestRng {
    /// A deterministic generator derived from the test's name.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(seed))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A sampleable value source, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of the produced values.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Produces a dependent strategy per drawn value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// Strategy adapter created by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample_value(rng)).sample_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng().gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen::<bool>()
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Draws a value for a bare `name: Type` parameter of the `proptest!` macro.
pub fn arbitrary_value<T: Arbitrary>(rng: &mut TestRng) -> T {
    T::arbitrary(rng)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::prelude::*;

    /// Sizes accepted by [`vec()`]: a fixed length or a length range.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.0.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.0.gen_range(self.clone())
        }
    }

    /// Strategy for vectors of values drawn from an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.sample_len(rng);
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    /// Vector strategy, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Runner configuration, mirroring `proptest::test_runner`.
pub mod test_runner {
    /// Per-test configuration (only the case count is honoured).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Namespace mirror of the crates.io layout (`prop::collection::vec`).
pub mod prop {
    pub use super::collection;
}

/// Glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{any, prop, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::sample_value(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample_value(&($strat), &mut $rng);
        $crate::__proptest_bind!{ $rng, $($rest)* }
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name: $ty = $crate::arbitrary_value(&mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::arbitrary_value(&mut $rng);
        $crate::__proptest_bind!{ $rng, $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident ( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $crate::__proptest_bind!{ __rng, $($params)* }
                $body
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_any(x in 3..10usize, flag: bool) {
            prop_assert!((3..10).contains(&x));
            let _ = flag;
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec(any::<bool>(), 8)) {
            prop_assert_eq!(v.len(), 8);
        }

        #[test]
        fn flat_map_dependent_sizes(v in (1..5usize).prop_flat_map(|n| prop::collection::vec(0..n, 1..=3).prop_map(move |xs| (n, xs)))) {
            let (n, xs) = v;
            prop_assert!(!xs.is_empty() && xs.len() <= 3);
            prop_assert!(xs.into_iter().all(|x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Doc comments before the test attribute must be accepted.
        #[test]
        fn configured_case_count(mask: u64) {
            let _ = mask;
        }
    }
}
