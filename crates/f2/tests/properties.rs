//! Property-based tests for the GF(2) linear algebra substrate.

use dftsp_f2::{solve, BitMatrix, BitVec};
use proptest::prelude::*;

/// Strategy producing a random bit vector of the given length.
fn bitvec(len: usize) -> impl Strategy<Value = BitVec> {
    prop::collection::vec(any::<bool>(), len).prop_map(|bits| BitVec::from_bools(&bits))
}

/// Strategy producing a random matrix with the given dimensions.
fn bitmatrix(rows: usize, cols: usize) -> impl Strategy<Value = BitMatrix> {
    prop::collection::vec(bitvec(cols), rows).prop_map(BitMatrix::from_rows)
}

proptest! {
    #[test]
    fn xor_is_involutive(a in bitvec(40), b in bitvec(40)) {
        let c = &(&a ^ &b) ^ &b;
        prop_assert_eq!(c, a);
    }

    #[test]
    fn xor_weight_parity(a in bitvec(40), b in bitvec(40)) {
        // |a ^ b| = |a| + |b| - 2|a & b|
        let overlap = a.overlap(&b);
        prop_assert_eq!((&a ^ &b).weight(), a.weight() + b.weight() - 2 * overlap);
    }

    #[test]
    fn dot_is_bilinear(a in bitvec(32), b in bitvec(32), c in bitvec(32)) {
        let lhs = (&a ^ &b).dot(&c);
        let rhs = a.dot(&c) ^ b.dot(&c);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn support_roundtrip(a in bitvec(64)) {
        let rebuilt = BitVec::from_indices(64, &a.support());
        prop_assert_eq!(rebuilt, a);
    }

    #[test]
    fn rref_preserves_row_space(m in bitmatrix(6, 10)) {
        let (r, _) = m.rref();
        for row in m.iter() {
            prop_assert!(r.in_row_space(row));
        }
        for row in r.iter() {
            prop_assert!(m.in_row_space(row));
        }
    }

    #[test]
    fn rank_plus_nullity_equals_cols(m in bitmatrix(7, 9)) {
        prop_assert_eq!(m.rank() + m.nullspace().num_rows(), m.num_cols());
    }

    #[test]
    fn nullspace_vectors_are_in_kernel(m in bitmatrix(5, 8)) {
        let ns = m.nullspace();
        for v in ns.iter() {
            prop_assert!(m.mul_vec(v).is_zero());
        }
        // The nullspace basis is linearly independent.
        prop_assert_eq!(ns.rank(), ns.num_rows());
    }

    #[test]
    fn express_in_rows_is_consistent(m in bitmatrix(5, 8), sel in bitvec(5)) {
        let target = m.combine_rows(&sel);
        let found = m.express_in_rows(&target).expect("combination is in row space");
        prop_assert_eq!(m.combine_rows(&found), target);
    }

    #[test]
    fn solve_finds_valid_solution(m in bitmatrix(6, 9), x in bitvec(9)) {
        // Construct a right-hand side that is guaranteed solvable.
        let b = m.mul_vec(&x);
        let out = solve(&m, &b);
        let sol = out.solution().expect("constructed system is solvable");
        prop_assert_eq!(m.mul_vec(sol), b);
    }

    #[test]
    fn transpose_swaps_mul_direction(m in bitmatrix(5, 7), x in bitvec(5)) {
        // xᵀ·A computed through combine_rows equals Aᵀ·x.
        prop_assert_eq!(m.combine_rows(&x), m.transpose().mul_vec(&x));
    }

    #[test]
    fn mul_mat_associates_with_mul_vec(a in bitmatrix(4, 5), b in bitmatrix(5, 6), x in bitvec(6)) {
        let lhs = a.mul_mat(&b).mul_vec(&x);
        let rhs = a.mul_vec(&b.mul_vec(&x));
        prop_assert_eq!(lhs, rhs);
    }
}
