//! Bit-packed linear algebra over the two-element field GF(2).
//!
//! Everything in the stabilizer formalism — Pauli operators, stabilizer
//! generators, syndromes, error vectors — can be represented as vectors and
//! matrices over GF(2). This crate provides the small, dependency-free
//! substrate used by every other crate in the workspace:
//!
//! * [`BitVec`] — a fixed-length vector over GF(2), bit-packed into `u64`
//!   words, with XOR arithmetic, inner products and support iteration.
//! * [`BitMatrix`] — a dense matrix over GF(2) with row reduction
//!   ([`BitMatrix::rref`]), rank, nullspace, row-space membership and linear
//!   system solving.
//!
//! # Examples
//!
//! ```
//! use dftsp_f2::{BitMatrix, BitVec};
//!
//! // The parity-check matrix of the classical [7,4,3] Hamming code.
//! let h = BitMatrix::from_dense(&[
//!     &[1, 0, 1, 0, 1, 0, 1][..],
//!     &[0, 1, 1, 0, 0, 1, 1][..],
//!     &[0, 0, 0, 1, 1, 1, 1][..],
//! ]);
//! assert_eq!(h.rank(), 3);
//! let codeword = BitVec::from_indices(7, &[0, 1, 2]);
//! assert!(h.mul_vec(&codeword).is_zero());
//! assert!(h.in_row_space(&BitVec::from_indices(7, &[0, 2, 4, 6])));
//! // A single bit flip produces a nonzero syndrome.
//! assert_eq!(h.mul_vec(&BitVec::unit(7, 6)).weight(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitvec;
mod matrix;
mod solve;

pub use bitvec::BitVec;
pub use matrix::BitMatrix;
pub use solve::{solve, SolveOutcome};
