//! Dense matrices over GF(2).

use std::fmt;

use crate::BitVec;

/// A dense matrix over GF(2), stored as a list of [`BitVec`] rows.
///
/// The matrix supports elementary row operations, reduced row echelon form,
/// rank, right-nullspace computation and row-space membership tests — the
/// operations needed to manipulate stabilizer groups, syndromes and logical
/// operators of CSS codes.
///
/// # Examples
///
/// ```
/// use dftsp_f2::BitMatrix;
///
/// let m = BitMatrix::from_dense(&[
///     &[1, 1, 0][..],
///     &[0, 1, 1][..],
///     &[1, 0, 1][..],
/// ]);
/// assert_eq!(m.rank(), 2);
/// let kernel = m.nullspace();
/// assert_eq!(kernel.num_rows(), 1);
/// assert!(m.mul_vec(kernel.row(0)).is_zero());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitMatrix {
    rows: Vec<BitVec>,
    ncols: usize,
}

impl BitMatrix {
    /// Creates an all-zero matrix with the given dimensions.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        BitMatrix {
            rows: vec![BitVec::zeros(ncols); nrows],
            ncols,
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.rows[i].set(i, true);
        }
        m
    }

    /// Creates a matrix from an iterator of rows.
    ///
    /// An empty iterator yields a `0 × 0` matrix.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows<I: IntoIterator<Item = BitVec>>(rows: I) -> Self {
        let rows: Vec<BitVec> = rows.into_iter().collect();
        let ncols = rows.first().map_or(0, BitVec::len);
        assert!(
            rows.iter().all(|r| r.len() == ncols),
            "matrix rows must have equal lengths"
        );
        BitMatrix { rows, ncols }
    }

    /// Creates a matrix with `ncols` columns from an iterator of rows, also
    /// accepting an empty row set.
    ///
    /// # Panics
    ///
    /// Panics if any row length differs from `ncols`.
    pub fn with_cols<I: IntoIterator<Item = BitVec>>(ncols: usize, rows: I) -> Self {
        let rows: Vec<BitVec> = rows.into_iter().collect();
        assert!(
            rows.iter().all(|r| r.len() == ncols),
            "matrix rows must have length {ncols}"
        );
        BitMatrix { rows, ncols }
    }

    /// Creates a matrix from dense 0/1 slices (any nonzero entry is 1).
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_dense(rows: &[&[u8]]) -> Self {
        Self::from_rows(rows.iter().map(|r| BitVec::from_bits(r)))
    }

    /// Returns the number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Returns the number of columns.
    pub fn num_cols(&self) -> usize {
        self.ncols
    }

    /// Returns `true` if the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Returns a reference to row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &BitVec {
        &self.rows[i]
    }

    /// Returns a mutable reference to row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row_mut(&mut self, i: usize) -> &mut BitVec {
        &mut self.rows[i]
    }

    /// Returns the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.rows[row].get(col)
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        self.rows[row].set(col, value);
    }

    /// Iterates over the rows.
    pub fn iter(&self) -> std::slice::Iter<'_, BitVec> {
        self.rows.iter()
    }

    /// Appends a row to the matrix.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the number of columns of a
    /// non-empty matrix.
    pub fn push_row(&mut self, row: BitVec) {
        if self.rows.is_empty() && self.ncols == 0 {
            self.ncols = row.len();
        }
        assert_eq!(row.len(), self.ncols, "row length must match matrix width");
        self.rows.push(row);
    }

    /// Returns column `j` as a vector of length `num_rows()`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn column(&self, j: usize) -> BitVec {
        assert!(j < self.ncols, "column index {j} out of range");
        let mut v = BitVec::zeros(self.rows.len());
        for (i, row) in self.rows.iter().enumerate() {
            if row.get(j) {
                v.set(i, true);
            }
        }
        v
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> BitMatrix {
        let mut t = BitMatrix::zeros(self.ncols, self.rows.len());
        for (i, row) in self.rows.iter().enumerate() {
            for j in row.iter_ones() {
                t.rows[j].set(i, true);
            }
        }
        t
    }

    /// Computes the matrix-vector product `A·x` over GF(2).
    ///
    /// The result has one entry per row: the parity `⟨row_i, x⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_cols()`.
    pub fn mul_vec(&self, x: &BitVec) -> BitVec {
        assert_eq!(x.len(), self.ncols, "vector length must match matrix width");
        let mut out = BitVec::zeros(self.rows.len());
        for (i, row) in self.rows.iter().enumerate() {
            if row.dot(x) {
                out.set(i, true);
            }
        }
        out
    }

    /// Computes the vector-matrix product `xᵀ·A` over GF(2): the XOR of the
    /// rows selected by `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_rows()`.
    pub fn combine_rows(&self, x: &BitVec) -> BitVec {
        assert_eq!(
            x.len(),
            self.rows.len(),
            "selector length must match row count"
        );
        let mut out = BitVec::zeros(self.ncols);
        for i in x.iter_ones() {
            out.xor_with(&self.rows[i]);
        }
        out
    }

    /// Computes the matrix product `A·B` over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if `self.num_cols() != other.num_rows()`.
    pub fn mul_mat(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(
            self.ncols,
            other.rows.len(),
            "inner dimensions must match for matrix product"
        );
        let rows = self
            .rows
            .iter()
            .map(|row| other.combine_rows(row))
            .collect::<Vec<_>>();
        BitMatrix::with_cols(other.ncols, rows)
    }

    /// Stacks `other` below `self`, returning the vertical concatenation.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ (unless one matrix is `0 × 0`).
    pub fn vstack(&self, other: &BitMatrix) -> BitMatrix {
        if self.rows.is_empty() && self.ncols == 0 {
            return other.clone();
        }
        if other.rows.is_empty() && other.ncols == 0 {
            return self.clone();
        }
        assert_eq!(
            self.ncols, other.ncols,
            "vstack requires equal column counts"
        );
        let mut rows = self.rows.clone();
        rows.extend(other.rows.iter().cloned());
        BitMatrix::with_cols(self.ncols, rows)
    }

    /// Concatenates `other` to the right of `self`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(
            self.rows.len(),
            other.rows.len(),
            "hstack requires equal row counts"
        );
        let rows = self
            .rows
            .iter()
            .zip(&other.rows)
            .map(|(a, b)| a.concat(b))
            .collect::<Vec<_>>();
        BitMatrix::with_cols(self.ncols + other.ncols, rows)
    }

    /// Transforms the matrix in place into reduced row echelon form and
    /// returns the pivot columns in order.
    pub fn rref_in_place(&mut self) -> Vec<usize> {
        let mut pivots = Vec::new();
        let mut pivot_row = 0;
        for col in 0..self.ncols {
            if pivot_row >= self.rows.len() {
                break;
            }
            // Find a row at or below pivot_row with a 1 in this column.
            let found = (pivot_row..self.rows.len()).find(|&r| self.rows[r].get(col));
            let Some(r) = found else { continue };
            self.rows.swap(pivot_row, r);
            // Eliminate this column from every other row.
            let pivot = self.rows[pivot_row].clone();
            for (i, row) in self.rows.iter_mut().enumerate() {
                if i != pivot_row && row.get(col) {
                    row.xor_with(&pivot);
                }
            }
            pivots.push(col);
            pivot_row += 1;
        }
        pivots
    }

    /// Returns the reduced row echelon form together with the pivot columns.
    pub fn rref(&self) -> (BitMatrix, Vec<usize>) {
        let mut m = self.clone();
        let pivots = m.rref_in_place();
        (m, pivots)
    }

    /// Returns the rank over GF(2).
    pub fn rank(&self) -> usize {
        self.rref().1.len()
    }

    /// Returns a matrix whose rows form a basis of the row space (the nonzero
    /// rows of the RREF).
    pub fn row_basis(&self) -> BitMatrix {
        let (r, pivots) = self.rref();
        BitMatrix::with_cols(self.ncols, r.rows.into_iter().take(pivots.len()))
    }

    /// Returns a basis of the right nullspace `{x : A·x = 0}` as the rows of
    /// a matrix with `num_cols()` columns.
    pub fn nullspace(&self) -> BitMatrix {
        let (r, pivots) = self.rref();
        let pivot_set: std::collections::HashSet<usize> = pivots.iter().copied().collect();
        let free: Vec<usize> = (0..self.ncols).filter(|c| !pivot_set.contains(c)).collect();
        let mut basis = Vec::with_capacity(free.len());
        for &f in &free {
            let mut v = BitVec::zeros(self.ncols);
            v.set(f, true);
            // For each pivot row, the pivot variable equals the sum of the free
            // variables appearing in that row.
            for (row_idx, &p) in pivots.iter().enumerate() {
                if r.rows[row_idx].get(f) {
                    v.set(p, true);
                }
            }
            basis.push(v);
        }
        BitMatrix::with_cols(self.ncols, basis)
    }

    /// Returns `true` if `v` lies in the row space of the matrix.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != num_cols()`.
    pub fn in_row_space(&self, v: &BitVec) -> bool {
        assert_eq!(v.len(), self.ncols, "vector length must match matrix width");
        let mut m = self.clone();
        let pivots = m.rref_in_place();
        let mut residual = v.clone();
        for (row_idx, &p) in pivots.iter().enumerate() {
            if residual.get(p) {
                residual.xor_with(&m.rows[row_idx]);
            }
        }
        residual.is_zero()
    }

    /// Expresses `v` as a combination of the matrix rows, returning the
    /// selector vector (length `num_rows()`), or `None` if `v` is not in the
    /// row space.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != num_cols()`.
    pub fn express_in_rows(&self, v: &BitVec) -> Option<BitVec> {
        assert_eq!(v.len(), self.ncols, "vector length must match matrix width");
        // Row-reduce [A | I] so we can track which original rows combine into
        // each reduced row.
        let tracked = self.hstack(&BitMatrix::identity(self.rows.len()));
        let mut m = tracked;
        // Only pivot on the first `ncols` columns.
        let mut pivots = Vec::new();
        let mut pivot_row = 0;
        for col in 0..self.ncols {
            if pivot_row >= m.rows.len() {
                break;
            }
            let found = (pivot_row..m.rows.len()).find(|&r| m.rows[r].get(col));
            let Some(r) = found else { continue };
            m.rows.swap(pivot_row, r);
            let pivot = m.rows[pivot_row].clone();
            for (i, row) in m.rows.iter_mut().enumerate() {
                if i != pivot_row && row.get(col) {
                    row.xor_with(&pivot);
                }
            }
            pivots.push(col);
            pivot_row += 1;
        }
        let mut residual = v.clone();
        let mut selector = BitVec::zeros(self.rows.len());
        for (row_idx, &p) in pivots.iter().enumerate() {
            if residual.get(p) {
                residual.xor_with(&m.rows[row_idx].slice(0..self.ncols));
                selector.xor_with(&m.rows[row_idx].slice(self.ncols..self.ncols + self.rows.len()));
            }
        }
        if residual.is_zero() {
            Some(selector)
        } else {
            None
        }
    }

    /// Enumerates all `2^num_rows()` vectors in the row span.
    ///
    /// Intended for small matrices (e.g. stabilizer groups of near-term
    /// codes); the iterator yields `2^r` elements where `r = num_rows()`.
    ///
    /// # Panics
    ///
    /// Panics if `num_rows() >= 30` to guard against accidental blow-up.
    pub fn iter_span(&self) -> impl Iterator<Item = BitVec> + '_ {
        let r = self.rows.len();
        assert!(r < 30, "span enumeration of {r} rows would be too large");
        (0..(1u64 << r)).map(move |mask| {
            let mut v = BitVec::zeros(self.ncols);
            for (i, row) in self.rows.iter().enumerate() {
                if (mask >> i) & 1 == 1 {
                    v.xor_with(row);
                }
            }
            v
        })
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix({}x{}) [", self.rows.len(), self.ncols)?;
        for row in &self.rows {
            writeln!(f, "  {row}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{row}")?;
        }
        Ok(())
    }
}

impl FromIterator<BitVec> for BitMatrix {
    fn from_iter<T: IntoIterator<Item = BitVec>>(iter: T) -> Self {
        BitMatrix::from_rows(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hamming_h() -> BitMatrix {
        BitMatrix::from_dense(&[
            &[1, 0, 1, 0, 1, 0, 1][..],
            &[0, 1, 1, 0, 0, 1, 1][..],
            &[0, 0, 0, 1, 1, 1, 1][..],
        ])
    }

    #[test]
    fn identity_properties() {
        let id = BitMatrix::identity(5);
        assert_eq!(id.rank(), 5);
        assert_eq!(id.nullspace().num_rows(), 0);
        let v = BitVec::from_indices(5, &[1, 3]);
        assert_eq!(id.mul_vec(&v), v);
    }

    #[test]
    fn rref_and_rank() {
        let m = BitMatrix::from_dense(&[&[1, 1, 0][..], &[0, 1, 1][..], &[1, 0, 1][..]]);
        assert_eq!(m.rank(), 2);
        let (r, pivots) = m.rref();
        assert_eq!(pivots, vec![0, 1]);
        assert!(r.row(2).is_zero());
    }

    #[test]
    fn nullspace_is_kernel() {
        let h = hamming_h();
        let ns = h.nullspace();
        assert_eq!(ns.num_rows(), 4);
        for row in ns.iter() {
            assert!(h.mul_vec(row).is_zero());
        }
        assert_eq!(ns.rank(), 4);
    }

    #[test]
    fn row_space_membership() {
        let h = hamming_h();
        let sum01 = &h.row(0).clone() ^ h.row(1);
        assert!(h.in_row_space(&sum01));
        assert!(h.in_row_space(&BitVec::zeros(7)));
        assert!(!h.in_row_space(&BitVec::unit(7, 0)));
    }

    #[test]
    fn express_in_rows_matches_combination() {
        let h = hamming_h();
        let target = &h.row(0).clone() ^ h.row(2);
        let sel = h.express_in_rows(&target).expect("in row space");
        assert_eq!(h.combine_rows(&sel), target);
        assert!(h.express_in_rows(&BitVec::unit(7, 1)).is_none());
    }

    #[test]
    fn transpose_involution() {
        let h = hamming_h();
        assert_eq!(h.transpose().transpose(), h);
        assert_eq!(h.transpose().num_rows(), 7);
        assert_eq!(h.transpose().num_cols(), 3);
    }

    #[test]
    fn mul_vec_and_combine_rows() {
        let h = hamming_h();
        // Column 6 = (1,1,1): unit vector at position 6 has syndrome 111.
        assert_eq!(h.mul_vec(&BitVec::unit(7, 6)).support(), vec![0, 1, 2]);
        let sel = BitVec::from_indices(3, &[0, 2]);
        let combined = h.combine_rows(&sel);
        assert_eq!(combined, &h.row(0).clone() ^ h.row(2));
    }

    #[test]
    fn mul_mat_against_identity() {
        let h = hamming_h();
        assert_eq!(h.mul_mat(&BitMatrix::identity(7)), h);
        assert_eq!(BitMatrix::identity(3).mul_mat(&h), h);
    }

    #[test]
    fn mul_mat_matches_manual() {
        let a = BitMatrix::from_dense(&[&[1, 1][..], &[0, 1][..]]);
        let b = BitMatrix::from_dense(&[&[1, 0, 1][..], &[1, 1, 0][..]]);
        let c = a.mul_mat(&b);
        assert_eq!(c, BitMatrix::from_dense(&[&[0, 1, 1][..], &[1, 1, 0][..]]));
    }

    #[test]
    fn stacking() {
        let a = BitMatrix::from_dense(&[&[1, 0][..]]);
        let b = BitMatrix::from_dense(&[&[0, 1][..]]);
        let v = a.vstack(&b);
        assert_eq!(v.num_rows(), 2);
        let h = a.hstack(&b);
        assert_eq!(h.num_cols(), 4);
        assert_eq!(h.row(0).support(), vec![0, 3]);
        let empty = BitMatrix::default();
        assert_eq!(empty.vstack(&a), a);
        assert_eq!(a.vstack(&empty), a);
    }

    #[test]
    fn column_extraction() {
        let h = hamming_h();
        assert_eq!(h.column(6).support(), vec![0, 1, 2]);
        assert_eq!(h.column(0).support(), vec![0]);
    }

    #[test]
    fn row_basis_spans_same_space() {
        let m = BitMatrix::from_dense(&[&[1, 1, 0][..], &[0, 1, 1][..], &[1, 0, 1][..]]);
        let basis = m.row_basis();
        assert_eq!(basis.num_rows(), 2);
        for row in m.iter() {
            assert!(basis.in_row_space(row));
        }
    }

    #[test]
    fn iter_span_enumerates_group() {
        let m = BitMatrix::from_dense(&[&[1, 1, 0][..], &[0, 1, 1][..]]);
        let elems: Vec<BitVec> = m.iter_span().collect();
        assert_eq!(elems.len(), 4);
        let unique: std::collections::HashSet<_> = elems.iter().map(|v| v.to_bits()).collect();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn push_row_grows_matrix() {
        let mut m = BitMatrix::default();
        m.push_row(BitVec::from_indices(4, &[0]));
        m.push_row(BitVec::from_indices(4, &[1, 2]));
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.num_cols(), 4);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn inconsistent_rows_panic() {
        BitMatrix::from_rows(vec![BitVec::zeros(3), BitVec::zeros(4)]);
    }
}
