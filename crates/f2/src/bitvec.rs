//! Fixed-length bit vectors over GF(2).

use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitXor, BitXorAssign};

/// A fixed-length vector over GF(2), bit-packed into `u64` words.
///
/// Addition over GF(2) is XOR, multiplication is AND. The vector length is
/// fixed at construction time; all binary operations require both operands to
/// have the same length.
///
/// # Examples
///
/// ```
/// use dftsp_f2::BitVec;
///
/// let a = BitVec::from_indices(5, &[0, 2, 4]);
/// let b = BitVec::from_indices(5, &[2, 3]);
/// let sum = &a ^ &b;
/// assert_eq!(sum.support(), vec![0, 3, 4]);
/// assert_eq!(a.dot(&b), true); // overlap {2} has odd size
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

const WORD_BITS: usize = 64;

impl BitVec {
    /// Creates an all-zero vector of length `len`.
    ///
    /// ```
    /// # use dftsp_f2::BitVec;
    /// let v = BitVec::zeros(10);
    /// assert!(v.is_zero());
    /// assert_eq!(v.len(), 10);
    /// ```
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Creates an all-ones vector of length `len`.
    pub fn ones(len: usize) -> Self {
        let mut v = Self::zeros(len);
        for i in 0..len {
            v.set(i, true);
        }
        v
    }

    /// Creates a vector of length `len` with ones exactly at `indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn from_indices(len: usize, indices: &[usize]) -> Self {
        let mut v = Self::zeros(len);
        for &i in indices {
            v.set(i, true);
        }
        v
    }

    /// Creates a vector from a slice of 0/1 integers.
    ///
    /// Any nonzero entry is interpreted as 1.
    pub fn from_bits(bits: &[u8]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b != 0);
        }
        v
    }

    /// Creates a vector from a slice of booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }

    /// Creates the `i`-th standard basis vector of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn unit(len: usize, i: usize) -> Self {
        Self::from_indices(len, &[i])
    }

    /// Returns the number of coordinates.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector has zero coordinates.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range for length {}",
            self.len
        );
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets the bit at position `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range for length {}",
            self.len
        );
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Flips the bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn flip(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit index {i} out of range for length {}",
            self.len
        );
        self.words[i / WORD_BITS] ^= 1u64 << (i % WORD_BITS);
    }

    /// Returns the Hamming weight (number of ones).
    pub fn weight(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if every coordinate is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Computes the GF(2) inner product `⟨self, other⟩` (parity of the
    /// overlap).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &BitVec) -> bool {
        assert_eq!(
            self.len, other.len,
            "dot product of vectors with different lengths"
        );
        let mut acc = 0u32;
        for (a, b) in self.words.iter().zip(&other.words) {
            acc ^= (a & b).count_ones() & 1;
        }
        acc & 1 == 1
    }

    /// Returns the indices of the nonzero coordinates in increasing order.
    pub fn support(&self) -> Vec<usize> {
        self.iter_ones().collect()
    }

    /// Iterates over the indices of nonzero coordinates in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let base = wi * WORD_BITS;
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(base + tz)
                }
            })
        })
    }

    /// Returns the index of the first nonzero coordinate, if any.
    pub fn first_one(&self) -> Option<usize> {
        self.iter_ones().next()
    }

    /// XORs `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "xor of vectors with different lengths");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// ORs `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn or_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "or of vectors with different lengths");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// ANDs `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "and of vectors with different lengths");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Returns the concatenation `self ∥ other`.
    pub fn concat(&self, other: &BitVec) -> BitVec {
        let mut out = BitVec::zeros(self.len + other.len);
        for i in self.iter_ones() {
            out.set(i, true);
        }
        for i in other.iter_ones() {
            out.set(self.len + i, true);
        }
        out
    }

    /// Returns the sub-vector covering coordinates `range.start..range.end`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn slice(&self, range: std::ops::Range<usize>) -> BitVec {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice range out of bounds"
        );
        let mut out = BitVec::zeros(range.end - range.start);
        for (j, i) in range.enumerate() {
            if self.get(i) {
                out.set(j, true);
            }
        }
        out
    }

    /// Converts the vector into a `Vec<u8>` of 0/1 entries.
    pub fn to_bits(&self) -> Vec<u8> {
        (0..self.len).map(|i| u8::from(self.get(i))).collect()
    }

    /// Returns `true` if the supports of `self` and `other` intersect.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn intersects(&self, other: &BitVec) -> bool {
        assert_eq!(
            self.len, other.len,
            "intersects of vectors with different lengths"
        );
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Returns the number of coordinates where both vectors are 1.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn overlap(&self, other: &BitVec) -> usize {
        assert_eq!(
            self.len, other.len,
            "overlap of vectors with different lengths"
        );
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{self}]")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

impl BitXorAssign<&BitVec> for BitVec {
    fn bitxor_assign(&mut self, rhs: &BitVec) {
        self.xor_with(rhs);
    }
}

impl BitXor<&BitVec> for &BitVec {
    type Output = BitVec;

    fn bitxor(self, rhs: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.xor_with(rhs);
        out
    }
}

impl std::ops::BitOrAssign<&BitVec> for BitVec {
    fn bitor_assign(&mut self, rhs: &BitVec) {
        self.or_with(rhs);
    }
}

impl std::ops::BitOr<&BitVec> for &BitVec {
    type Output = BitVec;

    fn bitor(self, rhs: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.or_with(rhs);
        out
    }
}

impl BitAndAssign<&BitVec> for BitVec {
    fn bitand_assign(&mut self, rhs: &BitVec) {
        self.and_with(rhs);
    }
}

impl BitAnd<&BitVec> for &BitVec {
    type Output = BitVec;

    fn bitand(self, rhs: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.and_with(rhs);
        out
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        BitVec::from_bools(&bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_zero() {
        let v = BitVec::zeros(100);
        assert!(v.is_zero());
        assert_eq!(v.weight(), 0);
        assert_eq!(v.len(), 100);
        assert!(!v.is_empty());
        assert!(BitVec::zeros(0).is_empty());
    }

    #[test]
    fn ones_has_full_weight() {
        let v = BitVec::ones(70);
        assert_eq!(v.weight(), 70);
        assert!((0..70).all(|i| v.get(i)));
    }

    #[test]
    fn set_get_flip_roundtrip() {
        let mut v = BitVec::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert_eq!(v.weight(), 3);
        v.flip(64);
        assert!(!v.get(64));
        v.set(0, false);
        assert_eq!(v.support(), vec![129]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(5).get(5);
    }

    #[test]
    fn from_indices_and_support() {
        let v = BitVec::from_indices(10, &[9, 1, 5, 1]);
        assert_eq!(v.support(), vec![1, 5, 9]);
        assert_eq!(v.weight(), 3);
    }

    #[test]
    fn from_bits_and_to_bits_roundtrip() {
        let bits = [1u8, 0, 0, 1, 1, 0, 1];
        let v = BitVec::from_bits(&bits);
        assert_eq!(v.to_bits(), bits.to_vec());
        let w = BitVec::from_bools(&[true, false, false, true, true, false, true]);
        assert_eq!(v, w);
    }

    #[test]
    fn xor_is_symmetric_difference() {
        let a = BitVec::from_indices(8, &[0, 1, 2]);
        let b = BitVec::from_indices(8, &[2, 3]);
        let c = &a ^ &b;
        assert_eq!(c.support(), vec![0, 1, 3]);
        let mut d = a.clone();
        d ^= &b;
        assert_eq!(c, d);
    }

    #[test]
    fn or_is_union() {
        let a = BitVec::from_indices(8, &[0, 1]);
        let b = BitVec::from_indices(8, &[1, 5]);
        assert_eq!((&a | &b).support(), vec![0, 1, 5]);
        let mut c = a;
        c |= &b;
        assert_eq!(c.weight(), 3);
    }

    #[test]
    fn and_is_intersection() {
        let a = BitVec::from_indices(8, &[0, 1, 2, 5]);
        let b = BitVec::from_indices(8, &[2, 3, 5]);
        assert_eq!((&a & &b).support(), vec![2, 5]);
        assert_eq!(a.overlap(&b), 2);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&BitVec::from_indices(8, &[4, 7])));
    }

    #[test]
    fn dot_is_overlap_parity() {
        let a = BitVec::from_indices(9, &[0, 1, 4, 5]);
        let b = BitVec::from_indices(9, &[1, 4, 8]);
        assert!(!a.dot(&b)); // overlap {1,4} even
        let c = BitVec::from_indices(9, &[1, 8]);
        assert!(a.dot(&c)); // overlap {1} odd
        assert!(!a.dot(&BitVec::zeros(9)));
    }

    #[test]
    fn unit_vectors() {
        let e3 = BitVec::unit(6, 3);
        assert_eq!(e3.support(), vec![3]);
        assert_eq!(e3.first_one(), Some(3));
        assert_eq!(BitVec::zeros(6).first_one(), None);
    }

    #[test]
    fn concat_and_slice() {
        let a = BitVec::from_indices(4, &[1, 3]);
        let b = BitVec::from_indices(3, &[0]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 7);
        assert_eq!(c.support(), vec![1, 3, 4]);
        assert_eq!(c.slice(0..4), a);
        assert_eq!(c.slice(4..7), b);
        assert_eq!(c.slice(3..5).support(), vec![0, 1]);
    }

    #[test]
    fn iter_ones_crosses_word_boundaries() {
        let v = BitVec::from_indices(200, &[0, 63, 64, 127, 128, 199]);
        assert_eq!(v.support(), vec![0, 63, 64, 127, 128, 199]);
    }

    #[test]
    fn display_format() {
        let v = BitVec::from_indices(5, &[0, 3]);
        assert_eq!(v.to_string(), "10010");
        assert_eq!(format!("{v:?}"), "BitVec[10010]");
    }

    #[test]
    fn from_iterator_collect() {
        let v: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(v.support(), vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "different lengths")]
    fn mismatched_xor_panics() {
        let mut a = BitVec::zeros(3);
        a.xor_with(&BitVec::zeros(4));
    }
}
