//! Solving linear systems `A·x = b` over GF(2).

use crate::{BitMatrix, BitVec};

/// Outcome of solving a linear system over GF(2).
///
/// Produced by [`solve`]. On success it carries one particular solution and a
/// basis for the solution space offset (the nullspace of `A`), so callers can
/// enumerate or optimize over all solutions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveOutcome {
    /// The system has at least one solution.
    Solvable {
        /// A particular solution `x₀` with `A·x₀ = b`.
        particular: BitVec,
        /// A basis of the homogeneous solutions; every solution is
        /// `x₀ + Σ cᵢ·hᵢ`.
        homogeneous: BitMatrix,
    },
    /// The system is inconsistent.
    Inconsistent,
}

impl SolveOutcome {
    /// Returns the particular solution if the system is solvable.
    pub fn solution(&self) -> Option<&BitVec> {
        match self {
            SolveOutcome::Solvable { particular, .. } => Some(particular),
            SolveOutcome::Inconsistent => None,
        }
    }

    /// Returns `true` if the system is solvable.
    pub fn is_solvable(&self) -> bool {
        matches!(self, SolveOutcome::Solvable { .. })
    }

    /// Enumerates every solution of the system (empty for an inconsistent
    /// system).
    ///
    /// # Panics
    ///
    /// Panics if the homogeneous space has dimension ≥ 30.
    pub fn iter_solutions(&self) -> Box<dyn Iterator<Item = BitVec> + '_> {
        match self {
            SolveOutcome::Inconsistent => Box::new(std::iter::empty()),
            SolveOutcome::Solvable {
                particular,
                homogeneous,
            } => Box::new(homogeneous.iter_span().map(move |h| &h ^ particular)),
        }
    }
}

/// Solves `A·x = b` over GF(2).
///
/// Returns [`SolveOutcome::Solvable`] with a particular solution and the
/// nullspace basis, or [`SolveOutcome::Inconsistent`].
///
/// # Panics
///
/// Panics if `b.len() != a.num_rows()`.
///
/// # Examples
///
/// ```
/// use dftsp_f2::{solve, BitMatrix, BitVec};
///
/// let a = BitMatrix::from_dense(&[&[1, 1, 0][..], &[0, 1, 1][..]]);
/// let b = BitVec::from_bits(&[1, 0]);
/// let outcome = solve(&a, &b);
/// let x = outcome.solution().expect("solvable");
/// assert_eq!(a.mul_vec(x), b);
/// ```
pub fn solve(a: &BitMatrix, b: &BitVec) -> SolveOutcome {
    assert_eq!(
        b.len(),
        a.num_rows(),
        "right-hand side length must match the number of rows"
    );
    // Row-reduce the augmented matrix [A | b].
    let b_col = BitMatrix::with_cols(
        1,
        b.iter_ones()
            .fold(vec![BitVec::zeros(1); b.len()], |mut acc, i| {
                acc[i].set(0, true);
                acc
            }),
    );
    let aug = a.hstack(&b_col);
    let (r, pivots) = aug.rref();
    let n = a.num_cols();
    // Inconsistent iff some pivot lands in the augmented column.
    if pivots.contains(&n) {
        return SolveOutcome::Inconsistent;
    }
    let mut particular = BitVec::zeros(n);
    for (row_idx, &p) in pivots.iter().enumerate() {
        if r.row(row_idx).get(n) {
            particular.set(p, true);
        }
    }
    SolveOutcome::Solvable {
        particular,
        homogeneous: a.nullspace(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solvable_system() {
        let a = BitMatrix::from_dense(&[&[1, 1, 0][..], &[0, 1, 1][..]]);
        let b = BitVec::from_bits(&[1, 0]);
        let out = solve(&a, &b);
        assert!(out.is_solvable());
        let x = out.solution().unwrap();
        assert_eq!(a.mul_vec(x), b);
    }

    #[test]
    fn inconsistent_system() {
        // x1 = 0 and x1 = 1 simultaneously.
        let a = BitMatrix::from_dense(&[&[1, 0][..], &[1, 0][..]]);
        let b = BitVec::from_bits(&[0, 1]);
        assert_eq!(solve(&a, &b), SolveOutcome::Inconsistent);
        assert!(solve(&a, &b).solution().is_none());
        assert_eq!(solve(&a, &b).iter_solutions().count(), 0);
    }

    #[test]
    fn all_solutions_satisfy_system() {
        let a = BitMatrix::from_dense(&[&[1, 1, 0, 0][..], &[0, 0, 1, 1][..]]);
        let b = BitVec::from_bits(&[1, 1]);
        let out = solve(&a, &b);
        let sols: Vec<BitVec> = out.iter_solutions().collect();
        assert_eq!(sols.len(), 4); // 2-dimensional homogeneous space
        for x in &sols {
            assert_eq!(a.mul_vec(x), b);
        }
        // Solutions are distinct.
        let unique: std::collections::HashSet<_> = sols.iter().map(|v| v.to_bits()).collect();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn zero_rhs_gives_nullspace() {
        let a = BitMatrix::from_dense(&[&[1, 1, 1][..]]);
        let out = solve(&a, &BitVec::zeros(1));
        match out {
            SolveOutcome::Solvable {
                particular,
                homogeneous,
            } => {
                assert!(particular.is_zero());
                assert_eq!(homogeneous.num_rows(), 2);
            }
            SolveOutcome::Inconsistent => panic!("homogeneous system is always solvable"),
        }
    }

    #[test]
    fn square_invertible_system_has_unique_solution() {
        let a = BitMatrix::from_dense(&[&[1, 1, 0][..], &[0, 1, 0][..], &[0, 0, 1][..]]);
        let b = BitVec::from_bits(&[1, 1, 1]);
        let out = solve(&a, &b);
        assert_eq!(out.iter_solutions().count(), 1);
        assert_eq!(a.mul_vec(out.solution().unwrap()), b);
    }
}
