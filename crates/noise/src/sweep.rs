//! Logical-error-rate curves over a range of physical error rates (Fig. 4).

use dftsp::DeterministicProtocol;

use crate::sampler::Estimate;
use crate::subset::{SubsetConfig, SubsetEstimate};

/// One point of a logical-error-rate curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Physical error rate.
    pub physical: f64,
    /// Estimated logical error rate.
    pub logical: Estimate,
}

/// A named logical-error-rate curve (one series of Fig. 4).
#[derive(Debug, Clone)]
pub struct ErrorRateCurve {
    /// Label of the series (usually the code name).
    pub label: String,
    /// Curve points, ordered by increasing physical error rate.
    pub points: Vec<CurvePoint>,
}

impl ErrorRateCurve {
    /// Fits the slope of `log p_L` against `log p` over the points with a
    /// positive logical error rate — ≈ 2 for a fault-tolerant protocol.
    pub fn log_log_slope(&self) -> Option<f64> {
        let data: Vec<(f64, f64)> = self
            .points
            .iter()
            .filter(|pt| pt.logical.mean > 0.0)
            .map(|pt| (pt.physical.ln(), pt.logical.mean.ln()))
            .collect();
        if data.len() < 2 {
            return None;
        }
        let n = data.len() as f64;
        let sx: f64 = data.iter().map(|(x, _)| x).sum();
        let sy: f64 = data.iter().map(|(_, y)| y).sum();
        let sxx: f64 = data.iter().map(|(x, _)| x * x).sum();
        let sxy: f64 = data.iter().map(|(x, y)| x * y).sum();
        let denominator = n * sxx - sx * sx;
        (denominator.abs() > 1e-12).then(|| (n * sxy - sx * sy) / denominator)
    }
}

/// A geometric grid of physical error rates, matching the range of Fig. 4
/// (`10⁻⁴` to `10⁻¹`).
pub fn default_physical_rates(points_per_decade: usize) -> Vec<f64> {
    let mut rates = Vec::new();
    let total = 3 * points_per_decade;
    for i in 0..=total {
        rates.push(1e-4 * 10f64.powf(i as f64 / points_per_decade as f64));
    }
    rates
}

/// Computes the logical-error-rate curve of a protocol with the subset
/// estimator.
///
/// # Examples
///
/// ```
/// use dftsp::{synthesize_protocol, SynthesisOptions};
/// use dftsp_noise::{logical_error_curve, SubsetConfig};
/// use dftsp_code::catalog;
///
/// let protocol = synthesize_protocol(&catalog::steane(), &SynthesisOptions::default()).unwrap();
/// let config = SubsetConfig { max_faults: 2, samples_per_stratum: 100 };
/// let curve = logical_error_curve(&protocol, &[1e-3, 1e-2], &config, 7);
/// assert_eq!(curve.points.len(), 2);
/// assert!(curve.points[0].logical.mean <= curve.points[1].logical.mean);
/// ```
pub fn logical_error_curve(
    protocol: &DeterministicProtocol,
    physical_rates: &[f64],
    config: &SubsetConfig,
    seed: u64,
) -> ErrorRateCurve {
    let estimate = SubsetEstimate::build(protocol, config, seed);
    let points = physical_rates
        .iter()
        .map(|&p| CurvePoint {
            physical: p,
            logical: estimate.logical_error_rate(p),
        })
        .collect();
    ErrorRateCurve {
        label: protocol.context.code().name().to_string(),
        points,
    }
}

/// The `p_L = p` reference line plotted in Fig. 4.
pub fn linear_reference(physical_rates: &[f64]) -> ErrorRateCurve {
    ErrorRateCurve {
        label: "Linear".to_string(),
        points: physical_rates
            .iter()
            .map(|&p| CurvePoint {
                physical: p,
                logical: Estimate {
                    mean: p,
                    std_error: 0.0,
                    samples: 0,
                },
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_spans_the_figure_range() {
        let rates = default_physical_rates(4);
        assert_eq!(rates.len(), 13);
        assert!((rates[0] - 1e-4).abs() < 1e-12);
        assert!((rates.last().unwrap() - 1e-1).abs() < 1e-6);
        assert!(rates.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn linear_reference_is_the_identity() {
        let curve = linear_reference(&[1e-3, 1e-2]);
        assert_eq!(curve.label, "Linear");
        assert_eq!(curve.points[0].logical.mean, 1e-3);
        assert!((curve.log_log_slope().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slope_of_quadratic_series_is_two() {
        let points: Vec<CurvePoint> = [1e-4, 1e-3, 1e-2]
            .iter()
            .map(|&p: &f64| CurvePoint {
                physical: p,
                logical: Estimate {
                    mean: 40.0 * p * p,
                    std_error: 0.0,
                    samples: 1,
                },
            })
            .collect();
        let curve = ErrorRateCurve {
            label: "test".into(),
            points,
        };
        assert!((curve.log_log_slope().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slope_needs_at_least_two_positive_points() {
        let curve = ErrorRateCurve {
            label: "empty".into(),
            points: vec![CurvePoint {
                physical: 1e-3,
                logical: Estimate {
                    mean: 0.0,
                    std_error: 0.0,
                    samples: 1,
                },
            }],
        };
        assert!(curve.log_log_slope().is_none());
    }
}
