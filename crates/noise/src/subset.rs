//! Subset-sampling estimation of the logical error rate.
//!
//! The paper samples 8000 protocol runs at `p_max = 0.1` and uses Dynamic
//! Subset Sampling (Heußen et al.) to extrapolate the logical error rate to
//! lower physical error rates. This module implements the same stratification
//! idea in a simplified, self-contained form:
//!
//! * fault configurations are stratified by the *number of faults* `k`,
//! * the conditional failure probability `f_k = P(logical error | k faults)`
//!   is estimated by Monte Carlo with exactly `k` faults placed uniformly at
//!   random on the protocol's fault locations,
//! * the logical error rate at any physical rate `p` is recombined as
//!   `p_L(p) = Σ_k B(L, k, p) · f_k`, where `B` is the binomial probability of
//!   `k` faults among the `L` locations of the fault-free execution path.
//!
//! For a fault-tolerant protocol `f_0 = f_1 = 0`, so the recombined curve
//! scales as `O(p²)` — the quantitative statement behind Fig. 4. Conditional
//! branches make `L` mildly configuration-dependent; using the fault-free
//! path length is an approximation that only affects the (already
//! heuristic-free) high-`p` end of the curve and is documented in DESIGN.md.

use dftsp::{execute, DeterministicProtocol, NoFaults};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::logical::PerfectDecoder;
use crate::model::FixedLocationFaults;
use crate::sampler::Estimate;

/// Configuration of the subset estimator.
#[derive(Debug, Clone, Copy)]
pub struct SubsetConfig {
    /// Largest fault count stratum to sample (`k = 0..=max_faults`).
    pub max_faults: usize,
    /// Number of Monte-Carlo samples per stratum.
    pub samples_per_stratum: usize,
}

impl Default for SubsetConfig {
    fn default() -> Self {
        SubsetConfig {
            max_faults: 4,
            samples_per_stratum: 2000,
        }
    }
}

/// The stratified estimate: conditional failure probabilities per fault
/// count, reusable for any physical error rate.
#[derive(Debug, Clone)]
pub struct SubsetEstimate {
    /// Number of fault locations on the fault-free execution path.
    pub locations: usize,
    /// Conditional failure estimates `f_k`, indexed by the fault count `k`.
    pub conditional_failure: Vec<Estimate>,
}

impl SubsetEstimate {
    /// Builds the stratified estimate for a protocol.
    ///
    /// The `k = 0` stratum is exact (no faults → no failure for a correct
    /// protocol) and is still sampled once as a sanity check.
    pub fn build(protocol: &DeterministicProtocol, config: &SubsetConfig, seed: u64) -> Self {
        let decoder = PerfectDecoder::for_protocol(protocol);
        let locations = execute(protocol, &mut NoFaults).locations;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut conditional_failure = Vec::with_capacity(config.max_faults + 1);
        for k in 0..=config.max_faults {
            if k == 0 {
                let record = execute(protocol, &mut NoFaults);
                let failure = decoder.classify(&record.residual).is_failure();
                conditional_failure.push(Estimate::from_counts(usize::from(failure), 1));
                continue;
            }
            let samples = config.samples_per_stratum;
            let mut failures = 0usize;
            for _ in 0..samples {
                let chosen = sample_locations(locations, k, &mut rng);
                let mut model = FixedLocationFaults::new(chosen, rng.gen());
                let record = execute(protocol, &mut model);
                if decoder.classify(&record.residual).is_failure() {
                    failures += 1;
                }
            }
            conditional_failure.push(Estimate::from_counts(failures, samples));
        }
        SubsetEstimate {
            locations,
            conditional_failure,
        }
    }

    /// Recombines the strata into the logical error rate at physical rate `p`.
    ///
    /// The returned estimate includes the truncation term: the probability of
    /// more than `max_faults` faults is added to the upper error bar by
    /// assuming those configurations always fail.
    pub fn logical_error_rate(&self, p: f64) -> Estimate {
        let l = self.locations;
        let mut mean = 0.0;
        let mut variance = 0.0;
        let mut covered = 0.0;
        for (k, estimate) in self.conditional_failure.iter().enumerate() {
            let weight = binomial_pmf(l, k, p);
            covered += weight;
            mean += weight * estimate.mean;
            variance += (weight * estimate.std_error).powi(2);
        }
        // Configurations with more faults than sampled: bound their
        // contribution by assuming they always fail and fold it into the
        // uncertainty.
        let truncated = (1.0 - covered).max(0.0);
        Estimate {
            mean,
            std_error: (variance + truncated * truncated).sqrt(),
            samples: self.conditional_failure.iter().map(|e| e.samples).sum(),
        }
    }
}

/// Samples `k` distinct location indices uniformly from `0..locations`.
fn sample_locations(locations: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    let k = k.min(locations);
    rand::seq::index::sample(rng, locations, k).into_vec()
}

/// Binomial probability mass function `P(K = k)` for `K ~ Bin(n, p)`.
fn binomial_pmf(n: usize, k: usize, p: f64) -> f64 {
    if k > n {
        return 0.0;
    }
    // log-space for numerical stability with n ≈ hundreds of locations.
    let ln_choose = ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k);
    (ln_choose + (k as f64) * p.ln() + ((n - k) as f64) * (1.0 - p).ln()).exp()
}

fn ln_factorial(n: usize) -> f64 {
    (1..=n).map(|i| (i as f64).ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftsp::{synthesize_protocol, SynthesisOptions};
    use dftsp_code::catalog;

    fn quick_estimate(samples: usize) -> SubsetEstimate {
        let protocol =
            synthesize_protocol(&catalog::steane(), &SynthesisOptions::default()).unwrap();
        let config = SubsetConfig {
            max_faults: 3,
            samples_per_stratum: samples,
        };
        SubsetEstimate::build(&protocol, &config, 99)
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let total: f64 = (0..=20).map(|k| binomial_pmf(20, k, 0.3)).sum();
        assert!((total - 1.0).abs() < 1e-10);
        assert_eq!(binomial_pmf(5, 9, 0.3), 0.0);
    }

    #[test]
    fn binomial_pmf_matches_direct_formula() {
        let direct = 45.0 * 0.1f64.powi(2) * 0.9f64.powi(8);
        assert!((binomial_pmf(10, 2, 0.1) - direct).abs() < 1e-12);
    }

    #[test]
    fn fault_free_and_single_fault_strata_never_fail() {
        let estimate = quick_estimate(300);
        assert_eq!(estimate.conditional_failure[0].mean, 0.0);
        assert_eq!(
            estimate.conditional_failure[1].mean, 0.0,
            "a fault-tolerant protocol never fails under a single fault"
        );
    }

    #[test]
    fn logical_error_rate_scales_quadratically() {
        let estimate = quick_estimate(400);
        let high = estimate.logical_error_rate(1e-2).mean;
        let low = estimate.logical_error_rate(1e-3).mean;
        assert!(high > 0.0, "two-fault configurations must sometimes fail");
        let ratio = high / low;
        // A ×10 reduction in p reduces p_L by roughly ×100 (allow slack for
        // the k ≥ 3 strata and sampling noise).
        assert!(
            (30.0..300.0).contains(&ratio),
            "expected quadratic scaling, got ratio {ratio}"
        );
    }

    #[test]
    fn recombination_is_monotone_in_p() {
        let estimate = quick_estimate(200);
        let mut last = 0.0;
        for &p in &[1e-4, 1e-3, 1e-2, 5e-2] {
            let value = estimate.logical_error_rate(p).mean;
            assert!(value >= last);
            last = value;
        }
    }

    #[test]
    fn sample_locations_returns_distinct_indices() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let sample = sample_locations(30, 4, &mut rng);
            let unique: std::collections::HashSet<_> = sample.iter().collect();
            assert_eq!(unique.len(), 4);
            assert!(sample.iter().all(|&i| i < 30));
        }
        assert_eq!(sample_locations(3, 10, &mut rng).len(), 3);
    }
}
