//! Direct Monte-Carlo estimation of the logical error rate.

use dftsp::{execute, DeterministicProtocol};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::logical::PerfectDecoder;
use crate::model::{DepolarizingFaults, NoiseParams};

/// A Monte-Carlo estimate with its standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Estimated probability.
    pub mean: f64,
    /// Standard error of the estimate.
    pub std_error: f64,
    /// Number of samples used.
    pub samples: usize,
}

impl Estimate {
    /// Builds a binomial estimate from a failure count.
    pub fn from_counts(failures: usize, samples: usize) -> Self {
        let n = samples.max(1) as f64;
        let mean = failures as f64 / n;
        Estimate {
            mean,
            std_error: (mean * (1.0 - mean) / n).sqrt(),
            samples,
        }
    }
}

/// Result of one noisy protocol run.
#[derive(Debug, Clone, Copy)]
pub struct RunOutcome {
    /// Whether the run ended in a logical failure (X sector, as in Fig. 4).
    pub failure: bool,
    /// Number of faults injected during the run.
    pub faults: usize,
    /// Number of fault locations traversed (branch-dependent).
    pub locations: usize,
}

/// Runs the protocol once under depolarizing noise and classifies the result.
pub fn run_once(
    protocol: &DeterministicProtocol,
    decoder: &PerfectDecoder,
    params: NoiseParams,
    seed: u64,
) -> RunOutcome {
    let mut noise = DepolarizingFaults::new(params, seed);
    let record = execute(protocol, &mut noise);
    let outcome = decoder.classify(&record.residual);
    RunOutcome {
        failure: outcome.is_failure(),
        faults: noise.faults_injected(),
        locations: record.locations,
    }
}

/// Estimates the logical error rate at a single physical error rate by plain
/// Monte-Carlo sampling.
///
/// # Examples
///
/// ```
/// use dftsp::{synthesize_protocol, SynthesisOptions};
/// use dftsp_noise::{monte_carlo, NoiseParams};
/// use dftsp_code::catalog;
///
/// let protocol = synthesize_protocol(&catalog::steane(), &SynthesisOptions::default()).unwrap();
/// let estimate = monte_carlo(&protocol, NoiseParams::e1_1(0.05), 200, 1);
/// assert!(estimate.mean >= 0.0 && estimate.mean <= 1.0);
/// ```
pub fn monte_carlo(
    protocol: &DeterministicProtocol,
    params: NoiseParams,
    samples: usize,
    seed: u64,
) -> Estimate {
    let decoder = PerfectDecoder::for_protocol(protocol);
    let mut seeder = StdRng::seed_from_u64(seed);
    let mut failures = 0usize;
    for _ in 0..samples {
        let outcome = run_once(protocol, &decoder, params, seeder.gen());
        if outcome.failure {
            failures += 1;
        }
    }
    Estimate::from_counts(failures, samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftsp::{synthesize_protocol, SynthesisOptions};
    use dftsp_code::catalog;

    fn steane_protocol() -> DeterministicProtocol {
        synthesize_protocol(&catalog::steane(), &SynthesisOptions::default()).unwrap()
    }

    #[test]
    fn noiseless_runs_never_fail() {
        let protocol = steane_protocol();
        let estimate = monte_carlo(&protocol, NoiseParams::e1_1(0.0), 50, 11);
        assert_eq!(estimate.mean, 0.0);
        assert_eq!(estimate.samples, 50);
    }

    #[test]
    fn heavy_noise_produces_failures() {
        let protocol = steane_protocol();
        let estimate = monte_carlo(&protocol, NoiseParams::e1_1(0.25), 300, 12);
        assert!(estimate.mean > 0.05, "got {}", estimate.mean);
        assert!(estimate.std_error > 0.0);
    }

    #[test]
    fn estimates_are_reproducible_for_fixed_seed() {
        let protocol = steane_protocol();
        let a = monte_carlo(&protocol, NoiseParams::e1_1(0.1), 100, 33);
        let b = monte_carlo(&protocol, NoiseParams::e1_1(0.1), 100, 33);
        assert_eq!(a, b);
    }

    #[test]
    fn from_counts_statistics() {
        let e = Estimate::from_counts(25, 100);
        assert!((e.mean - 0.25).abs() < 1e-12);
        assert!((e.std_error - (0.25f64 * 0.75 / 100.0).sqrt()).abs() < 1e-12);
        let zero = Estimate::from_counts(0, 0);
        assert_eq!(zero.mean, 0.0);
    }
}
