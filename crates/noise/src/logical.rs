//! From residual Pauli errors to logical failures.
//!
//! The paper's simulation pipeline follows every protocol run with "a perfect
//! round of error correction using lookup table decoding and, finally,
//! measuring all data qubits destructively. A logical error is registered if
//! the resulting classical bitstring anticommutes with any of the logical
//! operators of the Pauli eigenstate."
//!
//! For the `|0…0⟩_L` eigenstate the destructive measurement is in the Z
//! basis, so the recorded failure is a logical X (bit-flip) error after the
//! perfect correction round. The dual sector is evaluated as well (it would
//! be the relevant one for `|+⟩_L` preparation) and reported alongside.

use dftsp::DeterministicProtocol;
use dftsp_code::{CssCode, LookupDecoder};
use dftsp_f2::BitVec;
use dftsp_pauli::{PauliKind, PauliString};

/// Outcome of the perfect error-correction round and destructive logical
/// measurement applied to a residual error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogicalOutcome {
    /// The residual X error was a logical X after perfect correction — this
    /// flips the destructive Z-basis readout of `|0…0⟩_L` and is the failure
    /// counted in Fig. 4.
    pub x_failure: bool,
    /// The residual Z error was a logical Z after perfect correction
    /// (irrelevant for `|0⟩_L` readout, reported for completeness).
    pub z_failure: bool,
}

impl LogicalOutcome {
    /// The failure bit relevant for logical-zero preparation.
    pub fn is_failure(&self) -> bool {
        self.x_failure
    }
}

/// The perfect decoder pair used for the final error-correction round.
#[derive(Debug, Clone)]
pub struct PerfectDecoder {
    code: CssCode,
    x_decoder: LookupDecoder,
    z_decoder: LookupDecoder,
}

impl PerfectDecoder {
    /// Builds the lookup-table decoders for both sectors of a code.
    pub fn new(code: &CssCode) -> Self {
        PerfectDecoder {
            code: code.clone(),
            x_decoder: LookupDecoder::new(code, PauliKind::X),
            z_decoder: LookupDecoder::new(code, PauliKind::Z),
        }
    }

    /// Builds the decoders for a protocol's code.
    pub fn for_protocol(protocol: &DeterministicProtocol) -> Self {
        Self::new(protocol.context.code())
    }

    /// Applies a perfect round of error correction to a residual error of one
    /// sector and returns the corrected residual (zero syndrome guaranteed).
    pub fn correct(&self, error_kind: PauliKind, residual: &BitVec) -> BitVec {
        let syndrome = self.code.syndrome(error_kind, residual);
        let decoder = match error_kind {
            PauliKind::X => &self.x_decoder,
            PauliKind::Z => &self.z_decoder,
        };
        residual ^ decoder.decode(&syndrome)
    }

    /// Runs the full classification: perfect correction of both sectors
    /// followed by the logical-operator parity checks.
    pub fn classify(&self, residual: &PauliString) -> LogicalOutcome {
        let corrected_x = self.correct(PauliKind::X, residual.x_part());
        let corrected_z = self.correct(PauliKind::Z, residual.z_part());
        LogicalOutcome {
            x_failure: self.code.is_logical_error(PauliKind::X, &corrected_x),
            z_failure: self.code.is_logical_error(PauliKind::Z, &corrected_z),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftsp_code::catalog;

    #[test]
    fn identity_residual_is_not_a_failure() {
        let decoder = PerfectDecoder::new(&catalog::steane());
        let outcome = decoder.classify(&PauliString::identity(7));
        assert!(!outcome.x_failure && !outcome.z_failure);
        assert!(!outcome.is_failure());
    }

    #[test]
    fn single_qubit_errors_are_corrected() {
        let decoder = PerfectDecoder::new(&catalog::steane());
        for q in 0..7 {
            let residual = PauliString::single(7, q, dftsp_pauli::Pauli::Y);
            let outcome = decoder.classify(&residual);
            assert!(!outcome.x_failure, "qubit {q}");
            assert!(!outcome.z_failure, "qubit {q}");
        }
    }

    #[test]
    fn logical_x_is_a_failure() {
        let code = catalog::steane();
        let lx = code.logicals(PauliKind::X).row(0).clone();
        let decoder = PerfectDecoder::new(&code);
        let outcome = decoder.classify(&PauliString::from_x(lx));
        assert!(outcome.x_failure);
        assert!(outcome.is_failure());
        assert!(!outcome.z_failure);
    }

    #[test]
    fn stabilizers_are_never_failures() {
        let code = catalog::steane();
        let decoder = PerfectDecoder::new(&code);
        for row in code.stabilizers(PauliKind::X).iter() {
            let outcome = decoder.classify(&PauliString::from_x(row.clone()));
            assert!(!outcome.x_failure);
        }
        for row in code.stabilizers(PauliKind::Z).iter() {
            let outcome = decoder.classify(&PauliString::from_z(row.clone()));
            assert!(!outcome.z_failure);
        }
    }

    #[test]
    fn correction_always_restores_zero_syndrome() {
        let code = catalog::surface3();
        let decoder = PerfectDecoder::new(&code);
        for mask in 0u32..64 {
            let residual =
                BitVec::from_bools(&(0..9).map(|q| (mask >> q) & 1 == 1).collect::<Vec<_>>());
            let corrected = decoder.correct(PauliKind::X, &residual);
            assert!(code.syndrome(PauliKind::X, &corrected).is_zero());
        }
    }

    #[test]
    fn weight_two_errors_on_distance_three_codes_may_fail() {
        // The decoder corrects to the most likely error; some weight-2 errors
        // therefore become logical errors — that is exactly why a single
        // dangerous propagated error breaks fault tolerance.
        let code = catalog::steane();
        let decoder = PerfectDecoder::new(&code);
        let failing = (0..7)
            .flat_map(|a| ((a + 1)..7).map(move |b| (a, b)))
            .filter(|&(a, b)| {
                let residual = PauliString::from_x(BitVec::from_indices(7, &[a, b]));
                decoder.classify(&residual).x_failure
            })
            .count();
        assert!(failing > 0);
    }
}
