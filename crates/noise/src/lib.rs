//! Circuit-level noise simulation for deterministic fault-tolerant state
//! preparation protocols.
//!
//! This crate reproduces the evaluation methodology of Sec. V.B of the paper:
//! synthesized protocols are executed under a single-parameter depolarizing
//! noise model (`E1_1`), followed by a perfect round of lookup-table error
//! correction and a destructive logical measurement; the logical error rate
//! is estimated either by direct Monte Carlo or by a subset-sampling
//! estimator that stratifies runs by their fault count and recombines the
//! strata for any physical error rate — the technique behind the
//! `O(p²)` curves of Fig. 4.
//!
//! * [`NoiseParams`], [`DepolarizingFaults`] — the `E1_1` circuit-level model,
//! * [`PerfectDecoder`], [`LogicalOutcome`] — perfect final error correction
//!   and logical readout,
//! * [`monte_carlo`] — direct sampling at one physical error rate,
//! * [`SubsetEstimate`] — fault-count-stratified estimation,
//! * [`logical_error_curve`], [`linear_reference`] — Fig. 4 series.
//!
//! # Examples
//!
//! ```
//! use dftsp::{synthesize_protocol, SynthesisOptions};
//! use dftsp_code::catalog;
//! use dftsp_noise::{logical_error_curve, SubsetConfig};
//!
//! let protocol = synthesize_protocol(&catalog::steane(), &SynthesisOptions::default()).unwrap();
//! let config = SubsetConfig { max_faults: 2, samples_per_stratum: 200 };
//! let curve = logical_error_curve(&protocol, &[1e-3, 1e-2, 1e-1], &config, 42);
//! // Logical error rates grow with the physical error rate.
//! assert!(curve.points[0].logical.mean <= curve.points[2].logical.mean);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod logical;
mod model;
mod sampler;
mod subset;
mod sweep;

pub use logical::{LogicalOutcome, PerfectDecoder};
pub use model::{DepolarizingFaults, FixedLocationFaults, NoiseParams};
pub use sampler::{monte_carlo, run_once, Estimate, RunOutcome};
pub use subset::{SubsetConfig, SubsetEstimate};
pub use sweep::{
    default_physical_rates, linear_reference, logical_error_curve, CurvePoint, ErrorRateCurve,
};
