//! Circuit-level depolarizing noise (the `E1_1` model of the paper's
//! simulations).

use dftsp::{FaultModel, SegmentId};
use dftsp_circuit::{Circuit, FaultEffect, FaultSite, FaultSiteKind};
use dftsp_pauli::{Pauli, PauliString};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Parameters of the circuit-level depolarizing noise model.
///
/// The paper uses Qsample's `E1_1` model: a single physical error rate `p`
/// governs single-qubit gates, two-qubit gates, preparations and measurement
/// readout. After a faulty single-qubit operation one of the three
/// non-trivial Paulis is applied uniformly at random; after a faulty
/// two-qubit gate one of the fifteen non-trivial two-qubit Paulis; a faulty
/// measurement flips its recorded outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseParams {
    /// Fault probability after a single-qubit gate.
    pub single_qubit: f64,
    /// Fault probability after a two-qubit gate.
    pub two_qubit: f64,
    /// Fault probability of a preparation (reset).
    pub preparation: f64,
    /// Probability that a measurement outcome is flipped.
    pub measurement: f64,
}

impl NoiseParams {
    /// The uniform single-parameter model used throughout the paper.
    pub fn e1_1(p: f64) -> Self {
        NoiseParams {
            single_qubit: p,
            two_qubit: p,
            preparation: p,
            measurement: p,
        }
    }

    /// The fault probability at a location of the given kind.
    pub fn probability(&self, kind: FaultSiteKind) -> f64 {
        match kind {
            FaultSiteKind::SingleQubitGate => self.single_qubit,
            FaultSiteKind::TwoQubitGate => self.two_qubit,
            FaultSiteKind::Preparation => self.preparation,
            FaultSiteKind::Measurement => self.measurement,
        }
    }
}

/// Draws a uniformly random non-trivial fault for a location.
pub(crate) fn random_effect(circuit: &Circuit, site: &FaultSite, rng: &mut StdRng) -> FaultEffect {
    let n = circuit.num_qubits();
    match site.kind {
        FaultSiteKind::SingleQubitGate | FaultSiteKind::Preparation => {
            let pauli = Pauli::ERRORS[rng.gen_range(0..3usize)];
            FaultEffect::Pauli(PauliString::single(n, site.qubits[0], pauli))
        }
        FaultSiteKind::TwoQubitGate => {
            // Uniform over the 15 non-identity two-qubit Paulis.
            let index = rng.gen_range(1..16usize);
            let mut error = PauliString::identity(n);
            error.set(site.qubits[0], Pauli::ALL[index / 4]);
            error.set(site.qubits[1], Pauli::ALL[index % 4]);
            FaultEffect::Pauli(error)
        }
        FaultSiteKind::Measurement => {
            let bit = circuit.gates()[site.gate_index]
                .measured_bit()
                .expect("measurement sites correspond to measurement gates");
            FaultEffect::MeasurementFlip(bit)
        }
    }
}

/// A [`FaultModel`] that injects independent depolarizing faults at every
/// traversed location.
///
/// # Examples
///
/// ```
/// use dftsp::{execute, synthesize_protocol, SynthesisOptions};
/// use dftsp_noise::{DepolarizingFaults, NoiseParams};
/// use dftsp_code::catalog;
///
/// let protocol = synthesize_protocol(&catalog::steane(), &SynthesisOptions::default()).unwrap();
/// let mut noise = DepolarizingFaults::new(NoiseParams::e1_1(0.01), 7);
/// let record = execute(&protocol, &mut noise);
/// assert!(record.locations > 0);
/// ```
#[derive(Debug, Clone)]
pub struct DepolarizingFaults {
    params: NoiseParams,
    rng: StdRng,
    faults_injected: usize,
}

impl DepolarizingFaults {
    /// Creates the model with the given parameters and RNG seed.
    pub fn new(params: NoiseParams, seed: u64) -> Self {
        DepolarizingFaults {
            params,
            rng: StdRng::seed_from_u64(seed),
            faults_injected: 0,
        }
    }

    /// Number of faults injected since construction (or the last reset).
    pub fn faults_injected(&self) -> usize {
        self.faults_injected
    }

    /// Resets the fault counter (the RNG stream continues).
    pub fn reset_counter(&mut self) {
        self.faults_injected = 0;
    }
}

impl FaultModel for DepolarizingFaults {
    fn fault(
        &mut self,
        _location: usize,
        _segment: SegmentId,
        circuit: &Circuit,
        site: &FaultSite,
    ) -> Option<FaultEffect> {
        let p = self.params.probability(site.kind);
        if self.rng.gen_bool(p) {
            self.faults_injected += 1;
            Some(random_effect(circuit, site, &mut self.rng))
        } else {
            None
        }
    }
}

/// A [`FaultModel`] that injects uniformly random faults at a fixed set of
/// location indices — the sampling primitive of the subset estimator.
#[derive(Debug, Clone)]
pub struct FixedLocationFaults {
    locations: Vec<usize>,
    rng: StdRng,
    faults_injected: usize,
}

impl FixedLocationFaults {
    /// Creates a model that faults exactly the given global location indices
    /// (on the traversed path; indices beyond the executed path are ignored).
    pub fn new(mut locations: Vec<usize>, seed: u64) -> Self {
        locations.sort_unstable();
        locations.dedup();
        FixedLocationFaults {
            locations,
            rng: StdRng::seed_from_u64(seed),
            faults_injected: 0,
        }
    }

    /// Number of faults actually injected (locations on skipped branches do
    /// not fire).
    pub fn faults_injected(&self) -> usize {
        self.faults_injected
    }
}

impl FaultModel for FixedLocationFaults {
    fn fault(
        &mut self,
        location: usize,
        _segment: SegmentId,
        circuit: &Circuit,
        site: &FaultSite,
    ) -> Option<FaultEffect> {
        if self.locations.binary_search(&location).is_ok() {
            self.faults_injected += 1;
            Some(random_effect(circuit, site, &mut self.rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftsp::{execute, synthesize_protocol, NoFaults, SynthesisOptions};
    use dftsp_code::catalog;

    fn steane_protocol() -> dftsp::DeterministicProtocol {
        synthesize_protocol(&catalog::steane(), &SynthesisOptions::default()).unwrap()
    }

    #[test]
    fn e1_1_is_uniform() {
        let params = NoiseParams::e1_1(0.02);
        for kind in [
            FaultSiteKind::SingleQubitGate,
            FaultSiteKind::TwoQubitGate,
            FaultSiteKind::Preparation,
            FaultSiteKind::Measurement,
        ] {
            assert_eq!(params.probability(kind), 0.02);
        }
    }

    #[test]
    fn zero_probability_injects_nothing() {
        let protocol = steane_protocol();
        let mut noise = DepolarizingFaults::new(NoiseParams::e1_1(0.0), 1);
        let record = execute(&protocol, &mut noise);
        assert_eq!(noise.faults_injected(), 0);
        assert!(record.residual.is_identity());
    }

    #[test]
    fn unit_probability_faults_every_location() {
        let protocol = steane_protocol();
        let clean = execute(&protocol, &mut NoFaults);
        let mut noise = DepolarizingFaults::new(NoiseParams::e1_1(1.0), 2);
        let record = execute(&protocol, &mut noise);
        // Every traversed location received a fault (branch locations may
        // differ from the clean path, so compare against the noisy record).
        assert_eq!(noise.faults_injected(), record.locations);
        assert!(record.locations >= clean.locations);
    }

    #[test]
    fn fixed_locations_fire_once_each() {
        let protocol = steane_protocol();
        let clean = execute(&protocol, &mut NoFaults);
        let targets = vec![0, clean.locations - 1];
        let mut model = FixedLocationFaults::new(targets, 3);
        let _ = execute(&protocol, &mut model);
        assert_eq!(model.faults_injected(), 2);
    }

    #[test]
    fn out_of_path_locations_are_ignored() {
        let protocol = steane_protocol();
        let clean = execute(&protocol, &mut NoFaults);
        let mut model = FixedLocationFaults::new(vec![clean.locations + 500], 4);
        let _ = execute(&protocol, &mut model);
        assert_eq!(model.faults_injected(), 0);
    }

    #[test]
    fn random_effects_match_site_kind() {
        let mut circuit = Circuit::new(3);
        circuit.h(0);
        circuit.cnot(0, 1);
        circuit.measure_z(2);
        let sites = dftsp_circuit::enumerate_fault_sites(&circuit);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            match random_effect(&circuit, &sites[0], &mut rng) {
                FaultEffect::Pauli(p) => assert_eq!(p.support(), vec![0]),
                FaultEffect::MeasurementFlip(_) => panic!("1q site yields Pauli faults"),
            }
            match random_effect(&circuit, &sites[1], &mut rng) {
                FaultEffect::Pauli(p) => {
                    assert!(!p.is_identity());
                    assert!(p.support().iter().all(|&q| q < 2));
                }
                FaultEffect::MeasurementFlip(_) => panic!("2q site yields Pauli faults"),
            }
            match random_effect(&circuit, &sites[2], &mut rng) {
                FaultEffect::MeasurementFlip(bit) => assert_eq!(bit, 0),
                FaultEffect::Pauli(_) => panic!("measurement site yields outcome flips"),
            }
        }
    }
}
