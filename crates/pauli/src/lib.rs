//! Pauli operators and their GF(2) symplectic representation.
//!
//! Stabilizer quantum error correction manipulates `n`-qubit Pauli operators
//! almost exclusively through their *symplectic* representation: a Pauli
//! `P = i^φ · X^a Z^b` is identified with the pair of GF(2) vectors
//! `(a, b) ∈ F₂ⁿ × F₂ⁿ`. Multiplication becomes XOR, and two Paulis commute
//! iff the symplectic inner product `⟨a, b'⟩ + ⟨a', b⟩` vanishes.
//!
//! This crate provides:
//!
//! * [`Pauli`] — a single-qubit Pauli (`I`, `X`, `Y`, `Z`),
//! * [`PauliString`] — an `n`-qubit Pauli operator (phase-free), stored as a
//!   pair of bit vectors,
//! * [`PauliKind`] — the X/Z sector tag used throughout the CSS-code
//!   machinery of the workspace.
//!
//! Global phases are deliberately not tracked here: for error analysis and
//! circuit synthesis only the projective Pauli group matters. The stabilizer
//! tableau simulator in `dftsp-stabsim` tracks signs separately.
//!
//! # Examples
//!
//! ```
//! use dftsp_pauli::PauliString;
//!
//! let err: PauliString = "XIYZI".parse()?;
//! let stab: PauliString = "ZZIIZ".parse()?;
//! assert_eq!(err.weight(), 3);
//! assert!(!err.commutes_with(&stab));
//! let product = err.mul(&stab);
//! assert_eq!(product.to_string(), "YZYZZ");
//! # Ok::<(), dftsp_pauli::ParsePauliError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod single;
mod string;

pub use single::{Pauli, PauliKind};
pub use string::{ParsePauliError, PauliString};
