//! Single-qubit Pauli operators and the X/Z sector tag.

use std::fmt;

/// A single-qubit Pauli operator, up to global phase.
///
/// # Examples
///
/// ```
/// use dftsp_pauli::Pauli;
///
/// assert_eq!(Pauli::X.mul(Pauli::Z), Pauli::Y);
/// assert!(Pauli::X.commutes_with(Pauli::X));
/// assert!(!Pauli::X.commutes_with(Pauli::Z));
/// assert_eq!(Pauli::Y.weight(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Pauli {
    /// The identity operator.
    #[default]
    I,
    /// The bit-flip operator σₓ.
    X,
    /// The combined bit- and phase-flip operator σ_y.
    Y,
    /// The phase-flip operator σ_z.
    Z,
}

impl Pauli {
    /// All four single-qubit Paulis, identity first.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// The three non-identity Paulis.
    pub const ERRORS: [Pauli; 3] = [Pauli::X, Pauli::Y, Pauli::Z];

    /// Constructs a Pauli from its symplectic bits `(x, z)`.
    ///
    /// ```
    /// # use dftsp_pauli::Pauli;
    /// assert_eq!(Pauli::from_xz(true, true), Pauli::Y);
    /// assert_eq!(Pauli::from_xz(false, false), Pauli::I);
    /// ```
    pub fn from_xz(x: bool, z: bool) -> Pauli {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// Returns the symplectic bits `(x, z)`.
    pub fn xz(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        }
    }

    /// Returns `true` if the operator has an X component (is `X` or `Y`).
    pub fn has_x(self) -> bool {
        self.xz().0
    }

    /// Returns `true` if the operator has a Z component (is `Z` or `Y`).
    pub fn has_z(self) -> bool {
        self.xz().1
    }

    /// Multiplies two Paulis, discarding the global phase.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Pauli) -> Pauli {
        let (x1, z1) = self.xz();
        let (x2, z2) = other.xz();
        Pauli::from_xz(x1 ^ x2, z1 ^ z2)
    }

    /// Returns `true` if the two operators commute.
    pub fn commutes_with(self, other: Pauli) -> bool {
        let (x1, z1) = self.xz();
        let (x2, z2) = other.xz();
        !((x1 && z2) ^ (z1 && x2))
    }

    /// Returns 0 for the identity and 1 otherwise.
    pub fn weight(self) -> usize {
        usize::from(self != Pauli::I)
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

/// The Pauli sector relevant for CSS codes: pure-X or pure-Z operators.
///
/// CSS codes treat X and Z errors independently: X errors are detected by
/// Z-type stabilizers and vice versa. Most synthesis routines in the
/// workspace are parameterized by this tag.
///
/// ```
/// use dftsp_pauli::PauliKind;
///
/// assert_eq!(PauliKind::X.dual(), PauliKind::Z);
/// assert_eq!(PauliKind::Z.dual(), PauliKind::X);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PauliKind {
    /// Pure X-type operators (products of σₓ).
    X,
    /// Pure Z-type operators (products of σ_z).
    Z,
}

impl PauliKind {
    /// Both sectors, X first.
    pub const BOTH: [PauliKind; 2] = [PauliKind::X, PauliKind::Z];

    /// Returns the opposite sector.
    ///
    /// X errors are detected by Z stabilizers and corrected by X recoveries,
    /// so "dual" pairs occur throughout the synthesis pipeline.
    pub fn dual(self) -> PauliKind {
        match self {
            PauliKind::X => PauliKind::Z,
            PauliKind::Z => PauliKind::X,
        }
    }

    /// Returns the single-qubit Pauli of this kind.
    pub fn pauli(self) -> Pauli {
        match self {
            PauliKind::X => Pauli::X,
            PauliKind::Z => Pauli::Z,
        }
    }
}

impl fmt::Display for PauliKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PauliKind::X => write!(f, "X"),
            PauliKind::Z => write!(f, "Z"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplication_table() {
        use Pauli::*;
        assert_eq!(X.mul(X), I);
        assert_eq!(Z.mul(Z), I);
        assert_eq!(Y.mul(Y), I);
        assert_eq!(X.mul(Z), Y);
        assert_eq!(Z.mul(X), Y);
        assert_eq!(X.mul(Y), Z);
        assert_eq!(Y.mul(Z), X);
        assert_eq!(I.mul(Y), Y);
    }

    #[test]
    fn commutation_relations() {
        use Pauli::*;
        for p in Pauli::ALL {
            assert!(I.commutes_with(p));
            assert!(p.commutes_with(p));
        }
        assert!(!X.commutes_with(Z));
        assert!(!X.commutes_with(Y));
        assert!(!Y.commutes_with(Z));
    }

    #[test]
    fn xz_roundtrip() {
        for p in Pauli::ALL {
            let (x, z) = p.xz();
            assert_eq!(Pauli::from_xz(x, z), p);
        }
    }

    #[test]
    fn weight_and_components() {
        assert_eq!(Pauli::I.weight(), 0);
        assert_eq!(Pauli::Y.weight(), 1);
        assert!(Pauli::Y.has_x() && Pauli::Y.has_z());
        assert!(Pauli::X.has_x() && !Pauli::X.has_z());
        assert!(!Pauli::Z.has_x() && Pauli::Z.has_z());
    }

    #[test]
    fn kind_duality() {
        assert_eq!(PauliKind::X.dual(), PauliKind::Z);
        assert_eq!(PauliKind::Z.dual().dual(), PauliKind::Z);
        assert_eq!(PauliKind::X.pauli(), Pauli::X);
        assert_eq!(PauliKind::Z.pauli(), Pauli::Z);
        assert_eq!(PauliKind::X.to_string(), "X");
    }

    #[test]
    fn display() {
        let s: String = Pauli::ALL.iter().map(ToString::to_string).collect();
        assert_eq!(s, "IXYZ");
    }
}
